//! Differential test of the open-addressed [`FlatIndex`] against the data
//! structure it replaced: `HashMap<u64, Vec<Slot>>` with append-insert and
//! swap-remove buckets. Probe order must match the model **exactly** —
//! that bit-identical bucket order is what keeps every engine result
//! unchanged by the index rewrite (DESIGN.md §10).

use mstream_window::{Arena, FlatIndex, Slot};
use proptest::prelude::*;
use std::collections::HashMap;

/// Drives the same operation sequence through the flat index and the
/// legacy model, asserting positions, moved-slot reports and probe order
/// agree after every step.
fn run_ops(key_domain: u64, ops: Vec<(u8, u64, usize)>) {
    let mut arena: Arena<u32> = Arena::new();
    let mut idx = FlatIndex::new();
    let mut model: HashMap<u64, Vec<Slot>> = HashMap::new();
    let mut next = 0u32;
    for (op, key, r) in ops {
        let key = key % key_domain;
        match op {
            // Insert is weighted 2:1 so buckets grow deep enough to spill.
            0 | 1 => {
                let slot = arena.insert(next);
                next += 1;
                let pos = idx.insert(key, slot);
                let bucket = model.entry(key).or_default();
                prop_assert_eq!(pos as usize, bucket.len(), "append position");
                bucket.push(slot);
            }
            _ => {
                let Some(bucket) = model.get_mut(&key).filter(|b| !b.is_empty()) else {
                    continue;
                };
                let pos = r % bucket.len();
                let expected = bucket[pos];
                let moved = idx.remove(key, pos as u32, expected);
                bucket.swap_remove(pos);
                let want_moved = bucket.get(pos).copied();
                prop_assert_eq!(moved, want_moved, "swap-remove moved slot");
                if bucket.is_empty() {
                    model.remove(&key);
                }
                arena.remove(expected);
            }
        }
        for k in 0..key_domain {
            let got: Vec<Slot> = idx.probe(k).iter().collect();
            let want = model.get(&k).cloned().unwrap_or_default();
            prop_assert_eq!(got, want, "probe order diverged for key {}", k);
        }
    }
    prop_assert_eq!(idx.len(), model.values().map(Vec::len).sum::<usize>());
    prop_assert_eq!(idx.n_keys(), model.len());
}

proptest! {
    /// Few keys, deep buckets: exercises inline→spill transitions, spill
    /// growth/recycling and swap-remove across the inline/spill boundary.
    #[test]
    fn deep_buckets_match_model(ops in prop::collection::vec((0u8..3, 0u64..4, 0usize..64), 1..300)) {
        run_ops(4, ops);
    }

    /// Many keys, shallow buckets: exercises table growth, tombstone churn
    /// and key displacement under open addressing.
    #[test]
    fn many_keys_match_model(ops in prop::collection::vec((0u8..3, 0u64..64, 0usize..64), 1..300)) {
        run_ops(64, ops);
    }
}
