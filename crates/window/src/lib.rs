//! Window and queue storage for the multi-way join engine.
//!
//! The paper's model (§2, Figure 1) gives each stream `S_i` a fixed-size
//! buffer for its sliding window `W_i`, plus a single bounded input queue in
//! front of the join operator. Both structures shed by *priority*: when
//! full, the resident element with the least priority is dismissed before it
//! expires. That demands a store supporting, simultaneously:
//!
//! * O(log n) **evict-min** by priority (a priority queue — paper §4,
//!   "we employ a technique called priority queue"),
//! * O(1) amortized **expiration** in arrival order (time- or tuple-based),
//! * O(1) **probe** by join-attribute value (hash indexes used by the
//!   n-way join),
//! * O(log n) **priority rebuild** per element at tumbling-epoch rollover.
//!
//! [`WindowStore`] composes an arena ([`arena::Arena`]), an indexed binary
//! heap ([`heap::IndexedHeap`]), per-attribute hash indexes and an arrival
//! deque to provide exactly that. [`ShedQueue`] reuses the same pieces for
//! the input queue, whose victims are chosen by priority, at random, or by
//! age depending on the shedding policy.

//!
//! ```
//! use mstream_types::{SeqNo, StreamId, Tuple, VTime, Value, WindowSpec};
//! use mstream_window::{Eviction, WindowStore};
//!
//! // A 60s window indexed on attribute 0, with room for two tuples.
//! let mut w = WindowStore::new(WindowSpec::secs(60), vec![0], 2);
//! let t = |seq, val, score| {
//!     (Tuple::new(StreamId(0), VTime::ZERO, SeqNo(seq), vec![Value(val)]), score)
//! };
//! let (a, s) = t(0, 7, 5.0);
//! w.insert(a, s);
//! let (b, s) = t(1, 7, 1.0);
//! w.insert(b, s);
//! // The window is full: the lowest-priority resident is dismissed.
//! let (c, s) = t(2, 8, 3.0);
//! match w.insert(c, s).eviction {
//!     Eviction::Evicted(victim) => assert_eq!(victim.seq, SeqNo(1)),
//!     Eviction::None => unreachable!(),
//! }
//! assert_eq!(w.probe(0, Value(7)).len(), 1);
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the scoped
// `#[allow(unsafe_code)]` around `FlatIndex::prefetch`'s `_mm_prefetch`
// cache hint — a side-effect-free instruction valid for any address.
// Everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod heap;
pub mod index;
pub mod queue;
pub mod reorder;
pub mod store;

pub use arena::{Arena, Slot};
pub use heap::IndexedHeap;
pub use index::{Candidates, FlatIndex};
pub use queue::{QueueVictim, ShedQueue};
pub use reorder::ReorderBuffer;
pub use store::{Eviction, InsertOutcome, WindowStore};
