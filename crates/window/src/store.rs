//! The per-stream window store.

use crate::arena::{Arena, Slot};
use crate::heap::IndexedHeap;
use crate::index::{Candidates, FlatIndex};
use mstream_types::{SeqNo, Tuple, VTime, Value, WindowSpec};
use std::collections::VecDeque;

/// One resident window tuple plus the bookkeeping that must travel with it.
///
/// Everything per-slot that the hot paths touch *without* the tuple —
/// index positions, produced counters, cached policy state — lives in flat
/// parallel arrays on [`WindowStore`] instead (struct-of-arrays), so the
/// entry itself adds no heap allocation beyond the tuple's own values and
/// probe/eviction loops never drag the full entry into cache.
struct Entry {
    tuple: Tuple,
    /// This stream's arrival counter value when the tuple entered
    /// (drives tuple-based expiration).
    arrival_idx: u64,
}

/// What happened when a tuple was offered to a full window.
#[derive(Debug, PartialEq)]
pub enum Eviction {
    /// The window had room; nothing was evicted.
    None,
    /// A resident tuple (possibly the newly offered one) was dismissed.
    Evicted(Tuple),
}

/// The result of [`WindowStore::insert`].
#[derive(Debug, PartialEq)]
pub struct InsertOutcome {
    /// Where the offered tuple now lives, or `None` if it was itself the
    /// lowest-priority tuple and was dismissed immediately.
    pub slot: Option<Slot>,
    /// The eviction performed to make room, if any.
    pub eviction: Eviction,
}

/// A sliding-window buffer with priority-driven shedding.
///
/// Combines (paper §2/§4): a fixed `capacity` (the allocated memory), FIFO
/// expiration per the window spec, hash indexes on every join attribute for
/// n-way probing, and an indexed min-heap over tuple priorities so that
/// "when the window is full, remove the tuple with lowest priority".
///
/// All policies in the paper reduce to a priority score: productivity for
/// `MSketch`, remaining-output-fraction for `MSketch-RS`, partner frequency
/// for `Bjoin`, remaining-lifetime × productivity for `Age`, a uniform
/// random draw for `Random`, and the arrival sequence number for `FIFO`
/// (drop-oldest). The store itself is policy-agnostic: callers hand it a
/// score per tuple and may rebuild all scores at tumbling-epoch rollovers.
///
/// Layout (see DESIGN.md §10): join indexes are open-addressed
/// [`FlatIndex`] tables (no SipHash, no per-value `Vec`), and the per-slot
/// sidecars `index_pos` / `produced` / `state` are flat arrays indexed by
/// the slot's dense arena index.
pub struct WindowStore {
    spec: WindowSpec,
    capacity: usize,
    /// Schema attribute indexes that carry a hash index.
    join_attrs: Vec<usize>,
    arena: Arena<Entry>,
    /// Arrival-ordered queue of slots for expiration (lazily cleaned).
    expiry: VecDeque<Slot>,
    /// `indexes[a]` maps a value of `join_attrs[a]` to the slots holding it.
    indexes: Vec<FlatIndex>,
    heap: IndexedHeap,
    /// Arrivals observed on this stream (count includes shed tuples).
    arrivals_seen: u64,
    /// `index_pos[slot.index() * join_attrs.len() + a]` = position of the
    /// slot inside its bucket of indexed attribute `a`, for O(1)
    /// swap-removal. Valid only while the slot is live.
    index_pos: Vec<u32>,
    /// Join-output tuples attributed to each live slot so far (used by the
    /// random-sampling priority measure). Indexed by `slot.index()`.
    produced: Vec<u64>,
    /// Opaque per-tuple policy state (e.g. the cached expected-output
    /// denominator of the random-sampling measure), refreshed whenever the
    /// priority is recomputed from scratch. Indexed by `slot.index()`.
    state: Vec<f64>,
}

impl WindowStore {
    /// Creates an empty store.
    ///
    /// `join_attrs` are the schema attribute indexes to hash-index (from
    /// [`mstream_types::JoinQuery::join_attrs`]); `capacity` is the memory
    /// allocated to this window, in tuples.
    pub fn new(spec: WindowSpec, join_attrs: Vec<usize>, capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        let n_idx = join_attrs.len();
        // Cap the eager reservation: "unbounded" reference joins pass huge
        // capacities and grow on demand instead.
        let reserve = capacity.min(4096) + 1;
        WindowStore {
            spec,
            capacity,
            join_attrs,
            arena: Arena::with_capacity(reserve),
            expiry: VecDeque::with_capacity(reserve),
            indexes: (0..n_idx).map(|_| FlatIndex::new()).collect(),
            heap: IndexedHeap::new(),
            arrivals_seen: 0,
            index_pos: Vec::with_capacity(reserve * n_idx),
            produced: Vec::with_capacity(reserve),
            state: Vec::with_capacity(reserve),
        }
    }

    /// Number of resident tuples.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The allocated capacity in tuples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Arrivals observed so far (including tuples that were shed).
    pub fn arrivals_seen(&self) -> u64 {
        self.arrivals_seen
    }

    /// Notes an arrival on this stream *without* storing it (the arrival
    /// still advances tuple-based expiration). Used when the queue sheds a
    /// tuple before it ever reaches the window.
    pub fn note_arrival(&mut self) {
        self.arrivals_seen += 1;
    }

    /// Notes `n` arrivals at once — the bulk form of
    /// [`WindowStore::note_arrival`], used by sharded execution to apply a
    /// coalesced foreign-arrival tick summary. Ticks only advance the
    /// counter (expiry is evaluated on the next stored arrival), so `n`
    /// single ticks and one bulk tick are observationally identical.
    pub fn note_arrivals(&mut self, n: u64) {
        self.arrivals_seen += n;
    }

    /// Removes all expired tuples as of `now`, returning them oldest-first.
    ///
    /// Time-based windows expire tuples with `ts + p <= now`; tuple-based
    /// windows expire tuples once `count` newer arrivals have been seen on
    /// this stream (paper §4.1 semantics — arrivals, not residents, so
    /// shedding does not extend lifetimes).
    pub fn expire(&mut self, now: VTime) -> Vec<Tuple> {
        let mut expired = Vec::new();
        while let Some(&slot) = self.expiry.front() {
            // Lazily drop queue entries for tuples already evicted.
            let Some(entry) = self.arena.get(slot) else {
                self.expiry.pop_front();
                continue;
            };
            let is_expired = match self.spec {
                WindowSpec::Time(p) => entry.tuple.ts + p <= now,
                WindowSpec::Tuples(count) => {
                    self.arrivals_seen.saturating_sub(entry.arrival_idx) >= count
                }
            };
            if !is_expired {
                break;
            }
            self.expiry.pop_front();
            expired.push(self.remove_slot(slot).expect("slot checked live"));
        }
        expired
    }

    /// Inserts `tuple` with the given priority `score`, evicting the
    /// lowest-priority resident (possibly `tuple` itself) if the window is
    /// at capacity. Counts the arrival.
    pub fn insert(&mut self, tuple: Tuple, score: f64) -> InsertOutcome {
        self.insert_scored(tuple, score, 0.0)
    }

    /// [`Self::insert`] with explicit per-tuple policy state.
    pub fn insert_scored(&mut self, tuple: Tuple, score: f64, state: f64) -> InsertOutcome {
        self.arrivals_seen += 1;
        let seq = tuple.seq;
        let slot = self.store(tuple, score, state);
        if self.arena.len() <= self.capacity {
            return InsertOutcome {
                slot: Some(slot),
                eviction: Eviction::None,
            };
        }
        let (victim_slot, _) = self.heap.peek_min().expect("non-empty over capacity");
        let victim = self
            .remove_slot(victim_slot)
            .expect("heap entries are live");
        let stored = victim.seq != seq;
        InsertOutcome {
            slot: stored.then_some(slot),
            eviction: Eviction::Evicted(victim),
        }
    }

    /// Stores a tuple unconditionally (no capacity check, no arrival count).
    fn store(&mut self, tuple: Tuple, score: f64, state: f64) -> Slot {
        let tie = tuple.seq.0;
        let arrival_idx = self.arrivals_seen;
        let n_idx = self.join_attrs.len();
        let slot = self.arena.insert(Entry { tuple, arrival_idx });
        let i = slot.index();
        if i >= self.produced.len() {
            self.produced.resize(i + 1, 0);
            self.state.resize(i + 1, 0.0);
            self.index_pos.resize((i + 1) * n_idx, 0);
        }
        self.produced[i] = 0;
        self.state[i] = state;
        let entry = self.arena.get(slot).expect("just inserted");
        for a in 0..n_idx {
            let value = entry.tuple.values[self.join_attrs[a]];
            let pos = self.indexes[a].insert(value.0, slot);
            self.index_pos[i * n_idx + a] = pos;
        }
        self.expiry.push_back(slot);
        self.heap.insert(slot, score, tie);
        slot
    }

    /// Fully removes `slot` from arena, indexes and heap.
    fn remove_slot(&mut self, slot: Slot) -> Option<Tuple> {
        let entry = self.arena.remove(slot)?;
        let i = slot.index();
        let n_idx = self.join_attrs.len();
        for (a, &attr) in self.join_attrs.iter().enumerate() {
            let value = entry.tuple.values[attr];
            let pos = self.index_pos[i * n_idx + a];
            if let Some(moved) = self.indexes[a].remove(value.0, pos, slot) {
                self.index_pos[moved.index() * n_idx + a] = pos;
            }
        }
        self.heap.remove(slot);
        // The expiry deque entry is cleaned lazily.
        Some(entry.tuple)
    }

    /// Evicts and returns the lowest-priority tuple, if any.
    pub fn evict_min(&mut self) -> Option<(Tuple, f64)> {
        let (slot, score) = self.heap.peek_min()?;
        let tuple = self.remove_slot(slot).expect("heap entries are live");
        Some((tuple, score))
    }

    /// The lowest priority currently resident, if any (global-pool variant).
    pub fn peek_min(&self) -> Option<(Slot, f64)> {
        self.heap.peek_min()
    }

    /// Slots holding `value` on schema attribute `attr`, in bucket order.
    ///
    /// # Panics
    /// Panics if `attr` is not one of the indexed join attributes.
    pub fn probe(&self, attr: usize, value: Value) -> Candidates<'_> {
        let a = self
            .join_attrs
            .iter()
            .position(|&ja| ja == attr)
            .unwrap_or_else(|| panic!("attribute {attr} is not indexed"));
        self.indexes[a].probe(value.0)
    }

    /// Prefetch hint for an upcoming [`WindowStore::probe`] of the same
    /// `(attr, value)`: pulls the index cells the probe will touch toward
    /// the cache. Semantically a no-op (see [`FlatIndex::prefetch`]);
    /// unindexed attributes are silently ignored — a hint must never
    /// panic on speculative input.
    #[inline]
    pub fn prefetch(&self, attr: usize, value: Value) {
        if let Some(a) = self.join_attrs.iter().position(|&ja| ja == attr) {
            self.indexes[a].prefetch(value.0);
        }
    }

    /// The tuple at `slot`, if live.
    pub fn tuple(&self, slot: Slot) -> Option<&Tuple> {
        self.arena.get(slot).map(|e| &e.tuple)
    }

    /// Adds `n` to the produced-output counter of `slot` (for the
    /// random-sampling priority). Returns the new total, or `None` if the
    /// slot is stale.
    pub fn add_produced(&mut self, slot: Slot, n: u64) -> Option<u64> {
        if !self.arena.contains(slot) {
            return None;
        }
        let p = &mut self.produced[slot.index()];
        *p += n;
        Some(*p)
    }

    /// The produced-output counter of `slot`.
    pub fn produced(&self, slot: Slot) -> Option<u64> {
        self.arena.contains(slot).then(|| self.produced[slot.index()])
    }

    /// The cached policy state of `slot`.
    pub fn state(&self, slot: Slot) -> Option<f64> {
        self.arena.contains(slot).then(|| self.state[slot.index()])
    }

    /// Updates the priority of a resident tuple; `false` if the slot is
    /// stale.
    pub fn update_priority(&mut self, slot: Slot, score: f64) -> bool {
        self.heap.update(slot, score)
    }

    /// The priority of a resident tuple.
    pub fn priority(&self, slot: Slot) -> Option<f64> {
        self.heap.score(slot)
    }

    /// Recomputes every resident tuple's priority (tumbling-epoch rollover:
    /// "reset all the priority queues"). The callback sees the tuple and
    /// its produced-so-far counter and returns `(score, policy state)`.
    pub fn rebuild_priorities(&mut self, mut score: impl FnMut(&Tuple, u64) -> (f64, f64)) {
        self.heap.clear();
        for (slot, entry) in self.arena.iter() {
            let i = slot.index();
            let (sc, st) = score(&entry.tuple, self.produced[i]);
            self.state[i] = st;
            self.heap.insert(slot, sc, entry.tuple.seq.0);
        }
    }

    /// Key-grouped variant of [`WindowStore::rebuild_priorities`] for
    /// policies whose score factors into a per-key estimate recombined per
    /// tuple (DESIGN.md §16): residents are walked **grouped by distinct
    /// join-key value** via the hash index, so the scoring callback can
    /// compute the expensive estimate once per distinct key and fan it out
    /// to every slot holding that key — O(distinct keys × kernel +
    /// residents) instead of O(residents × kernel).
    ///
    /// The callback sees `(tuple, produced, shared)` where `shared` is
    /// `None` for the first slot of each key group and `Some(estimate)` —
    /// the third element of the previous return — for the rest; it returns
    /// `(score, policy state, estimate)`.
    ///
    /// Stores indexing more than one join attribute fall back to the
    /// per-slot walk with `shared = None` throughout (a bucket of one
    /// index does not pin the other indexed values, so no estimate may be
    /// shared). Either walk visits every resident exactly once, and the
    /// heap orders strictly by `(score, seq)` — a total order, since
    /// sequence numbers are unique — so the visit order is unobservable:
    /// grouped and arena-order rebuilds yield identical eviction behavior.
    pub fn rebuild_priorities_grouped(
        &mut self,
        mut score: impl FnMut(&Tuple, u64, Option<f64>) -> (f64, f64, f64),
    ) {
        if self.join_attrs.len() != 1 {
            self.rebuild_priorities(|tuple, produced| {
                let (sc, st, _) = score(tuple, produced, None);
                (sc, st)
            });
            return;
        }
        self.heap.clear();
        let Self {
            arena,
            indexes,
            heap,
            produced,
            state,
            ..
        } = self;
        for (_value, cands) in indexes[0].iter_keys() {
            let mut shared: Option<f64> = None;
            for slot in cands.iter() {
                let entry = arena.get(slot).expect("indexed slot is live");
                let i = slot.index();
                let (sc, st, est) = score(&entry.tuple, produced[i], shared);
                shared = Some(est);
                state[i] = st;
                heap.insert(slot, sc, entry.tuple.seq.0);
            }
        }
    }

    /// Iterates over `(Slot, &Tuple)` for all resident tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Tuple)> {
        self.arena.iter().map(|(slot, e)| (slot, &e.tuple))
    }

    /// The oldest resident tuple's sequence number, if any.
    pub fn oldest_seq(&self) -> Option<SeqNo> {
        self.iter().map(|(_, t)| t.seq).min()
    }

    /// Internal consistency check used by tests: every resident tuple is in
    /// the heap and in every index bucket its values demand, and vice versa.
    #[doc(hidden)]
    pub fn check_consistency(&self) {
        assert_eq!(self.arena.len(), self.heap.len(), "arena vs heap size");
        let n_idx = self.join_attrs.len();
        for (slot, entry) in self.arena.iter() {
            assert!(self.heap.contains(slot), "live slot missing from heap");
            for (a, &attr) in self.join_attrs.iter().enumerate() {
                let value = entry.tuple.values[attr];
                let pos = self.index_pos[slot.index() * n_idx + a] as usize;
                let bucket = self.indexes[a].probe(value.0);
                assert_eq!(bucket.get(pos), Some(slot), "index_pos desynchronized");
            }
        }
        if !self.join_attrs.is_empty() {
            let indexed = self.indexes[0].len();
            assert_eq!(indexed, self.arena.len(), "index vs arena size");
        }
    }

    /// Full structural audit: [`Self::check_consistency`] plus heap-order /
    /// position-map invariants, the open-addressed indexes' internal
    /// invariants *and* a cross-check of their contents against a reference
    /// `HashMap` rebuilt from the arena, the capacity bound, and agreement
    /// between the lazily-cleaned expiry deque and the arena.
    ///
    /// O(n log n); compiled only for tests and the `audit` feature, where
    /// the differential harness calls it after every arrival.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(any(test, feature = "audit"))]
    pub fn check_invariants(&self) {
        self.check_consistency();
        self.heap.check_invariants();
        self.check_index_against_reference();
        assert!(
            self.arena.len() <= self.capacity,
            "window over capacity: {} > {}",
            self.arena.len(),
            self.capacity
        );
        // Every live slot must appear in the expiry deque exactly once, and
        // live deque entries must run oldest-first (nondecreasing seq) or
        // FIFO expiration would release tuples out of order.
        let mut seen = std::collections::HashSet::new();
        let mut last_seq: Option<SeqNo> = None;
        for &slot in &self.expiry {
            let Some(entry) = self.arena.get(slot) else {
                continue; // stale entry awaiting lazy cleanup
            };
            assert!(seen.insert(slot), "slot queued for expiry twice: {slot:?}");
            if let Some(prev) = last_seq {
                assert!(
                    entry.tuple.seq >= prev,
                    "expiry deque out of arrival order"
                );
            }
            last_seq = Some(entry.tuple.seq);
            // A resident must not already be past its tuple-window bound.
            if let WindowSpec::Tuples(count) = self.spec {
                assert!(
                    self.arrivals_seen.saturating_sub(entry.arrival_idx) <= count,
                    "resident tuple outlived its tuple window"
                );
            }
        }
        assert_eq!(
            seen.len(),
            self.arena.len(),
            "live slot missing from expiry deque"
        );
    }

    /// Differential check of every open-addressed index against a reference
    /// `HashMap<value, Vec<Slot>>` rebuilt from the arena: per-key slot
    /// multisets must agree exactly and the index must hold no extra keys.
    #[cfg(any(test, feature = "audit"))]
    fn check_index_against_reference(&self) {
        use std::collections::HashMap;
        for (a, &attr) in self.join_attrs.iter().enumerate() {
            self.indexes[a].check_invariants();
            let mut reference: HashMap<u64, Vec<Slot>> = HashMap::new();
            for (slot, entry) in self.arena.iter() {
                reference
                    .entry(entry.tuple.values[attr].0)
                    .or_default()
                    .push(slot);
            }
            assert_eq!(
                self.indexes[a].n_keys(),
                reference.len(),
                "index {a}: distinct-key count diverges from reference"
            );
            for (key, want) in reference.iter_mut() {
                let mut got: Vec<Slot> = self.indexes[a].probe(*key).iter().collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(
                    &got, want,
                    "index {a} key {key}: slots diverge from reference"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{StreamId, VDur};
    use proptest::prelude::*;

    fn tup(seq: u64, ts_secs: u64, a: u64, b: u64) -> Tuple {
        Tuple::new(
            StreamId(0),
            VTime::from_secs(ts_secs),
            SeqNo(seq),
            vec![Value(a), Value(b)],
        )
    }

    fn time_store(cap: usize) -> WindowStore {
        WindowStore::new(WindowSpec::Time(VDur::from_secs(10)), vec![0, 1], cap)
    }

    #[test]
    fn insert_within_capacity_keeps_all() {
        let mut w = time_store(3);
        for i in 0..3 {
            let out = w.insert(tup(i, 0, i, 0), 1.0);
            assert_eq!(out.eviction, Eviction::None);
            assert!(out.slot.is_some());
        }
        assert_eq!(w.len(), 3);
        w.check_consistency();
    }

    #[test]
    fn overflow_evicts_lowest_priority() {
        let mut w = time_store(2);
        w.insert(tup(0, 0, 10, 0), 5.0);
        w.insert(tup(1, 0, 11, 0), 1.0);
        let out = w.insert(tup(2, 0, 12, 0), 3.0);
        match out.eviction {
            Eviction::Evicted(t) => assert_eq!(t.seq, SeqNo(1), "lowest priority evicted"),
            Eviction::None => panic!("expected eviction"),
        }
        assert!(out.slot.is_some());
        assert_eq!(w.len(), 2);
        w.check_consistency();
    }

    #[test]
    fn new_tuple_can_be_its_own_victim() {
        let mut w = time_store(2);
        w.insert(tup(0, 0, 10, 0), 5.0);
        w.insert(tup(1, 0, 11, 0), 4.0);
        let out = w.insert(tup(2, 0, 12, 0), 0.1);
        assert_eq!(out.slot, None, "new tuple was immediately dismissed");
        match out.eviction {
            Eviction::Evicted(t) => assert_eq!(t.seq, SeqNo(2)),
            Eviction::None => panic!("expected eviction"),
        }
        assert_eq!(w.len(), 2);
        w.check_consistency();
    }

    #[test]
    fn time_expiration_is_strict_boundary() {
        let mut w = time_store(10);
        w.insert(tup(0, 0, 1, 1), 1.0);
        w.insert(tup(1, 5, 2, 2), 1.0);
        // p = 10s: the t=0 tuple dies exactly at now=10.
        assert!(w.expire(VTime::from_secs(9)).is_empty());
        let dead = w.expire(VTime::from_secs(10));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].seq, SeqNo(0));
        assert_eq!(w.len(), 1);
        w.check_consistency();
    }

    #[test]
    fn tuple_window_counts_arrivals_not_residents() {
        let mut w = WindowStore::new(WindowSpec::Tuples(3), vec![0], 10);
        w.insert(tup(0, 0, 1, 0), 1.0);
        // Two arrivals that were shed upstream still age the window.
        w.note_arrival();
        w.note_arrival();
        assert!(w.expire(VTime::ZERO).is_empty(), "2 newer arrivals < 3");
        w.note_arrival();
        let dead = w.expire(VTime::ZERO);
        assert_eq!(dead.len(), 1, "3 newer arrivals expire the tuple");
    }

    #[test]
    fn probe_finds_matching_tuples() {
        let mut w = time_store(10);
        w.insert(tup(0, 0, 7, 1), 1.0);
        w.insert(tup(1, 0, 7, 2), 1.0);
        w.insert(tup(2, 0, 8, 7), 1.0);
        assert_eq!(w.probe(0, Value(7)).len(), 2);
        assert_eq!(w.probe(0, Value(8)).len(), 1);
        assert_eq!(w.probe(0, Value(9)).len(), 0);
        // Attribute 1 is indexed separately.
        assert_eq!(w.probe(1, Value(7)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "not indexed")]
    fn probe_unindexed_attr_panics() {
        let w = WindowStore::new(WindowSpec::Tuples(3), vec![0], 10);
        let _ = w.probe(1, Value(0));
    }

    #[test]
    fn eviction_removes_from_indexes() {
        let mut w = time_store(1);
        w.insert(tup(0, 0, 7, 1), 1.0);
        w.insert(tup(1, 0, 7, 2), 2.0); // evicts seq 0
        assert_eq!(w.probe(0, Value(7)).len(), 1);
        let slot = w.probe(0, Value(7)).get(0).unwrap();
        assert_eq!(w.tuple(slot).unwrap().seq, SeqNo(1));
        w.check_consistency();
    }

    #[test]
    fn produced_counters() {
        let mut w = time_store(4);
        let slot = w.insert(tup(0, 0, 1, 1), 1.0).slot.unwrap();
        assert_eq!(w.produced(slot), Some(0));
        assert_eq!(w.add_produced(slot, 3), Some(3));
        assert_eq!(w.add_produced(slot, 2), Some(5));
        let (victim, _) = w.evict_min().unwrap();
        assert_eq!(victim.seq, SeqNo(0));
        assert_eq!(w.produced(slot), None, "stale after eviction");
    }

    #[test]
    fn produced_counter_resets_on_slot_reuse() {
        // A new tuple that recycles an evicted tuple's arena slot must not
        // inherit its produced counter or policy state.
        let mut w = time_store(1);
        let s0 = w.insert_scored(tup(0, 0, 1, 1), 1.0, 9.0).slot.unwrap();
        assert_eq!(w.add_produced(s0, 7), Some(7));
        w.insert_scored(tup(1, 0, 2, 2), 2.0, 3.0); // evicts seq 0, freeing its slot
        w.insert_scored(tup(2, 0, 3, 3), 3.0, 4.0); // evicts seq 1, recycles slot 0
        let s2 = w.probe(0, Value(3)).get(0).unwrap();
        assert_eq!(s2.index(), s0.index(), "arena slot recycled");
        assert_eq!(w.produced(s2), Some(0));
        assert_eq!(w.state(s2), Some(4.0));
        assert_eq!(w.produced(s0), None, "stale handle still rejected");
        w.check_invariants();
    }

    #[test]
    fn rebuild_priorities_changes_eviction_order() {
        let mut w = time_store(3);
        w.insert(tup(0, 0, 1, 0), 1.0);
        w.insert(tup(1, 0, 2, 0), 2.0);
        w.insert(tup(2, 0, 3, 0), 3.0);
        // Invert: oldest gets the highest score.
        w.rebuild_priorities(|t, _| (100.0 - t.seq.0 as f64, 0.0));
        let (victim, score) = w.evict_min().unwrap();
        assert_eq!(victim.seq, SeqNo(2));
        assert_eq!(score, 98.0);
        w.check_consistency();
    }

    #[test]
    fn grouped_rebuild_shares_one_estimate_per_key() {
        let mut w = WindowStore::new(WindowSpec::secs(10), vec![0], 16);
        // Keys on attr 0: value 7 held by three slots, value 8 by two,
        // value 9 by one.
        for (seq, a) in [(0, 7), (1, 7), (2, 8), (3, 9), (4, 7), (5, 8)] {
            w.insert(tup(seq, 0, a, seq), 1.0);
        }
        let mut estimates = 0u32;
        w.rebuild_priorities_grouped(|t, _produced, shared| {
            let est = shared.unwrap_or_else(|| {
                estimates += 1;
                (t.values[0].0 * 10) as f64
            });
            // Score = shared estimate + per-slot recombine (seq here).
            (est + t.seq.0 as f64, est, est)
        });
        assert_eq!(estimates, 3, "one estimate per distinct key, not per slot");
        // Every slot carries the recombined score and the shared state.
        for (slot, t) in w.iter().collect::<Vec<_>>() {
            let want = (t.values[0].0 * 10) as f64;
            assert_eq!(w.priority(slot), Some(want + t.seq.0 as f64));
            assert_eq!(w.state(slot), Some(want));
        }
        w.check_consistency();
        // Eviction order matches a per-slot rebuild with the same scores.
        let (victim, score) = w.evict_min().unwrap();
        assert_eq!(victim.seq, SeqNo(0), "lowest key, oldest slot");
        assert_eq!(score, 70.0);
    }

    #[test]
    fn grouped_rebuild_multi_attr_falls_back_per_slot() {
        // Two indexed attributes: one bucket does not pin the other value,
        // so the walk must degrade to per-slot with no sharing.
        let mut w = WindowStore::new(WindowSpec::secs(10), vec![0, 1], 16);
        w.insert(tup(0, 0, 7, 1), 1.0);
        w.insert(tup(1, 0, 7, 2), 1.0);
        let mut shared_seen = 0u32;
        let mut calls = 0u32;
        w.rebuild_priorities_grouped(|t, _p, shared| {
            calls += 1;
            if shared.is_some() {
                shared_seen += 1;
            }
            (t.seq.0 as f64, 0.0, 0.0)
        });
        assert_eq!(calls, 2);
        assert_eq!(shared_seen, 0, "no estimate sharing across multi-attr keys");
        w.check_consistency();
    }

    #[test]
    fn update_priority_single() {
        let mut w = time_store(3);
        let s0 = w.insert(tup(0, 0, 1, 0), 5.0).slot.unwrap();
        w.insert(tup(1, 0, 2, 0), 4.0);
        assert!(w.update_priority(s0, 0.5));
        assert_eq!(w.peek_min().unwrap().0, s0);
        assert_eq!(w.priority(s0), Some(0.5));
    }

    #[test]
    fn expire_after_evictions_skips_stale_entries() {
        let mut w = time_store(2);
        w.insert(tup(0, 0, 1, 0), 0.0);
        w.insert(tup(1, 0, 2, 0), 5.0);
        w.insert(tup(2, 1, 3, 0), 5.0); // evicts seq 0 (front of expiry queue)
        let dead = w.expire(VTime::from_secs(10));
        assert_eq!(dead.len(), 1, "only seq 1 expires; seq 0 already gone");
        assert_eq!(dead[0].seq, SeqNo(1));
        assert_eq!(w.len(), 1);
        w.check_consistency();
    }

    #[test]
    fn oldest_seq_reports_minimum() {
        let mut w = time_store(5);
        assert_eq!(w.oldest_seq(), None);
        w.insert(tup(5, 0, 1, 0), 1.0);
        w.insert(tup(3, 0, 1, 0), 1.0);
        assert_eq!(w.oldest_seq(), Some(SeqNo(3)));
    }

    proptest! {
        /// Random mixes of inserts, evictions and expirations never break
        /// internal consistency, and capacity is never exceeded.
        #[test]
        fn store_stays_consistent(ops in proptest::collection::vec((0u8..3, 0u64..20, 0u64..5), 1..200)) {
            let mut w = WindowStore::new(WindowSpec::Time(VDur::from_secs(5)), vec![0, 1], 8);
            let mut seq = 0u64;
            let mut clock = 0u64;
            for (op, val, score) in ops {
                match op {
                    0 => {
                        let t = tup(seq, clock, val, val % 3);
                        seq += 1;
                        w.insert(t, score as f64);
                    }
                    1 => {
                        clock += 1;
                        let _ = w.expire(VTime::from_secs(clock));
                    }
                    _ => {
                        let _ = w.evict_min();
                    }
                }
                prop_assert!(w.len() <= 8);
                w.check_invariants();
            }
        }
    }
}
