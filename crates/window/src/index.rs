//! An open-addressed join-attribute index.
//!
//! [`WindowStore`](crate::store::WindowStore) keeps one hash index per join
//! attribute so an arriving tuple can probe every other window in O(1) per
//! candidate. The first implementation used `HashMap<Value, Vec<Slot>>`,
//! which put a SipHash computation and a pointer chase (bucket `Vec`
//! header and heap payload) on the probe hot path, plus one heap
//! allocation per distinct value. [`FlatIndex`] replaces it with:
//!
//! * an **open-addressed table** (linear probing, power-of-two capacity,
//!   tombstone deletion) keyed by the raw `u64` value payload, mixed with
//!   SplitMix64 — a handful of arithmetic ops instead of SipHash;
//! * buckets that **inline the first [`INLINE`] slots**, so low-fanout keys
//!   (the common case under shedding) are served entirely from the bucket
//!   cache line;
//! * a **side spill arena** for high-fanout keys: one shared `Vec<Slot>`
//!   carved into power-of-two blocks with per-class free lists, so growth
//!   never allocates per key and freed blocks are recycled.
//!
//! The per-key slot list preserves the exact semantics of the old
//! `Vec<Slot>` bucket: `insert` appends (returning the position, which the
//! store records for O(1) removal) and `remove` swap-removes (returning the
//! slot that moved into the hole, so the store can patch its recorded
//! position). Probe order is therefore **bit-identical** to the legacy
//! index, which is what keeps every engine result byte-for-byte unchanged.

use crate::arena::Slot;

/// Slots stored inline in each bucket before spilling to the side arena.
pub const INLINE: usize = 3;

const EMPTY: u8 = 0;
const OCCUPIED: u8 = 1;
const TOMBSTONE: u8 = 2;

/// SplitMix64 finalizer: a full-avalanche mix of the raw key. The same
/// function the sharded engine uses for routing, so behaviour is stable
/// across platforms and runs.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One open-addressing cell's payload: the slot list (inline head, spill
/// tail). The key itself lives in a dense side array so the probe scan
/// walks 8-byte cells instead of dragging the whole bucket through cache.
#[derive(Clone, Copy)]
struct Bucket {
    /// Number of slots held for the key (inline + spill).
    len: u32,
    /// Offset of this bucket's spill block in the shared arena.
    spill_off: u32,
    /// Allocated spill capacity (a power of two), or 0 when unspilled.
    spill_cap: u32,
    inline: [Slot; INLINE],
}

impl Bucket {
    const VACANT: Bucket = Bucket {
        len: 0,
        spill_off: 0,
        spill_cap: 0,
        inline: [Slot::DANGLING; INLINE],
    };

    fn new(first: Slot) -> Self {
        let mut inline = [Slot::DANGLING; INLINE];
        inline[0] = first;
        Bucket {
            len: 1,
            spill_off: 0,
            spill_cap: 0,
            inline,
        }
    }
}

/// A borrowed view of one key's candidate slots: the inline head plus the
/// spilled tail. Iterates in insertion order (as perturbed by
/// swap-removal), exactly like the legacy `Vec<Slot>` bucket.
#[derive(Clone, Copy)]
pub struct Candidates<'a> {
    head: &'a [Slot],
    tail: &'a [Slot],
}

impl<'a> Candidates<'a> {
    /// The empty candidate list.
    pub const EMPTY: Candidates<'static> = Candidates { head: &[], tail: &[] };

    /// Number of candidate slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// Whether there are no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// The candidate at `pos`, if in range.
    #[inline]
    pub fn get(&self, pos: usize) -> Option<Slot> {
        if pos < self.head.len() {
            Some(self.head[pos])
        } else {
            self.tail.get(pos - self.head.len()).copied()
        }
    }

    /// The two contiguous runs `(inline head, spill tail)` — the shape the
    /// iterative probe kernel consumes without an iterator in the way.
    #[inline]
    pub fn parts(&self) -> (&'a [Slot], &'a [Slot]) {
        (self.head, self.tail)
    }

    /// Iterates the candidates in bucket order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Slot> + 'a {
        self.head.iter().chain(self.tail.iter()).copied()
    }
}

impl<'a> IntoIterator for Candidates<'a> {
    type Item = Slot;
    type IntoIter = std::iter::Copied<
        std::iter::Chain<std::slice::Iter<'a, Slot>, std::slice::Iter<'a, Slot>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.head.iter().chain(self.tail.iter()).copied()
    }
}

/// An open-addressed multimap from `u64` join-key payloads to arena slots.
///
/// See the [module docs](self) for the layout. All operations the window
/// store needs are O(1) (amortized for growth): `insert` (append to a
/// key's list), `remove` (swap-remove by recorded position) and `probe`.
#[derive(Default)]
pub struct FlatIndex {
    ctrl: Vec<u8>,
    /// Key of each occupied cell, parallel to `buckets`. Kept separate so
    /// the linear-probe scan touches a dense `u64` array (8 keys per cache
    /// line) and only dereferences the 40-byte bucket on a key match.
    keys: Vec<u64>,
    buckets: Vec<Bucket>,
    /// Shared spill storage, carved into power-of-two blocks.
    spill: Vec<Slot>,
    /// `free[c]` = offsets of recycled spill blocks of size `1 << c`.
    free: Vec<Vec<u32>>,
    /// Occupied buckets (distinct keys present).
    live: usize,
    /// Occupied + tombstoned buckets (probe-chain occupancy).
    used: usize,
    /// Total slots across all keys.
    total: usize,
}

impl FlatIndex {
    /// An empty index.
    pub fn new() -> Self {
        FlatIndex::default()
    }

    /// Total slots across all keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the index holds no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct keys present.
    #[inline]
    pub fn n_keys(&self) -> usize {
        self.live
    }

    /// Hints the cache to pull in the control/key/bucket cells `key`'s
    /// probe will start at. Semantically a no-op — prefetching is invisible
    /// to every observable result — so batched callers may issue it for a
    /// whole batch before probing without affecting bit-identity. Compiles
    /// to nothing off `x86_64`.
    #[inline]
    pub fn prefetch(&self, key: u64) {
        if self.buckets.is_empty() {
            return;
        }
        let i = (mix(key) as usize) & (self.buckets.len() - 1);
        #[cfg(target_arch = "x86_64")]
        // The `allow` is scoped to the crate-level `deny(unsafe_code)`
        // relaxation documented in lib.rs: `_mm_prefetch` is a pure cache
        // hint with no memory effects, safe for any address.
        #[allow(unsafe_code)]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // SAFETY: prefetch has no side effects and tolerates any
            // pointer; these are in-bounds element pointers regardless.
            unsafe {
                _mm_prefetch(self.ctrl.as_ptr().add(i) as *const i8, _MM_HINT_T0);
                _mm_prefetch(self.keys.as_ptr().add(i) as *const i8, _MM_HINT_T0);
                _mm_prefetch(self.buckets.as_ptr().add(i) as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = i;
    }

    /// The candidate slots of `key`, in bucket order.
    #[inline]
    pub fn probe(&self, key: u64) -> Candidates<'_> {
        match self.find(key) {
            Some(bi) => self.candidates(bi),
            None => Candidates::EMPTY,
        }
    }

    /// Appends `slot` to `key`'s list, returning its position (for later
    /// O(1) [`FlatIndex::remove`]).
    pub fn insert(&mut self, key: u64, slot: Slot) -> u32 {
        self.total += 1;
        if let Some(bi) = self.find(key) {
            return self.bucket_push(bi, slot);
        }
        if self.buckets.is_empty() || (self.used + 1) * 2 > self.buckets.len() {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        let mut dest: Option<usize> = None;
        loop {
            match self.ctrl[i] {
                EMPTY => {
                    // Prefer the first tombstone passed on the way; a fresh
                    // EMPTY cell extends probe-chain occupancy.
                    let d = dest.unwrap_or(i);
                    if d == i {
                        self.used += 1;
                    }
                    dest = Some(d);
                    break;
                }
                TOMBSTONE if dest.is_none() => dest = Some(i),
                _ => {}
            }
            i = (i + 1) & mask;
        }
        let d = dest.expect("insert destination found");
        self.ctrl[d] = OCCUPIED;
        self.keys[d] = key;
        self.buckets[d] = Bucket::new(slot);
        self.live += 1;
        0
    }

    /// Swap-removes position `pos` from `key`'s list. Returns the slot
    /// that moved into `pos` (the former last element), or `None` if `pos`
    /// was the last. The caller must patch the moved slot's recorded
    /// position.
    ///
    /// # Panics
    /// Panics (in debug builds) if `key` is absent, `pos` is out of range,
    /// or the entry at `pos` is not `expected`.
    pub fn remove(&mut self, key: u64, pos: u32, expected: Slot) -> Option<Slot> {
        let bi = self.find(key).expect("removing an unindexed key");
        debug_assert_eq!(
            self.bucket_get(bi, pos),
            expected,
            "recorded index position desynchronized"
        );
        let _ = expected;
        self.total -= 1;
        let last = self.buckets[bi].len - 1;
        let moved = if pos != last {
            let m = self.bucket_get(bi, last);
            self.bucket_set(bi, pos, m);
            Some(m)
        } else {
            None
        };
        self.buckets[bi].len = last;
        if last as usize == INLINE && self.buckets[bi].spill_cap > 0 {
            // The tail just emptied: recycle the spill block.
            let (off, cap) = (self.buckets[bi].spill_off, self.buckets[bi].spill_cap);
            self.free_block(off, cap);
            self.buckets[bi].spill_cap = 0;
        }
        if last == 0 {
            self.ctrl[bi] = TOMBSTONE;
            self.live -= 1;
        }
        moved
    }

    /// Iterates `(key, candidates)` over all present keys, in table order.
    pub fn iter_keys(&self) -> impl Iterator<Item = (u64, Candidates<'_>)> {
        self.ctrl
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == OCCUPIED)
            .map(move |(i, _)| (self.keys[i], self.candidates(i)))
    }

    #[inline]
    fn candidates(&self, bi: usize) -> Candidates<'_> {
        let b = &self.buckets[bi];
        let len = b.len as usize;
        if len <= INLINE {
            Candidates {
                head: &b.inline[..len],
                tail: &[],
            }
        } else {
            let off = b.spill_off as usize;
            Candidates {
                head: &b.inline,
                tail: &self.spill[off..off + (len - INLINE)],
            }
        }
    }

    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            let c = self.ctrl[i];
            if c == EMPTY {
                return None;
            }
            if c == OCCUPIED && self.keys[i] == key {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    fn bucket_get(&self, bi: usize, pos: u32) -> Slot {
        let b = &self.buckets[bi];
        debug_assert!(pos < b.len, "bucket position out of range");
        if (pos as usize) < INLINE {
            b.inline[pos as usize]
        } else {
            self.spill[b.spill_off as usize + pos as usize - INLINE]
        }
    }

    fn bucket_set(&mut self, bi: usize, pos: u32, slot: Slot) {
        let b = &mut self.buckets[bi];
        if (pos as usize) < INLINE {
            b.inline[pos as usize] = slot;
        } else {
            self.spill[b.spill_off as usize + pos as usize - INLINE] = slot;
        }
    }

    /// Appends `slot` to bucket `bi`, growing its spill block as needed.
    fn bucket_push(&mut self, bi: usize, slot: Slot) -> u32 {
        let len = self.buckets[bi].len;
        if (len as usize) < INLINE {
            self.buckets[bi].inline[len as usize] = slot;
        } else {
            let spill_len = len - INLINE as u32;
            let cap = self.buckets[bi].spill_cap;
            if spill_len == cap {
                let new_cap = (cap * 2).max(1);
                let new_off = self.alloc_block(new_cap);
                if cap > 0 {
                    let old = self.buckets[bi].spill_off as usize;
                    self.spill
                        .copy_within(old..old + spill_len as usize, new_off as usize);
                    self.free_block(self.buckets[bi].spill_off, cap);
                }
                self.buckets[bi].spill_off = new_off;
                self.buckets[bi].spill_cap = new_cap;
            }
            let off = self.buckets[bi].spill_off;
            self.spill[off as usize + spill_len as usize] = slot;
        }
        self.buckets[bi].len = len + 1;
        len
    }

    /// Takes a spill block of capacity `cap` (a power of two) from the
    /// free list, or carves a fresh one off the arena's end.
    fn alloc_block(&mut self, cap: u32) -> u32 {
        let class = cap.trailing_zeros() as usize;
        if let Some(off) = self.free.get_mut(class).and_then(Vec::pop) {
            return off;
        }
        let off = u32::try_from(self.spill.len()).expect("spill arena exceeds u32 offsets");
        self.spill
            .resize(self.spill.len() + cap as usize, Slot::DANGLING);
        off
    }

    fn free_block(&mut self, off: u32, cap: u32) {
        let class = cap.trailing_zeros() as usize;
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        self.free[class].push(off);
    }

    /// Rehashes into a table sized for the live keys, dropping tombstones.
    /// Spill blocks are untouched — only bucket cells move. The rehash
    /// target keeps occupancy at or below ~1/4 (growing again at 1/2), so
    /// linear-probe chains stay a couple of cells long.
    fn grow(&mut self) {
        let new_cap = ((self.live + 1) * 4).next_power_of_two().max(8);
        let old_buckets = std::mem::replace(&mut self.buckets, vec![Bucket::VACANT; new_cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for ((b, k), c) in old_buckets.into_iter().zip(old_keys).zip(old_ctrl) {
            if c != OCCUPIED {
                continue;
            }
            let mut i = (mix(k) as usize) & mask;
            while self.ctrl[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.ctrl[i] = OCCUPIED;
            self.keys[i] = k;
            self.buckets[i] = b;
        }
        self.used = self.live;
    }

    /// Structural invariant check: control-byte/bucket agreement, key
    /// reachability from its hash position, slot totals, spill-block
    /// bounds and free-list disjointness.
    ///
    /// O(capacity + spill); compiled only for tests and the `audit`
    /// feature, where the differential harness calls it (via
    /// `WindowStore::check_invariants`) after every arrival.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(any(test, feature = "audit"))]
    pub fn check_invariants(&self) {
        assert_eq!(self.ctrl.len(), self.buckets.len(), "ctrl/bucket length");
        assert_eq!(self.ctrl.len(), self.keys.len(), "ctrl/key length");
        let occupied = self.ctrl.iter().filter(|&&c| c == OCCUPIED).count();
        let tombs = self.ctrl.iter().filter(|&&c| c == TOMBSTONE).count();
        assert_eq!(occupied, self.live, "live count stale");
        assert_eq!(occupied + tombs, self.used, "used count stale");
        if !self.buckets.is_empty() {
            assert!(self.used < self.buckets.len(), "no EMPTY cell left");
            assert!(self.buckets.len().is_power_of_two(), "capacity not 2^k");
        }
        // Spill occupancy: live blocks must be in-bounds and disjoint from
        // each other and from every free-listed block.
        let mut claimed = vec![false; self.spill.len()];
        let mut claim = |off: u32, cap: u32| {
            for i in off as usize..(off + cap) as usize {
                assert!(i < claimed.len(), "spill block out of bounds");
                assert!(!claimed[i], "overlapping spill blocks at {i}");
                claimed[i] = true;
            }
        };
        let mut total = 0usize;
        let mut seen_keys = std::collections::HashSet::new();
        for (i, &c) in self.ctrl.iter().enumerate() {
            if c != OCCUPIED {
                continue;
            }
            let b = &self.buckets[i];
            let key = self.keys[i];
            assert!(b.len > 0, "occupied bucket with no slots");
            assert!(seen_keys.insert(key), "duplicate key {key}");
            assert_eq!(
                self.find(key),
                Some(i),
                "key {key} not reachable from its hash position"
            );
            total += b.len as usize;
            if b.spill_cap > 0 {
                assert!(b.spill_cap.is_power_of_two(), "spill cap not 2^k");
                claim(b.spill_off, b.spill_cap);
            }
            if b.len as usize > INLINE {
                assert!(
                    b.len as usize - INLINE <= b.spill_cap as usize,
                    "spilled slots exceed spill capacity"
                );
            }
        }
        assert_eq!(total, self.total, "slot total stale");
        for (class, blocks) in self.free.iter().enumerate() {
            for &off in blocks {
                claim(off, 1 << class);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;

    fn slots(n: usize) -> Vec<Slot> {
        let mut arena = Arena::new();
        (0..n).map(|i| arena.insert(i)).collect()
    }

    #[test]
    fn insert_probe_roundtrip() {
        let ss = slots(5);
        let mut idx = FlatIndex::new();
        assert!(idx.probe(7).is_empty());
        assert_eq!(idx.insert(7, ss[0]), 0);
        assert_eq!(idx.insert(7, ss[1]), 1);
        assert_eq!(idx.insert(9, ss[2]), 0);
        let got: Vec<Slot> = idx.probe(7).iter().collect();
        assert_eq!(got, vec![ss[0], ss[1]]);
        assert_eq!(idx.probe(9).len(), 1);
        assert!(idx.probe(8).is_empty());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.n_keys(), 2);
        idx.check_invariants();
    }

    #[test]
    fn spill_growth_keeps_order() {
        let ss = slots(40);
        let mut idx = FlatIndex::new();
        for (i, &s) in ss.iter().enumerate() {
            assert_eq!(idx.insert(1, s), i as u32);
        }
        let got: Vec<Slot> = idx.probe(1).iter().collect();
        assert_eq!(got, ss);
        let (head, tail) = idx.probe(1).parts();
        assert_eq!(head.len(), INLINE);
        assert_eq!(tail.len(), 40 - INLINE);
        idx.check_invariants();
    }

    #[test]
    fn swap_remove_matches_vec_semantics() {
        let ss = slots(6);
        let mut idx = FlatIndex::new();
        let mut model: Vec<Slot> = Vec::new();
        for &s in &ss {
            idx.insert(3, s);
            model.push(s);
        }
        // Remove from the middle: the last slot moves into the hole.
        let moved = idx.remove(3, 1, model[1]);
        model.swap_remove(1);
        assert_eq!(moved, Some(model[1]));
        let got: Vec<Slot> = idx.probe(3).iter().collect();
        assert_eq!(got, model);
        // Remove the tail: nothing moves.
        let last = model.len() as u32 - 1;
        assert_eq!(idx.remove(3, last, *model.last().unwrap()), None);
        model.pop();
        let got: Vec<Slot> = idx.probe(3).iter().collect();
        assert_eq!(got, model);
        idx.check_invariants();
    }

    #[test]
    fn emptied_keys_disappear_and_blocks_recycle() {
        let ss = slots(10);
        let mut idx = FlatIndex::new();
        for &s in &ss {
            idx.insert(5, s);
        }
        for _ in 0..ss.len() {
            let len = idx.probe(5).len();
            let last = idx.probe(5).get(len - 1).unwrap();
            idx.remove(5, len as u32 - 1, last);
            idx.check_invariants();
        }
        assert!(idx.probe(5).is_empty());
        assert_eq!(idx.n_keys(), 0);
        assert_eq!(idx.len(), 0);
        // The key can come back after tombstoning.
        idx.insert(5, ss[0]);
        assert_eq!(idx.probe(5).len(), 1);
        idx.check_invariants();
    }

    #[test]
    fn many_keys_force_rehash() {
        let ss = slots(512);
        let mut idx = FlatIndex::new();
        for (i, &s) in ss.iter().enumerate() {
            idx.insert(i as u64, s);
            if i % 64 == 0 {
                idx.check_invariants();
            }
        }
        assert_eq!(idx.n_keys(), 512);
        for (i, &s) in ss.iter().enumerate() {
            let got: Vec<Slot> = idx.probe(i as u64).iter().collect();
            assert_eq!(got, vec![s]);
        }
        idx.check_invariants();
    }

    #[test]
    fn churn_through_tombstones_stays_consistent() {
        // Insert/remove cycles over a small key domain: exercises tombstone
        // reuse and the no-EMPTY-starvation guarantee.
        let ss = slots(64);
        let mut idx = FlatIndex::new();
        for round in 0..200u64 {
            let key = round % 7;
            idx.insert(key, ss[(round % 64) as usize]);
            if round % 3 == 0 {
                let c = idx.probe(key);
                let last = c.len() - 1;
                let s = c.get(last).unwrap();
                idx.remove(key, last as u32, s);
            }
            idx.check_invariants();
        }
    }
}
