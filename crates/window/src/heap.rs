//! An indexed binary min-heap over arena slots.
//!
//! Shedding needs `pop_min` (evict the least-priority tuple) while
//! expiration and probing need `remove(slot)` for tuples that leave for
//! other reasons, and tumbling-epoch rollover needs `update(slot, prio)`.
//! A binary heap augmented with a slot→position map supports all three in
//! O(log n).

use crate::arena::Slot;

/// Heap priority: an `f64` score with a `u64` tiebreaker.
///
/// Scores must be finite (`NaN` would poison the heap order); the
/// tiebreaker (the tuple's arrival sequence number) makes the eviction
/// order — and therefore every experiment — fully deterministic even when
/// scores collide. Lower tiebreaker wins ties, i.e. among equal-priority
/// tuples the oldest is evicted first.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Prio {
    score: f64,
    tie: u64,
}

impl Prio {
    fn new(score: f64, tie: u64) -> Self {
        assert!(score.is_finite(), "heap priority must be finite, got {score}");
        Prio { score, tie }
    }

    fn less(&self, other: &Prio) -> bool {
        match self.score.partial_cmp(&other.score).expect("finite scores") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.tie < other.tie,
        }
    }
}

/// A min-heap of `(Slot, priority)` with O(log n) arbitrary removal.
///
/// The slot→position map is a flat array indexed by the slot's dense arena
/// index (`positions[i]` = heap position + 1, 0 = absent) rather than a
/// `HashMap<Slot, usize>`: every sift step updates positions, so keeping
/// the map hash-free takes SipHash out of the insert/evict/rescore hot
/// path entirely. Stale handles are detected by comparing the stored slot
/// (index *and* generation) at the recorded position; at most one
/// generation of an arena index can be resident, which the arena-backed
/// users (window stores, shed queues) guarantee structurally.
#[derive(Default)]
pub struct IndexedHeap {
    /// Heap-ordered array of (slot, priority).
    heap: Vec<(Slot, Prio)>,
    /// `positions[slot.index()]` = position in `heap` + 1, or 0 if the
    /// index is not resident.
    positions: Vec<u32>,
}

impl IndexedHeap {
    /// An empty heap.
    pub fn new() -> Self {
        IndexedHeap::default()
    }

    /// The heap position of `slot`, generation-checked: a stale handle
    /// whose arena index was reused maps to a cell holding the *new*
    /// slot, which the comparison rejects.
    #[inline]
    fn position(&self, slot: Slot) -> Option<usize> {
        let p = *self.positions.get(slot.index())?;
        if p == 0 {
            return None;
        }
        let pos = (p - 1) as usize;
        (self.heap[pos].0 == slot).then_some(pos)
    }

    #[inline]
    fn set_position(&mut self, slot: Slot, pos: usize) {
        self.positions[slot.index()] = pos as u32 + 1;
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `slot` with the given score and tiebreaker.
    ///
    /// # Panics
    /// Panics if `slot` is already present or `score` is not finite.
    pub fn insert(&mut self, slot: Slot, score: f64, tie: u64) {
        let i = slot.index();
        if i >= self.positions.len() {
            self.positions.resize(i + 1, 0);
        }
        assert!(self.positions[i] == 0, "slot already in heap: {slot:?}");
        let prio = Prio::new(score, tie);
        let idx = self.heap.len();
        self.heap.push((slot, prio));
        self.set_position(slot, idx);
        self.sift_up(idx);
    }

    /// The minimum entry without removing it.
    pub fn peek_min(&self) -> Option<(Slot, f64)> {
        self.heap.first().map(|&(s, p)| (s, p.score))
    }

    /// Removes and returns the minimum-priority slot.
    pub fn pop_min(&mut self) -> Option<(Slot, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let (slot, prio) = self.heap[0];
        self.remove_at(0);
        Some((slot, prio.score))
    }

    /// Removes `slot` wherever it is; returns its score if present.
    pub fn remove(&mut self, slot: Slot) -> Option<f64> {
        let idx = self.position(slot)?;
        let score = self.heap[idx].1.score;
        self.remove_at(idx);
        Some(score)
    }

    /// Changes the score of `slot` (tiebreaker preserved); true if present.
    pub fn update(&mut self, slot: Slot, score: f64) -> bool {
        let Some(idx) = self.position(slot) else {
            return false;
        };
        let old = self.heap[idx].1;
        let new = Prio::new(score, old.tie);
        self.heap[idx].1 = new;
        if new.less(&old) {
            self.sift_up(idx);
        } else {
            self.sift_down(idx);
        }
        true
    }

    /// Whether `slot` is in the heap.
    pub fn contains(&self, slot: Slot) -> bool {
        self.position(slot).is_some()
    }

    /// The score of `slot`, if present.
    pub fn score(&self, slot: Slot) -> Option<f64> {
        self.position(slot).map(|idx| self.heap[idx].1.score)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for i in 0..self.heap.len() {
            self.positions[self.heap[i].0.index()] = 0;
        }
        self.heap.clear();
    }

    /// Iterates over all `(slot, score)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, f64)> + '_ {
        self.heap.iter().map(|&(s, p)| (s, p.score))
    }

    fn remove_at(&mut self, idx: usize) {
        let last = self.heap.len() - 1;
        let (removed_slot, _) = self.heap[idx];
        self.heap.swap(idx, last);
        self.heap.pop();
        self.positions[removed_slot.index()] = 0;
        if idx <= last && idx < self.heap.len() {
            let moved = self.heap[idx].0;
            self.set_position(moved, idx);
            self.sift_down(idx);
            self.sift_up(idx);
        }
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.heap[idx].1.less(&self.heap[parent].1) {
                self.swap_entries(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            let mut smallest = idx;
            if left < self.heap.len() && self.heap[left].1.less(&self.heap[smallest].1) {
                smallest = left;
            }
            if right < self.heap.len() && self.heap[right].1.less(&self.heap[smallest].1) {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.swap_entries(idx, smallest);
            idx = smallest;
        }
    }

    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.set_position(self.heap[a].0, a);
        self.set_position(self.heap[b].0, b);
    }

    /// Structural invariant check: heap order + position-map bijection.
    ///
    /// O(n); compiled only for tests and the `audit` feature, where the
    /// differential harness calls it after every arrival.
    ///
    /// # Panics
    /// Panics if the binary-heap order is violated, or if `positions` is
    /// not an exact inverse of the heap array (missing, stale, or
    /// duplicated entries).
    #[cfg(any(test, feature = "audit"))]
    pub fn check_invariants(&self) {
        let resident = self.positions.iter().filter(|&&p| p != 0).count();
        assert_eq!(
            self.heap.len(),
            resident,
            "heap/position-map size mismatch"
        );
        for (i, &(slot, ref prio)) in self.heap.iter().enumerate() {
            assert_eq!(
                self.position(slot),
                Some(i),
                "position map stale for {slot:?}"
            );
            if i > 0 {
                let parent = &self.heap[(i - 1) / 2].1;
                assert!(!prio.less(parent), "heap order violated at {i}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use proptest::prelude::*;

    /// Mints distinct slots by using a throwaway arena.
    fn slots(n: usize) -> Vec<Slot> {
        let mut arena = Arena::new();
        (0..n).map(|i| arena.insert(i)).collect()
    }

    #[test]
    fn pops_in_priority_order() {
        let ss = slots(5);
        let mut h = IndexedHeap::new();
        for (i, (&s, score)) in ss.iter().zip([5.0, 1.0, 3.0, 2.0, 4.0]).enumerate() {
            h.insert(s, score, i as u64);
        }
        let order: Vec<f64> = std::iter::from_fn(|| h.pop_min().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ties_break_by_sequence_oldest_first() {
        let ss = slots(3);
        let mut h = IndexedHeap::new();
        h.insert(ss[0], 1.0, 30);
        h.insert(ss[1], 1.0, 10);
        h.insert(ss[2], 1.0, 20);
        assert_eq!(h.pop_min().unwrap().0, ss[1]);
        assert_eq!(h.pop_min().unwrap().0, ss[2]);
        assert_eq!(h.pop_min().unwrap().0, ss[0]);
    }

    #[test]
    fn remove_arbitrary_entries() {
        let ss = slots(4);
        let mut h = IndexedHeap::new();
        for (i, &s) in ss.iter().enumerate() {
            h.insert(s, i as f64, i as u64);
        }
        assert_eq!(h.remove(ss[1]), Some(1.0));
        assert_eq!(h.remove(ss[1]), None, "second removal is a no-op");
        let remaining: Vec<f64> =
            std::iter::from_fn(|| h.pop_min().map(|(_, p)| p)).collect();
        assert_eq!(remaining, vec![0.0, 2.0, 3.0]);
    }

    #[test]
    fn update_reorders() {
        let ss = slots(3);
        let mut h = IndexedHeap::new();
        h.insert(ss[0], 1.0, 0);
        h.insert(ss[1], 2.0, 1);
        h.insert(ss[2], 3.0, 2);
        assert!(h.update(ss[2], 0.5));
        assert_eq!(h.peek_min().unwrap().0, ss[2]);
        assert!(h.update(ss[2], 10.0));
        assert_eq!(h.peek_min().unwrap().0, ss[0]);
        assert_eq!(h.score(ss[2]), Some(10.0));
    }

    #[test]
    fn contains_and_clear() {
        let ss = slots(2);
        let mut h = IndexedHeap::new();
        h.insert(ss[0], 1.0, 0);
        assert!(h.contains(ss[0]));
        assert!(!h.contains(ss[1]));
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(ss[0]));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_scores_rejected() {
        let ss = slots(1);
        IndexedHeap::new().insert(ss[0], f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn duplicate_insert_rejected() {
        let ss = slots(1);
        let mut h = IndexedHeap::new();
        h.insert(ss[0], 1.0, 0);
        h.insert(ss[0], 2.0, 1);
    }

    proptest! {
        /// Under arbitrary insert/remove/update/pop interleavings the heap
        /// keeps its invariants and pop_min always returns the true minimum.
        #[test]
        fn maintains_invariants(ops in proptest::collection::vec((0u8..4, 0usize..16, -100i32..100), 1..300)) {
            let all = slots(16);
            let mut h = IndexedHeap::new();
            let mut model: std::collections::HashMap<Slot, (f64, u64)> = Default::default();
            let mut tie = 0u64;
            for (op, which, score) in ops {
                let slot = all[which];
                let score = score as f64;
                match op {
                    0 => {
                        if let std::collections::hash_map::Entry::Vacant(e) = model.entry(slot) {
                            h.insert(slot, score, tie);
                            e.insert((score, tie));
                            tie += 1;
                        }
                    }
                    1 => {
                        let got = h.remove(slot);
                        let expect = model.remove(&slot).map(|(s, _)| s);
                        prop_assert_eq!(got, expect);
                    }
                    2 => {
                        let present = h.update(slot, score);
                        prop_assert_eq!(present, model.contains_key(&slot));
                        if let Some(entry) = model.get_mut(&slot) {
                            entry.0 = score;
                        }
                    }
                    _ => {
                        let got = h.pop_min();
                        // The model's minimum under (score, tie) order.
                        let expect = model
                            .iter()
                            .min_by(|a, b| {
                                a.1 .0.partial_cmp(&b.1 .0).unwrap().then(a.1 .1.cmp(&b.1 .1))
                            })
                            .map(|(&s, &(sc, _))| (s, sc));
                        prop_assert_eq!(got, expect);
                        if let Some((s, _)) = got {
                            model.remove(&s);
                        }
                    }
                }
                h.check_invariants();
                prop_assert_eq!(h.len(), model.len());
            }
        }
    }
}
