//! Bounded-disorder reorder buffer for the event-time ingest front end.
//!
//! A real ingest plane never delivers arrivals in perfect timestamp
//! order. The engine's answer (DESIGN.md §13) is a per-stream
//! [`ReorderBuffer`] that holds arrivals until the cross-stream watermark
//! guarantees no earlier timestamp can still show up, then releases them
//! in `(timestamp, entry sequence)` order. The buffer itself is policy-free:
//! it stores, orders, and releases. The watermark formula, the disorder
//! bound `K`, and the late-drop accounting all live in the engine that
//! owns the buffers.
//!
//! Ordering contract: entries are released in ascending `(ts, entry_seq)`
//! order, where `entry_seq` is the caller-supplied admission number. Two
//! arrivals carrying the same timestamp therefore come back out in the
//! exact order they went in, which is what makes a disordered run replay
//! the in-order run tuple-for-tuple once lateness is covered by the bound.

use mstream_types::VTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One buffered arrival: the timestamp key, the admission tiebreak, and
/// the caller's payload.
struct Entry<T> {
    ts: VTime,
    entry_seq: u64,
    item: T,
}

// The heap orders on (ts, entry_seq) only; the payload never participates.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.entry_seq == other.entry_seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want pop() = minimum.
        (other.ts, other.entry_seq).cmp(&(self.ts, self.entry_seq))
    }
}

/// A min-ordered holding buffer: arrivals go in tagged with their
/// timestamp and an admission sequence, and come back out in ascending
/// `(ts, entry_seq)` order as the owner's watermark advances.
pub struct ReorderBuffer<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        ReorderBuffer::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        ReorderBuffer {
            heap: BinaryHeap::new(),
        }
    }

    /// Admits one arrival. `entry_seq` must be unique per buffered entry
    /// and reflect admission order (the engine uses a global admission
    /// counter so same-timestamp arrivals replay in arrival order).
    pub fn push(&mut self, ts: VTime, entry_seq: u64, item: T) {
        self.heap.push(Entry {
            ts,
            entry_seq,
            item,
        });
    }

    /// The `(ts, entry_seq)` key of the earliest buffered entry.
    pub fn peek_key(&self) -> Option<(VTime, u64)> {
        self.heap.peek().map(|e| (e.ts, e.entry_seq))
    }

    /// Removes and returns the earliest buffered entry.
    pub fn pop(&mut self) -> Option<(VTime, u64, T)> {
        self.heap.pop().map(|e| (e.ts, e.entry_seq, e.item))
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_timestamp_order() {
        let mut b = ReorderBuffer::new();
        b.push(VTime::from_micros(30), 0, "c");
        b.push(VTime::from_micros(10), 1, "a");
        b.push(VTime::from_micros(20), 2, "b");
        assert_eq!(b.len(), 3);
        assert_eq!(b.peek_key(), Some((VTime::from_micros(10), 1)));
        assert_eq!(b.pop(), Some((VTime::from_micros(10), 1, "a")));
        assert_eq!(b.pop(), Some((VTime::from_micros(20), 2, "b")));
        assert_eq!(b.pop(), Some((VTime::from_micros(30), 0, "c")));
        assert_eq!(b.pop(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn equal_timestamps_release_in_admission_order() {
        let mut b = ReorderBuffer::new();
        let t = VTime::from_micros(5);
        for seq in [7u64, 3, 9, 4] {
            b.push(t, seq, seq);
        }
        let mut out = Vec::new();
        while let Some((ts, seq, item)) = b.pop() {
            assert_eq!(ts, t);
            assert_eq!(seq, item);
            out.push(seq);
        }
        assert_eq!(out, vec![3, 4, 7, 9], "ties break by admission sequence");
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut b = ReorderBuffer::new();
        b.push(VTime::from_micros(4), 0, 4u64);
        b.push(VTime::from_micros(2), 1, 2);
        assert_eq!(b.pop(), Some((VTime::from_micros(2), 1, 2)));
        b.push(VTime::from_micros(1), 2, 1);
        b.push(VTime::from_micros(3), 3, 3);
        assert_eq!(b.pop(), Some((VTime::from_micros(1), 2, 1)));
        assert_eq!(b.pop(), Some((VTime::from_micros(3), 3, 3)));
        assert_eq!(b.pop(), Some((VTime::from_micros(4), 0, 4)));
    }
}
