//! A slab-style arena with stable slots and a free list.
//!
//! Window tuples are referenced from three places at once (expiration
//! deque, hash indexes, priority heap), so they need a stable integer
//! handle. A generation counter per slot turns dangling handles into
//! detectable errors instead of silent aliasing when slots are reused.

/// A stable handle to an arena entry: slot index + generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    index: u32,
    generation: u32,
}

impl Slot {
    /// A sentinel that never refers to a live arena entry (the arena
    /// refuses to grow past `u32::MAX` slots). Used by the flat join index
    /// to fill unoccupied inline bucket cells; never handed out.
    pub(crate) const DANGLING: Slot = Slot {
        index: u32::MAX,
        generation: u32::MAX,
    };

    /// The raw slot index (dense, reusable; pair with generation to detect
    /// stale handles).
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

enum Entry<T> {
    Occupied { generation: u32, value: T },
    Free { generation: u32, next_free: Option<u32> },
}

/// A generational arena.
pub struct Arena<T> {
    entries: Vec<Entry<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            entries: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// An empty arena with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            entries: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing a free slot if available.
    pub fn insert(&mut self, value: T) -> Slot {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                let generation = match self.entries[idx as usize] {
                    Entry::Free {
                        generation,
                        next_free,
                    } => {
                        self.free_head = next_free;
                        generation + 1
                    }
                    Entry::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                self.entries[idx as usize] = Entry::Occupied { generation, value };
                Slot {
                    index: idx,
                    generation,
                }
            }
            None => {
                let idx = u32::try_from(self.entries.len())
                    .ok()
                    .filter(|&i| i < u32::MAX)
                    .expect("arena exceeds u32 slots");
                self.entries.push(Entry::Occupied {
                    generation: 0,
                    value,
                });
                Slot {
                    index: idx,
                    generation: 0,
                }
            }
        }
    }

    /// Removes and returns the entry at `slot`, or `None` if stale/absent.
    pub fn remove(&mut self, slot: Slot) -> Option<T> {
        let entry = self.entries.get_mut(slot.index())?;
        match entry {
            Entry::Occupied { generation, .. } if *generation == slot.generation => {
                let generation = *generation;
                let old = std::mem::replace(
                    entry,
                    Entry::Free {
                        generation,
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(slot.index);
                self.len -= 1;
                match old {
                    Entry::Occupied { value, .. } => Some(value),
                    Entry::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Shared access to the entry at `slot`, or `None` if stale/absent.
    pub fn get(&self, slot: Slot) -> Option<&T> {
        match self.entries.get(slot.index()) {
            Some(Entry::Occupied { generation, value }) if *generation == slot.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the entry at `slot`, or `None` if stale/absent.
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut T> {
        match self.entries.get_mut(slot.index()) {
            Some(Entry::Occupied { generation, value }) if *generation == slot.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Whether `slot` refers to a live entry.
    pub fn contains(&self, slot: Slot) -> bool {
        self.get(slot).is_some()
    }

    /// Iterates over `(Slot, &T)` for all live entries, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied { generation, value } => Some((
                Slot {
                    index: i as u32,
                    generation: *generation,
                },
                value,
            )),
            Entry::Free { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let s1 = a.insert("a");
        let s2 = a.insert("b");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(s1), Some(&"a"));
        assert_eq!(a.get(s2), Some(&"b"));
        assert_eq!(a.remove(s1), Some("a"));
        assert_eq!(a.get(s1), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn stale_handles_are_rejected_after_reuse() {
        let mut a = Arena::new();
        let s1 = a.insert(1);
        a.remove(s1);
        let s2 = a.insert(2);
        // Slot index is reused but the generation differs.
        assert_eq!(s1.index(), s2.index());
        assert_ne!(s1, s2);
        assert_eq!(a.get(s1), None);
        assert_eq!(a.remove(s1), None);
        assert_eq!(a.get(s2), Some(&2));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut a = Arena::new();
        let s = a.insert(10);
        *a.get_mut(s).unwrap() += 5;
        assert_eq!(a.get(s), Some(&15));
    }

    #[test]
    fn iter_skips_free_slots() {
        let mut a = Arena::new();
        let s1 = a.insert(1);
        let _s2 = a.insert(2);
        let _s3 = a.insert(3);
        a.remove(s1);
        let values: Vec<i32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(values, vec![2, 3]);
    }

    #[test]
    fn double_remove_is_none() {
        let mut a = Arena::new();
        let s = a.insert(1);
        assert_eq!(a.remove(s), Some(1));
        assert_eq!(a.remove(s), None);
        assert!(a.is_empty());
    }

    proptest! {
        /// The arena behaves like a HashMap<Slot, T> under arbitrary
        /// insert/remove interleavings, and len() always agrees.
        #[test]
        fn behaves_like_a_map(ops in proptest::collection::vec((0usize..12, prop::bool::ANY), 0..300)) {
            let mut arena = Arena::new();
            let mut model: Vec<(Slot, usize)> = Vec::new();
            for (val, is_insert) in ops {
                if is_insert || model.is_empty() {
                    let slot = arena.insert(val);
                    model.push((slot, val));
                } else {
                    let (slot, expect) = model.remove(val % model.len());
                    prop_assert_eq!(arena.remove(slot), Some(expect));
                }
                prop_assert_eq!(arena.len(), model.len());
                for &(slot, v) in &model {
                    prop_assert_eq!(arena.get(slot), Some(&v));
                }
            }
        }
    }
}
