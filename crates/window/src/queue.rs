//! The bounded input queue in front of the join operator.
//!
//! Paper §2: "If a queue forms, it is soon filled to capacity. So, we need
//! to make a load shedding decision to keep the tuples with highest
//! priority in the queue." Max-subset policies evict the least-productive
//! queued tuple; the random-sampling policy gives every queued tuple
//! priority 1 and evicts uniformly at random (§3.2); `FIFO` drops the
//! oldest. [`ShedQueue`] supports all of these through [`QueueVictim`].

use crate::arena::{Arena, Slot};
use crate::heap::IndexedHeap;
use mstream_types::Tuple;
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// How a full queue chooses its victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueVictim {
    /// Evict the queued-or-offered tuple with the least priority score
    /// (max-subset shedding).
    MinPriority,
    /// Evict a uniformly random queued-or-offered tuple (random-sampling
    /// shedding: every tuple has equal priority).
    Random,
    /// Evict the oldest queued tuple (`FIFO` baseline: drop-oldest).
    Oldest,
}

/// A FIFO queue with bounded capacity and pluggable shedding.
pub struct ShedQueue {
    capacity: usize,
    arena: Arena<(Tuple, f64)>,
    /// FIFO order (lazily cleaned of evicted slots).
    fifo: VecDeque<Slot>,
    heap: IndexedHeap,
    /// Dense list of live slots for O(1) random victim selection.
    live: Vec<Slot>,
    live_pos: HashMap<Slot, usize>,
}

impl ShedQueue {
    /// An empty queue holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ShedQueue {
            capacity,
            arena: Arena::with_capacity(capacity + 1),
            fifo: VecDeque::with_capacity(capacity + 1),
            heap: IndexedHeap::new(),
            live: Vec::with_capacity(capacity + 1),
            live_pos: HashMap::with_capacity(capacity + 1),
        }
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a tuple with a priority `score`. If the queue is full, a
    /// victim chosen per `mode` is dropped — possibly the offered tuple
    /// itself. Returns the dropped tuple, if any.
    pub fn offer<R: Rng + ?Sized>(
        &mut self,
        tuple: Tuple,
        score: f64,
        mode: QueueVictim,
        rng: &mut R,
    ) -> Option<Tuple> {
        let seq = tuple.seq;
        self.push(tuple, score);
        if self.arena.len() <= self.capacity {
            return None;
        }
        let victim_slot = match mode {
            QueueVictim::MinPriority => self.heap.peek_min().expect("non-empty").0,
            QueueVictim::Random => self.live[rng.gen_range(0..self.live.len())],
            QueueVictim::Oldest => self.oldest_live().expect("non-empty"),
        };
        let victim = self.remove_slot(victim_slot).expect("victim is live");
        debug_assert!(victim.seq != seq || mode != QueueVictim::Oldest || self.capacity == 0);
        Some(victim)
    }

    /// Appends unconditionally (internal; capacity enforced by `offer`).
    fn push(&mut self, tuple: Tuple, score: f64) {
        let tie = tuple.seq.0;
        let slot = self.arena.insert((tuple, score));
        self.fifo.push_back(slot);
        self.heap.insert(slot, score, tie);
        self.live_pos.insert(slot, self.live.len());
        self.live.push(slot);
    }

    /// Dequeues the oldest tuple for processing.
    pub fn pop_front(&mut self) -> Option<Tuple> {
        let slot = self.oldest_live()?;
        self.remove_slot(slot)
    }

    /// The oldest queued tuple without removing it (the simulation driver
    /// needs its arrival timestamp to schedule service start).
    pub fn peek_front(&mut self) -> Option<&Tuple> {
        let slot = self.oldest_live()?;
        self.arena.get(slot).map(|(t, _)| t)
    }

    /// The oldest live slot, cleaning stale FIFO entries on the way.
    fn oldest_live(&mut self) -> Option<Slot> {
        while let Some(&slot) = self.fifo.front() {
            if self.arena.contains(slot) {
                return Some(slot);
            }
            self.fifo.pop_front();
        }
        None
    }

    fn remove_slot(&mut self, slot: Slot) -> Option<Tuple> {
        let (tuple, _) = self.arena.remove(slot)?;
        self.heap.remove(slot);
        let pos = self.live_pos.remove(&slot).expect("live slot tracked");
        self.live.swap_remove(pos);
        if let Some(&moved) = self.live.get(pos) {
            self.live_pos.insert(moved, pos);
        }
        Some(tuple)
    }

    /// Iterates over queued tuples and their scores, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, f64)> {
        self.arena.iter().map(|(_, (t, s))| (t, *s))
    }

    #[doc(hidden)]
    pub fn check_consistency(&self) {
        assert_eq!(self.arena.len(), self.heap.len());
        assert_eq!(self.arena.len(), self.live.len());
        assert_eq!(self.live.len(), self.live_pos.len());
        for (i, &slot) in self.live.iter().enumerate() {
            assert!(self.arena.contains(slot));
            assert_eq!(self.live_pos[&slot], i);
        }
    }

    /// Full structural audit: [`Self::check_consistency`] plus heap-order /
    /// position-map invariants, the capacity bound, and agreement between
    /// the lazily-cleaned FIFO deque and the arena.
    ///
    /// Compiled only for tests and the `audit` feature.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(any(test, feature = "audit"))]
    pub fn check_invariants(&self) {
        self.check_consistency();
        self.heap.check_invariants();
        assert!(
            self.arena.len() <= self.capacity,
            "queue over capacity: {} > {}",
            self.arena.len(),
            self.capacity
        );
        let live_in_fifo = self
            .fifo
            .iter()
            .filter(|&&s| self.arena.contains(s))
            .count();
        assert_eq!(
            live_in_fifo,
            self.arena.len(),
            "queued tuple missing from FIFO deque"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{SeqNo, StreamId, VTime, Value};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tup(seq: u64) -> Tuple {
        Tuple::new(StreamId(0), VTime::ZERO, SeqNo(seq), vec![Value(seq)])
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = ShedQueue::new(5);
        let mut r = rng();
        for i in 0..3 {
            assert!(q.offer(tup(i), 1.0, QueueVictim::MinPriority, &mut r).is_none());
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_front().unwrap().seq, SeqNo(0));
        assert_eq!(q.pop_front().unwrap().seq, SeqNo(1));
        assert_eq!(q.pop_front().unwrap().seq, SeqNo(2));
        assert!(q.pop_front().is_none());
    }

    #[test]
    fn min_priority_eviction_drops_least() {
        let mut q = ShedQueue::new(2);
        let mut r = rng();
        q.offer(tup(0), 5.0, QueueVictim::MinPriority, &mut r);
        q.offer(tup(1), 1.0, QueueVictim::MinPriority, &mut r);
        let dropped = q.offer(tup(2), 3.0, QueueVictim::MinPriority, &mut r).unwrap();
        assert_eq!(dropped.seq, SeqNo(1));
        // FIFO order of survivors unchanged.
        assert_eq!(q.pop_front().unwrap().seq, SeqNo(0));
        assert_eq!(q.pop_front().unwrap().seq, SeqNo(2));
    }

    #[test]
    fn offered_tuple_can_be_the_victim() {
        let mut q = ShedQueue::new(1);
        let mut r = rng();
        q.offer(tup(0), 9.0, QueueVictim::MinPriority, &mut r);
        let dropped = q.offer(tup(1), 0.5, QueueVictim::MinPriority, &mut r).unwrap();
        assert_eq!(dropped.seq, SeqNo(1), "low-priority newcomer rejected");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn oldest_eviction_is_drop_oldest() {
        let mut q = ShedQueue::new(2);
        let mut r = rng();
        q.offer(tup(0), 1.0, QueueVictim::Oldest, &mut r);
        q.offer(tup(1), 1.0, QueueVictim::Oldest, &mut r);
        let dropped = q.offer(tup(2), 1.0, QueueVictim::Oldest, &mut r).unwrap();
        assert_eq!(dropped.seq, SeqNo(0));
        assert_eq!(q.pop_front().unwrap().seq, SeqNo(1));
    }

    #[test]
    fn random_eviction_hits_everyone_eventually() {
        // With a full queue of 3 and many offers, every position should be
        // evicted at least once under uniform selection.
        let mut seen_drop_of_initial = std::collections::HashSet::new();
        for seed in 0..40u64 {
            let mut q = ShedQueue::new(3);
            let mut r = StdRng::seed_from_u64(seed);
            for i in 0..3 {
                q.offer(tup(i), 1.0, QueueVictim::Random, &mut r);
            }
            if let Some(d) = q.offer(tup(99), 1.0, QueueVictim::Random, &mut r) {
                seen_drop_of_initial.insert(d.seq.0);
            }
        }
        assert!(
            seen_drop_of_initial.len() >= 3,
            "random eviction too narrow: {seen_drop_of_initial:?}"
        );
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut q = ShedQueue::new(4);
        let mut r = rng();
        for i in 0..50 {
            q.offer(tup(i), (i % 7) as f64, QueueVictim::MinPriority, &mut r);
            assert!(q.len() <= 4);
            q.check_consistency();
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ShedQueue::new(0);
    }

    /// Capacity 1 is the degenerate hot path: every offer past the first
    /// forces an eviction, under every victim mode. The queue must stay at
    /// exactly one resident, stay internally consistent, and account for
    /// every tuple exactly once (dropped or still resident).
    #[test]
    fn capacity_one_churn_under_each_mode() {
        for mode in [QueueVictim::MinPriority, QueueVictim::Random, QueueVictim::Oldest] {
            let mut q = ShedQueue::new(1);
            let mut r = rng();
            let mut dropped = Vec::new();
            for i in 0..20u64 {
                // Alternate high/low scores so MinPriority exercises both
                // keep-resident and keep-newcomer branches.
                let score = if i % 2 == 0 { 1.0 } else { 9.0 };
                if let Some(d) = q.offer(tup(i), score, mode, &mut r) {
                    dropped.push(d.seq.0);
                }
                assert_eq!(q.len(), 1, "{mode:?}: cap-1 queue must hold exactly one");
                q.check_consistency();
            }
            let resident = q.pop_front().expect("one resident").seq.0;
            dropped.push(resident);
            dropped.sort_unstable();
            assert_eq!(dropped, (0..20).collect::<Vec<_>>(), "{mode:?}: tuple lost or duplicated");
        }
    }

    /// Under `Random` the offered tuple is in the victim pool too: over
    /// enough seeds a cap-1 queue must sometimes bounce the newcomer and
    /// sometimes replace the resident.
    #[test]
    fn offered_tuple_can_be_random_victim() {
        let (mut newcomer_dropped, mut resident_dropped) = (false, false);
        for seed in 0..64u64 {
            let mut q = ShedQueue::new(1);
            let mut r = StdRng::seed_from_u64(seed);
            q.offer(tup(0), 1.0, QueueVictim::Random, &mut r);
            match q.offer(tup(1), 1.0, QueueVictim::Random, &mut r) {
                Some(d) if d.seq == SeqNo(1) => newcomer_dropped = true,
                Some(d) if d.seq == SeqNo(0) => resident_dropped = true,
                other => panic!("full cap-1 queue must evict exactly one: {other:?}"),
            }
            q.check_consistency();
        }
        assert!(newcomer_dropped, "offered tuple never chosen as random victim");
        assert!(resident_dropped, "resident never chosen as random victim");
    }

    /// Random shedding is a function of the RNG stream: two runs with the
    /// same seed and same offers evict the same victims in the same order.
    /// (Replayability of audit failures depends on this.)
    #[test]
    fn random_shedding_deterministic_under_fixed_seed() {
        let run = |seed: u64| {
            let mut q = ShedQueue::new(3);
            let mut r = StdRng::seed_from_u64(seed);
            let mut drops = Vec::new();
            for i in 0..50u64 {
                if let Some(d) = q.offer(tup(i), 1.0, QueueVictim::Random, &mut r) {
                    drops.push(d.seq.0);
                }
            }
            drops
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds should diverge on 47 evictions");
    }

    proptest! {
        /// Arbitrary offer/pop sequences keep the queue consistent and
        /// FIFO pops come out in strictly increasing seq order between
        /// evictions.
        #[test]
        fn queue_stays_consistent(ops in proptest::collection::vec((prop::bool::ANY, 0u8..3, 0u64..10), 1..200)) {
            let mut q = ShedQueue::new(5);
            let mut r = StdRng::seed_from_u64(7);
            let mut seq = 0u64;
            let mut last_popped: Option<u64> = None;
            for (is_offer, mode, score) in ops {
                if is_offer {
                    let mode = match mode {
                        0 => QueueVictim::MinPriority,
                        1 => QueueVictim::Random,
                        _ => QueueVictim::Oldest,
                    };
                    q.offer(tup(seq), score as f64, mode, &mut r);
                    seq += 1;
                } else if let Some(t) = q.pop_front() {
                    if let Some(prev) = last_popped {
                        prop_assert!(t.seq.0 > prev, "FIFO order violated");
                    }
                    last_popped = Some(t.seq.0);
                }
                prop_assert!(q.len() <= 5);
                q.check_consistency();
            }
        }
    }
}
