//! Histogram-based per-bucket collectors.
//!
//! The join-output streams under comparison can reach 10⁸–10⁹ result tuples
//! per run; materializing every aggregate-attribute value (as
//! [`crate::ValueBuckets`] does) would need gigabytes. The attributes the
//! paper aggregates over are small discrete domains, so a per-bucket
//! *histogram* loses nothing: means and quantiles are exact, and memory is
//! `O(buckets × distinct values)`.

use mstream_types::{VDur, VTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An exact histogram over `u64` sample values.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hist {
    counts: BTreeMap<u64, u64>,
    n: u64,
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one occurrence of `v`.
    #[inline]
    pub fn add(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.n += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The exact mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        Some(sum / self.n as f64)
    }

    /// The `q`-quantile by linear interpolation between order statistics
    /// (same "type 7" convention as [`crate::quantile`]), or `None` if
    /// empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.n == 0 {
            return None;
        }
        let pos = q * (self.n - 1) as f64;
        let lo_rank = pos.floor() as u64;
        let hi_rank = pos.ceil() as u64;
        let frac = pos - lo_rank as f64;
        let lo = self.value_at_rank(lo_rank) as f64;
        let hi = self.value_at_rank(hi_rank) as f64;
        Some(lo * (1.0 - frac) + hi * frac)
    }

    /// The three quartiles `(Q1, median, Q3)`, or `None` if empty.
    pub fn quartiles(&self) -> Option<[f64; 3]> {
        Some([
            self.quantile(0.25)?,
            self.quantile(0.5)?,
            self.quantile(0.75)?,
        ])
    }

    /// The value of the 0-indexed order statistic `rank`.
    fn value_at_rank(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.n);
        let mut seen = 0;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen > rank {
                return v;
            }
        }
        unreachable!("rank below total count")
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

/// Per-time-bucket histograms of an output-attribute stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistBuckets {
    bucket: VDur,
    hists: Vec<Hist>,
}

impl HistBuckets {
    /// A collector with the given bucket width.
    pub fn new(bucket: VDur) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        HistBuckets {
            bucket,
            hists: Vec::new(),
        }
    }

    /// Records sample `v` at time `t`.
    #[inline]
    pub fn add(&mut self, t: VTime, v: u64) {
        let idx = (t.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.hists.len() {
            self.hists.resize_with(idx + 1, Hist::new);
        }
        self.hists[idx].add(v);
    }

    /// The per-bucket histograms, in time order.
    pub fn buckets(&self) -> &[Hist] {
        &self.hists
    }

    /// Total samples recorded.
    pub fn total_samples(&self) -> u64 {
        self.hists.iter().map(Hist::len).sum()
    }

    /// The bucket width.
    pub fn bucket(&self) -> VDur {
        self.bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_len() {
        let mut h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        for v in [2u64, 4, 4, 6] {
            h.add(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(4.0));
    }

    #[test]
    fn quantiles_match_sorted_vector_semantics() {
        let mut h = Hist::new();
        for v in [5u64, 1, 3, 3, 9] {
            h.add(v);
        }
        // Sorted: [1, 3, 3, 5, 9].
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(9.0));
        assert_eq!(h.quantile(0.25), Some(3.0));
        // 0.75 -> pos 3.0 -> exactly 5.
        assert_eq!(h.quantile(0.75), Some(5.0));
    }

    #[test]
    fn quartiles_of_ladder() {
        let mut h = Hist::new();
        for v in 0..=100u64 {
            h.add(v);
        }
        assert_eq!(h.quartiles(), Some([25.0, 50.0, 75.0]));
    }

    #[test]
    fn bucketing_by_time() {
        let mut hb = HistBuckets::new(VDur::from_secs(10));
        hb.add(VTime::from_secs(1), 5);
        hb.add(VTime::from_secs(9), 7);
        hb.add(VTime::from_secs(25), 1);
        assert_eq!(hb.buckets().len(), 3);
        assert_eq!(hb.buckets()[0].len(), 2);
        assert!(hb.buckets()[1].is_empty());
        assert_eq!(hb.buckets()[2].mean(), Some(1.0));
        assert_eq!(hb.total_samples(), 3);
    }

    #[test]
    fn iter_ascending() {
        let mut h = Hist::new();
        for v in [9u64, 1, 9, 4] {
            h.add(v);
        }
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 1), (4, 1), (9, 2)]);
    }

    proptest! {
        /// Histogram quantiles agree exactly with sorted-vector quantiles.
        #[test]
        fn agrees_with_vector_quantile(vs in proptest::collection::vec(0u64..20, 1..200),
                                       q in 0.0f64..1.0) {
            let mut h = Hist::new();
            let mut xs: Vec<f64> = Vec::new();
            for &v in &vs {
                h.add(v);
                xs.push(v as f64);
            }
            let expected = crate::quantile(&xs, q).unwrap();
            let got = h.quantile(q).unwrap();
            prop_assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
            let hm = h.mean().unwrap();
            let vm = crate::mean(&xs).unwrap();
            prop_assert!((hm - vm).abs() < 1e-9);
        }
    }
}
