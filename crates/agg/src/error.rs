//! Accuracy metrics comparing approximate against exact join output.

use crate::hist::HistBuckets;
use crate::quantile::{mean, quantile};
use crate::series::ValueBuckets;

/// `|truth − estimate| / |truth|`; defined as 0 when both are 0 and 1 when
/// only the truth is 0 (the estimate invented mass out of nothing).
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (truth - estimate).abs() / truth.abs()
    }
}

/// Mean absolute difference between the `qs`-quantiles of two samples
/// (the paper's "average quantile differences", Figure 7(b), with
/// `qs = [0.25, 0.5, 0.75]`). `None` if either sample is empty.
pub fn avg_quantile_diff(truth: &[f64], sample: &[f64], qs: &[f64]) -> Option<f64> {
    if truth.is_empty() || sample.is_empty() || qs.is_empty() {
        return None;
    }
    let sum: f64 = qs
        .iter()
        .map(|&q| (quantile(truth, q).unwrap() - quantile(sample, q).unwrap()).abs())
        .sum();
    Some(sum / qs.len() as f64)
}

/// Bucket-by-bucket comparison of two [`ValueBuckets`] streams: the exact
/// join's output values vs a shed join's. Produces the two numbers Figure 7
/// plots per memory setting: the average relative error of the windowed
/// AVG, and the average quartile difference.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesComparison {
    /// Mean over buckets of `relative_error(avg_true, avg_sample)`.
    pub avg_relative_error: f64,
    /// Mean over buckets of the average quartile difference.
    pub avg_quantile_difference: f64,
    /// Buckets in which both sides had samples (the denominator).
    pub compared_buckets: usize,
    /// Buckets where the exact join produced output but the shed join
    /// produced none (counted as full error, 1.0, in `avg_relative_error`).
    pub starved_buckets: usize,
}

impl SeriesComparison {
    /// Compares two histogram streams bucket-by-bucket using quartiles —
    /// the memory-bounded path used for full-scale runs (result streams of
    /// 10^8+ tuples).
    pub fn from_hists(truth: &HistBuckets, sample: &HistBuckets) -> SeriesComparison {
        let mut err_sum = 0.0;
        let mut qd_sum = 0.0;
        let mut compared = 0usize;
        let mut starved = 0usize;
        let empty = crate::hist::Hist::new();
        for (i, t_bucket) in truth.buckets().iter().enumerate() {
            if t_bucket.is_empty() {
                continue;
            }
            let s_bucket = sample.buckets().get(i).unwrap_or(&empty);
            if s_bucket.is_empty() {
                starved += 1;
                err_sum += 1.0;
                qd_sum += t_bucket.quantile(0.5).expect("non-empty").abs();
                compared += 1;
                continue;
            }
            err_sum += relative_error(
                t_bucket.mean().expect("non-empty"),
                s_bucket.mean().expect("non-empty"),
            );
            let tq = t_bucket.quartiles().expect("non-empty");
            let sq = s_bucket.quartiles().expect("non-empty");
            qd_sum += tq
                .iter()
                .zip(&sq)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / 3.0;
            compared += 1;
        }
        if compared == 0 {
            return SeriesComparison::default();
        }
        SeriesComparison {
            avg_relative_error: err_sum / compared as f64,
            avg_quantile_difference: qd_sum / compared as f64,
            compared_buckets: compared,
            starved_buckets: starved,
        }
    }

    /// Compares `truth` and `sample` bucket-by-bucket using quartiles.
    pub fn compute(truth: &ValueBuckets, sample: &ValueBuckets) -> SeriesComparison {
        const QS: [f64; 3] = [0.25, 0.5, 0.75];
        let mut err_sum = 0.0;
        let mut qd_sum = 0.0;
        let mut compared = 0usize;
        let mut starved = 0usize;
        let empty: Vec<f64> = Vec::new();
        for (i, t_bucket) in truth.buckets().iter().enumerate() {
            if t_bucket.is_empty() {
                continue; // nothing to estimate in this window
            }
            let s_bucket = sample.buckets().get(i).unwrap_or(&empty);
            if s_bucket.is_empty() {
                // The shed join produced nothing this window: count the
                // window as fully wrong rather than silently skipping it
                // (skipping would reward policies that starve windows).
                starved += 1;
                err_sum += 1.0;
                let t_med = quantile(t_bucket, 0.5).unwrap();
                qd_sum += t_med.abs();
                compared += 1;
                continue;
            }
            let t_avg = mean(t_bucket).unwrap();
            let s_avg = mean(s_bucket).unwrap();
            err_sum += relative_error(t_avg, s_avg);
            qd_sum += avg_quantile_diff(t_bucket, s_bucket, &QS).unwrap();
            compared += 1;
        }
        if compared == 0 {
            return SeriesComparison::default();
        }
        SeriesComparison {
            avg_relative_error: err_sum / compared as f64,
            avg_quantile_difference: qd_sum / compared as f64,
            compared_buckets: compared,
            starved_buckets: starved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{VDur, VTime};

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(10.0, 10.0), 0.0);
        assert_eq!(relative_error(10.0, 5.0), 0.5);
        assert_eq!(relative_error(10.0, 15.0), 0.5);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 3.0), 1.0);
        assert_eq!(relative_error(-10.0, -5.0), 0.5);
    }

    #[test]
    fn quantile_diff_identical_samples_is_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(avg_quantile_diff(&xs, &xs, &[0.25, 0.5, 0.75]), Some(0.0));
    }

    #[test]
    fn quantile_diff_detects_shifted_distribution() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 10.0).collect();
        let d = avg_quantile_diff(&a, &b, &[0.25, 0.5, 0.75]).unwrap();
        assert!((d - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_diff_empty_is_none() {
        assert_eq!(avg_quantile_diff(&[], &[1.0], &[0.5]), None);
        assert_eq!(avg_quantile_diff(&[1.0], &[], &[0.5]), None);
    }

    fn buckets(samples: &[(u64, f64)]) -> ValueBuckets {
        let mut v = ValueBuckets::new(VDur::from_secs(10));
        for &(t, x) in samples {
            v.add(VTime::from_secs(t), x);
        }
        v
    }

    #[test]
    fn comparison_of_identical_streams_is_perfect() {
        let t = buckets(&[(1, 5.0), (2, 7.0), (15, 1.0)]);
        let c = SeriesComparison::compute(&t, &t.clone());
        assert_eq!(c.avg_relative_error, 0.0);
        assert_eq!(c.avg_quantile_difference, 0.0);
        assert_eq!(c.compared_buckets, 2);
        assert_eq!(c.starved_buckets, 0);
    }

    #[test]
    fn starved_buckets_count_as_full_error() {
        let truth = buckets(&[(1, 4.0), (15, 8.0)]);
        let sample = buckets(&[(1, 4.0)]); // second window produced nothing
        let c = SeriesComparison::compute(&truth, &sample);
        assert_eq!(c.compared_buckets, 2);
        assert_eq!(c.starved_buckets, 1);
        assert_eq!(c.avg_relative_error, 0.5, "(0 + 1)/2");
    }

    #[test]
    fn biased_sample_scores_worse_than_fair_sample() {
        // Truth: values 1..=100 in one window. Fair sample: every 2nd
        // value. Biased sample: only the top decile.
        let truth = buckets(&(1..=100).map(|i| (1u64, i as f64)).collect::<Vec<_>>());
        let fair = buckets(&(1..=50).map(|i| (1u64, (2 * i) as f64)).collect::<Vec<_>>());
        let biased = buckets(&(91..=100).map(|i| (1u64, i as f64)).collect::<Vec<_>>());
        let c_fair = SeriesComparison::compute(&truth, &fair);
        let c_biased = SeriesComparison::compute(&truth, &biased);
        assert!(c_fair.avg_relative_error < c_biased.avg_relative_error);
        assert!(c_fair.avg_quantile_difference < c_biased.avg_quantile_difference);
    }

    #[test]
    fn hist_comparison_matches_vector_comparison() {
        use mstream_types::VDur as D;
        let samples_t = [(1u64, 4u64), (1, 6), (15, 2), (15, 8), (15, 8)];
        let samples_s = [(1u64, 4u64), (15, 8)];
        let mut vt = ValueBuckets::new(D::from_secs(10));
        let mut vs = ValueBuckets::new(D::from_secs(10));
        let mut ht = HistBuckets::new(D::from_secs(10));
        let mut hs = HistBuckets::new(D::from_secs(10));
        for &(t, x) in &samples_t {
            vt.add(VTime::from_secs(t), x as f64);
            ht.add(VTime::from_secs(t), x);
        }
        for &(t, x) in &samples_s {
            vs.add(VTime::from_secs(t), x as f64);
            hs.add(VTime::from_secs(t), x);
        }
        let a = SeriesComparison::compute(&vt, &vs);
        let b = SeriesComparison::from_hists(&ht, &hs);
        assert!((a.avg_relative_error - b.avg_relative_error).abs() < 1e-9);
        assert!((a.avg_quantile_difference - b.avg_quantile_difference).abs() < 1e-9);
        assert_eq!(a.compared_buckets, b.compared_buckets);
    }

    #[test]
    fn empty_truth_compares_to_default() {
        let t = ValueBuckets::new(VDur::from_secs(10));
        let s = ValueBuckets::new(VDur::from_secs(10));
        assert_eq!(SeriesComparison::compute(&t, &s), SeriesComparison::default());
    }
}
