//! Exact means and quantiles of small samples.

/// The arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// The `q`-quantile (`0.0 ..= 1.0`) of `xs` by linear interpolation between
/// order statistics (the common "type 7" definition); `None` if empty.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// The three quartiles `(Q1, median, Q3)`; `None` if empty.
pub fn quartiles(xs: &[f64]) -> Option<[f64; 3]> {
    Some([
        quantile(xs, 0.25)?,
        quantile(xs, 0.5)?,
        quantile(xs, 0.75)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[4.0]), Some(4.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
        assert_eq!(quantile(&xs, 0.75), Some(7.5));
    }

    #[test]
    fn quartiles_of_uniform_ladder() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let [q1, q2, q3] = quartiles(&xs).unwrap();
        assert_eq!([q1, q2, q3], [25.0, 50.0, 75.0]);
    }

    #[test]
    fn empty_inputs_give_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quartiles(&[]), None);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_q_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    proptest! {
        #[test]
        fn quantile_is_monotone_in_q(mut xs in proptest::collection::vec(-100.0f64..100.0, 1..50),
                                     a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let ql = quantile(&xs, lo).unwrap();
            let qh = quantile(&xs, hi).unwrap();
            prop_assert!(ql <= qh + 1e-9);
            // And bounded by the sample range.
            xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert!(ql >= xs[0] - 1e-9 && qh <= xs[xs.len() - 1] + 1e-9);
        }

        #[test]
        fn mean_within_range(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let m = mean(&xs).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
        }
    }
}
