//! Classical reservoir sampling (Vitter's Algorithm R).
//!
//! The paper motivates random-sampling load shedding by downstream
//! consumers — aggregates, quantiles and stream-mining queries — that only
//! need a bounded uniform sample. A reservoir over the join-output stream
//! is the canonical such consumer; the `stream_mining` example feeds one
//! from a shed join.

use rand::Rng;

/// A fixed-capacity uniform sample over an unbounded stream.
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// An empty reservoir of the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one stream element.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether fewer elements than `capacity` have been offered.
    pub fn is_partial(&self) -> bool {
        self.items.len() < self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_then_caps() {
        let mut r = Reservoir::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..10 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items().len(), 3);
        assert_eq!(r.seen(), 10);
        assert!(!r.is_partial());
    }

    #[test]
    fn short_streams_keep_everything() {
        let mut r = Reservoir::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..3 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2]);
        assert!(r.is_partial());
    }

    #[test]
    fn sample_is_approximately_uniform() {
        // Each of 20 values should land in a size-5 reservoir with
        // probability 1/4; check inclusion frequencies over many runs.
        let runs = 4000;
        let mut inclusion = [0u32; 20];
        for seed in 0..runs {
            let mut r = Reservoir::new(5);
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..20usize {
                r.offer(i, &mut rng);
            }
            for &item in r.items() {
                inclusion[item] += 1;
            }
        }
        for (i, &count) in inclusion.iter().enumerate() {
            let p = count as f64 / runs as f64;
            assert!(
                (p - 0.25).abs() < 0.04,
                "element {i} included with p={p}, expected 0.25"
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::<u32>::new(0);
    }
}
