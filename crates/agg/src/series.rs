//! Time-bucketed collectors over the join-output stream.

use mstream_types::{VDur, VTime};
use serde::{Deserialize, Serialize};

/// Counts events per fixed-width virtual-time bucket (Figure 5's "number of
/// output tuples produced for every interval" series).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BucketSeries {
    bucket: VDur,
    counts: Vec<u64>,
}

impl BucketSeries {
    /// A series with the given bucket width.
    pub fn new(bucket: VDur) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        BucketSeries {
            bucket,
            counts: Vec::new(),
        }
    }

    /// Index of the bucket containing `t`.
    fn index(&self, t: VTime) -> usize {
        (t.as_micros() / self.bucket.as_micros()) as usize
    }

    /// Records `n` events at time `t`.
    pub fn add(&mut self, t: VTime, n: u64) {
        let idx = self.index(t);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Per-bucket counts (trailing empty buckets not materialized).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The bucket width.
    pub fn bucket(&self) -> VDur {
        self.bucket
    }

    /// `(bucket start seconds, count)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = self.bucket.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * w, c))
    }
}

/// Collects raw `f64` samples per fixed-width bucket, for per-window
/// averages and quantiles (Figure 7's windowed aggregates).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ValueBuckets {
    bucket: VDur,
    values: Vec<Vec<f64>>,
}

impl ValueBuckets {
    /// A collector with the given bucket width.
    pub fn new(bucket: VDur) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        ValueBuckets {
            bucket,
            values: Vec::new(),
        }
    }

    /// Records sample `v` at time `t`.
    pub fn add(&mut self, t: VTime, v: f64) {
        let idx = (t.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.values.len() {
            self.values.resize_with(idx + 1, Vec::new);
        }
        self.values[idx].push(v);
    }

    /// The samples of each bucket, in time order.
    pub fn buckets(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Number of buckets materialized.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(Vec::is_empty)
    }

    /// Total sample count.
    pub fn total_samples(&self) -> usize {
        self.values.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_series_accumulates_by_interval() {
        let mut s = BucketSeries::new(VDur::from_secs(50));
        s.add(VTime::from_secs(0), 2);
        s.add(VTime::from_secs(49), 3);
        s.add(VTime::from_secs(50), 1);
        s.add(VTime::from_secs(170), 4);
        assert_eq!(s.counts(), &[5, 1, 0, 4]);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn bucket_series_points_report_start_times() {
        let mut s = BucketSeries::new(VDur::from_secs(10));
        s.add(VTime::from_secs(15), 7);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(0.0, 0), (10.0, 7)]);
    }

    #[test]
    fn value_buckets_group_samples() {
        let mut v = ValueBuckets::new(VDur::from_secs(10));
        v.add(VTime::from_secs(1), 1.0);
        v.add(VTime::from_secs(2), 2.0);
        v.add(VTime::from_secs(11), 9.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.buckets()[0], vec![1.0, 2.0]);
        assert_eq!(v.buckets()[1], vec![9.0]);
        assert_eq!(v.total_samples(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn empty_collectors() {
        let s = BucketSeries::new(VDur::from_secs(1));
        assert_eq!(s.total(), 0);
        let v = ValueBuckets::new(VDur::from_secs(1));
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_bucket_rejected() {
        let _ = BucketSeries::new(VDur::ZERO);
    }
}
