//! Aggregates and accuracy metrics over join-output streams.
//!
//! The paper's random-sampling evaluation (§5.2.1, Figure 7) measures how
//! well a shed join's output supports downstream analytics:
//!
//! * a **windowed AVG** over one attribute of the join result, compared to
//!   the same average over the exact result (relative error), and
//! * the **quartiles** of the result distribution, compared quartile-by-
//!   quartile (average quantile difference) — a direct probe of whether the
//!   sample's frequency distribution matches the true result's.
//!
//! This crate provides the machinery: time-bucketed value collectors
//! ([`ValueBuckets`], [`BucketSeries`]), exact quantiles ([`quantile`],
//! [`quartiles`]), comparison metrics ([`relative_error`],
//! [`avg_quantile_diff`], [`SeriesComparison`]) and a classical reservoir
//! sampler ([`Reservoir`]) for downstream mining consumers (paper §6's
//! future-work direction, exercised by the `stream_mining` example).

//!
//! ```
//! use mstream_agg::Hist;
//!
//! let mut h = Hist::new();
//! for v in [1u64, 3, 3, 5, 9] {
//!     h.add(v);
//! }
//! assert_eq!(h.mean(), Some(4.2));
//! assert_eq!(h.quantile(0.5), Some(3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hist;
pub mod quantile;
pub mod reservoir;
pub mod series;

pub use error::{avg_quantile_diff, relative_error, SeriesComparison};
pub use hist::{Hist, HistBuckets};
pub use quantile::{mean, quantile, quartiles};
pub use reservoir::Reservoir;
pub use series::{BucketSeries, ValueBuckets};
