//! Ergonomic construction of shedding join engines.

use crate::engine::{EngineConfig, MemoryMode, ShedJoinEngine};
use mstream_shed_policies::{MSketch, ShedPolicy};
use mstream_sketch::{BankConfig, EpochSpec};
use mstream_types::{JoinQuery, Result};

/// A fluent builder over [`ShedJoinEngine`].
///
/// ```
/// use mstream_core::prelude::*;
///
/// let mut catalog = Catalog::new();
/// catalog.add_stream(StreamSchema::new("L", &["k"]));
/// catalog.add_stream(StreamSchema::new("R", &["k"]));
/// let query = JoinQuery::from_names(catalog, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap();
///
/// let engine = ShedJoinBuilder::new(query)
///     .policy(MSketchRs)
///     .capacity_per_window(256)
///     .sketch_copies(64)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(engine.policy_name(), "MSketch-RS");
/// ```
pub struct ShedJoinBuilder {
    query: JoinQuery,
    policy: Box<dyn ShedPolicy>,
    config: EngineConfig,
}

impl ShedJoinBuilder {
    /// Starts a builder for `query` with the paper's flagship policy
    /// (`MSketch`) and default sizing.
    pub fn new(query: JoinQuery) -> Self {
        ShedJoinBuilder {
            query,
            policy: Box::new(MSketch),
            config: EngineConfig::default(),
        }
    }

    /// Sets the shedding policy.
    pub fn policy<P: ShedPolicy + 'static>(mut self, policy: P) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets a boxed shedding policy (e.g. from
    /// [`mstream_shed_policies::parse_policy`]).
    pub fn boxed_policy(mut self, policy: Box<dyn ShedPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Allocates `tuples` of memory to every window.
    pub fn capacity_per_window(mut self, tuples: usize) -> Self {
        self.config.memory = MemoryMode::PerWindow(tuples);
        self
    }

    /// Allocates explicit per-stream capacities.
    pub fn capacities(mut self, tuples: Vec<usize>) -> Self {
        self.config.memory = MemoryMode::PerWindowEach(tuples);
        self
    }

    /// Uses a single shared memory pool across all windows (the global
    /// least-priority tuple is evicted when the pool overflows).
    pub fn global_pool(mut self, total_tuples: usize) -> Self {
        self.config.memory = MemoryMode::GlobalPool(total_tuples);
        self
    }

    /// Number of AGMS sketch copies averaged per estimate (`s1`).
    pub fn sketch_copies(mut self, s1: usize) -> Self {
        self.config.bank.s1 = s1;
        self
    }

    /// Full sketch sizing.
    pub fn bank(mut self, bank: BankConfig) -> Self {
        self.config.bank = bank;
        self
    }

    /// Overrides the tumbling-epoch discipline (default: epoch = window).
    pub fn epoch(mut self, epoch: EpochSpec) -> Self {
        self.config.epoch = Some(epoch);
        self
    }

    /// Seeds all engine randomness (sketch families share
    /// `EngineConfig::bank.seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Result<ShedJoinEngine> {
        ShedJoinEngine::new(self.query, self.policy, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_shed_policies::Fifo;
    use mstream_types::{Catalog, StreamId, StreamSchema, VTime, Value, WindowSpec};

    fn pair_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k"]));
        c.add_stream(StreamSchema::new("R", &["k"]));
        JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap()
    }

    #[test]
    fn builder_defaults_to_msketch() {
        let e = ShedJoinBuilder::new(pair_query()).build().unwrap();
        assert_eq!(e.policy_name(), "MSketch");
    }

    #[test]
    fn builder_applies_policy_and_capacity() {
        let mut e = ShedJoinBuilder::new(pair_query())
            .policy(Fifo)
            .capacity_per_window(2)
            .build()
            .unwrap();
        assert_eq!(e.policy_name(), "FIFO");
        for i in 0..5u64 {
            e.process_arrival(StreamId(0), vec![Value(i)], VTime::ZERO);
        }
        assert_eq!(e.window_len(StreamId(0)), 2);
        assert_eq!(e.metrics().shed_window, 3);
    }

    #[test]
    fn builder_accepts_parsed_policies() {
        let boxed = mstream_shed_policies::parse_policy("bjoin").unwrap();
        let e = ShedJoinBuilder::new(pair_query())
            .boxed_policy(boxed)
            .build()
            .unwrap();
        assert_eq!(e.policy_name(), "Bjoin");
    }

    #[test]
    fn builder_rejects_bad_capacities() {
        assert!(ShedJoinBuilder::new(pair_query())
            .capacities(vec![1])
            .build()
            .is_err());
    }

    #[test]
    fn builder_global_pool_mode() {
        let mut e = ShedJoinBuilder::new(pair_query())
            .policy(Fifo)
            .global_pool(3)
            .build()
            .unwrap();
        for i in 0..5u64 {
            e.process_arrival(StreamId((i % 2) as usize), vec![Value(i)], VTime::ZERO);
        }
        let total = e.window_len(StreamId(0)) + e.window_len(StreamId(1));
        assert_eq!(total, 3);
    }
}
