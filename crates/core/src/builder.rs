//! Ergonomic construction of shedding join engines.
//!
//! [`EngineBuilder`] is the one documented construction path: it owns all
//! configuration validation (memory capacities, sketch bank sizing, epoch
//! derivability, shard counts) and produces either a single-threaded
//! [`ShedJoinEngine`] (`build`) or a hash-partitioned parallel
//! [`ShardedJoinEngine`] (`build_sharded`).

use crate::engine::{default_epoch, resolve_capacities, EngineConfig, MemoryMode, ShedJoinEngine};
use crate::shard::{ShardConfig, ShardedJoinEngine};
use mstream_shed_policies::{MSketch, ShedPolicy};
use mstream_sketch::{BankConfig, EpochSpec};
use mstream_types::{Error, JoinQuery, Result};

/// A fluent builder over [`ShedJoinEngine`] and [`ShardedJoinEngine`].
///
/// ```
/// use mstream_core::prelude::*;
///
/// let mut catalog = Catalog::new();
/// catalog.add_stream(StreamSchema::new("L", &["k"]));
/// catalog.add_stream(StreamSchema::new("R", &["k"]));
/// let query = JoinQuery::from_names(catalog, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap();
///
/// let engine = EngineBuilder::new(query)
///     .policy(MSketchRs)
///     .capacity_per_window(256)
///     .sketch_copies(64)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(engine.policy_name(), "MSketch-RS");
/// ```
pub struct EngineBuilder {
    query: JoinQuery,
    policy: Box<dyn ShedPolicy>,
    config: EngineConfig,
    shard: ShardConfig,
}

/// Former name of [`EngineBuilder`].
#[deprecated(since = "0.3.0", note = "renamed to `EngineBuilder`")]
pub type ShedJoinBuilder = EngineBuilder;

impl EngineBuilder {
    /// Starts a builder for `query` with the paper's flagship policy
    /// (`MSketch`) and default sizing.
    pub fn new(query: JoinQuery) -> Self {
        EngineBuilder {
            query,
            policy: Box::new(MSketch),
            config: EngineConfig::default(),
            shard: ShardConfig::default(),
        }
    }

    /// Sets the shedding policy.
    pub fn policy<P: ShedPolicy + 'static>(mut self, policy: P) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets a boxed shedding policy (e.g. from
    /// [`mstream_shed_policies::parse_policy`]).
    pub fn boxed_policy(mut self, policy: Box<dyn ShedPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Allocates `tuples` of memory to every window.
    pub fn capacity_per_window(mut self, tuples: usize) -> Self {
        self.config.memory = MemoryMode::PerWindow(tuples);
        self
    }

    /// Allocates explicit per-stream capacities.
    pub fn capacities(mut self, tuples: Vec<usize>) -> Self {
        self.config.memory = MemoryMode::PerWindowEach(tuples);
        self
    }

    /// Uses a single shared memory pool across all windows (the global
    /// least-priority tuple is evicted when the pool overflows).
    pub fn global_pool(mut self, total_tuples: usize) -> Self {
        self.config.memory = MemoryMode::GlobalPool(total_tuples);
        self
    }

    /// Number of AGMS sketch copies averaged per estimate (`s1`).
    pub fn sketch_copies(mut self, s1: usize) -> Self {
        self.config.bank.s1 = s1;
        self
    }

    /// Full sketch sizing.
    pub fn bank(mut self, bank: BankConfig) -> Self {
        self.config.bank = bank;
        self
    }

    /// Overrides the tumbling-epoch discipline (default: epoch = window).
    pub fn epoch(mut self, epoch: EpochSpec) -> Self {
        self.config.epoch = Some(epoch);
        self
    }

    /// Seeds all engine randomness (sketch families share
    /// `EngineConfig::bank.seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Arms the event-time front end with disorder bound `bound`
    /// (DESIGN.md §13): arrivals buffer in per-stream reorder buffers,
    /// release in timestamp order as the watermark advances, and
    /// late-drop (counted in `EngineMetrics::late_dropped`) once later
    /// than the bound. Without this, timestamps are trusted as given and
    /// processed in arrival order.
    pub fn disorder_bound(mut self, bound: mstream_types::VDur) -> Self {
        self.config.disorder = Some(bound);
        self
    }

    /// Requests `shards` parallel workers. The engine must then be built
    /// with [`EngineBuilder::build_sharded`]; queries whose predicates do
    /// not all share one partition attribute degrade to a single shard
    /// (the reason is surfaced on the run report).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shard.shards = shards;
        self
    }

    /// Full sharded-execution tuning (channel capacity, batch size,
    /// backpressure, row collection). The shard *count* set here is kept;
    /// call [`EngineBuilder::shards`] afterwards to override just that.
    pub fn shard_config(mut self, config: ShardConfig) -> Self {
        self.shard = config;
        self
    }

    /// Tunes (or disables) the skew-adaptive hot-key splitter used by
    /// key-partitioned sharded execution (DESIGN.md §12).
    pub fn hot_keys(mut self, hot_keys: crate::shard::HotKeyConfig) -> Self {
        self.shard.hot_keys = hot_keys;
        self
    }

    /// Enables or disables broadcast execution for queries that have no
    /// single partition key (default: enabled). With broadcast off, such
    /// queries degrade to one shard and report why.
    pub fn broadcast(mut self, broadcast: bool) -> Self {
        self.shard.broadcast = broadcast;
        self
    }

    /// Validates everything the engine constructors assume: memory
    /// capacities, sketch bank sizing, epoch derivability for the chosen
    /// policy, and the shard count.
    fn validate(&self) -> Result<()> {
        resolve_capacities(&self.config.memory, self.query.n_streams())?;
        if self.config.bank.s1 == 0 || self.config.bank.s2 == 0 {
            return Err(Error::InvalidConfig(
                "sketch bank needs s1 >= 1 and s2 >= 1".into(),
            ));
        }
        let reqs = self.policy.requirements();
        if (reqs.sketches || reqs.partner_freq) && self.config.epoch.is_none() {
            // Surfaces the mixed-window error at build time instead of
            // deep inside engine construction.
            default_epoch(&self.query)?;
        }
        if self.shard.shards == 0 {
            return Err(Error::InvalidConfig("shard count must be >= 1".into()));
        }
        Ok(())
    }

    /// Builds the single-threaded engine.
    ///
    /// Errors if [`EngineBuilder::shards`] requested more than one worker —
    /// use [`EngineBuilder::build_sharded`] for that.
    pub fn build(self) -> Result<ShedJoinEngine> {
        self.validate()?;
        if self.shard.shards > 1 {
            return Err(Error::InvalidConfig(format!(
                "{} shards requested; call build_sharded()",
                self.shard.shards
            )));
        }
        ShedJoinEngine::new(self.query, self.policy, self.config)
    }

    /// Builds the sharded parallel engine (spawns its worker threads).
    ///
    /// A shard count of 1 is valid and runs the same code path with a
    /// single worker.
    pub fn build_sharded(self) -> Result<ShardedJoinEngine> {
        self.validate()?;
        ShardedJoinEngine::new(self.query, self.policy, self.config, self.shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{Arrival, CountSink};
    use mstream_shed_policies::Fifo;
    use mstream_types::{Catalog, StreamId, StreamSchema, VTime, Value, WindowSpec};

    fn pair_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k"]));
        c.add_stream(StreamSchema::new("R", &["k"]));
        JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap()
    }

    fn feed(e: &mut ShedJoinEngine, s: usize, v: u64, at: VTime) {
        e.ingest(
            Arrival::new(StreamId(s), vec![Value(v)], at),
            &mut CountSink::default(),
        );
    }

    #[test]
    fn builder_defaults_to_msketch() {
        let e = EngineBuilder::new(pair_query()).build().unwrap();
        assert_eq!(e.policy_name(), "MSketch");
    }

    #[test]
    fn builder_applies_policy_and_capacity() {
        let mut e = EngineBuilder::new(pair_query())
            .policy(Fifo)
            .capacity_per_window(2)
            .build()
            .unwrap();
        assert_eq!(e.policy_name(), "FIFO");
        for i in 0..5u64 {
            feed(&mut e, 0, i, VTime::ZERO);
        }
        assert_eq!(e.window_len(StreamId(0)), Some(2));
        assert_eq!(e.metrics().shed_window, 3);
    }

    #[test]
    fn builder_accepts_parsed_policies() {
        let boxed = mstream_shed_policies::parse_policy("bjoin").unwrap();
        let e = EngineBuilder::new(pair_query())
            .boxed_policy(boxed)
            .build()
            .unwrap();
        assert_eq!(e.policy_name(), "Bjoin");
    }

    #[test]
    fn builder_rejects_bad_capacities() {
        assert!(EngineBuilder::new(pair_query())
            .capacities(vec![1])
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_bank_and_shards() {
        let bank = BankConfig {
            s1: 0,
            ..BankConfig::default()
        };
        assert!(EngineBuilder::new(pair_query()).bank(bank).build().is_err());
        assert!(EngineBuilder::new(pair_query()).shards(0).build().is_err());
    }

    #[test]
    fn builder_build_refuses_multi_shard() {
        let err = EngineBuilder::new(pair_query())
            .shards(4)
            .build()
            .err()
            .expect("multi-shard build() must be rejected");
        assert!(err.to_string().contains("build_sharded"));
    }

    #[test]
    fn builder_global_pool_mode() {
        let mut e = EngineBuilder::new(pair_query())
            .policy(Fifo)
            .global_pool(3)
            .build()
            .unwrap();
        for i in 0..5u64 {
            feed(&mut e, (i % 2) as usize, i, VTime::ZERO);
        }
        let total =
            e.window_len(StreamId(0)).unwrap() + e.window_len(StreamId(1)).unwrap();
        assert_eq!(total, 3);
    }

    #[test]
    fn builder_disorder_bound_arms_the_front_end() {
        use mstream_types::VDur;
        let mut e = EngineBuilder::new(pair_query())
            .policy(Fifo)
            .disorder_bound(VDur::from_secs(5))
            .build()
            .unwrap();
        assert_eq!(e.disorder_bound(), Some(VDur::from_secs(5)));
        feed(&mut e, 0, 1, VTime::from_secs(100));
        feed(&mut e, 1, 1, VTime::from_secs(100));
        // Buffered, not yet released: the watermark sits at 95s.
        assert_eq!(e.watermark(), Some(VTime::from_secs(95)));
        assert_eq!(e.buffered(), 2);
        let out = e.flush(&mut CountSink::default());
        assert_eq!(out.produced, 1, "flushed pair joins");
        assert_eq!(e.buffered(), 0);
    }

    #[test]
    fn window_len_out_of_range_is_none() {
        let e = EngineBuilder::new(pair_query()).build().unwrap();
        assert_eq!(e.window_len(StreamId(7)), None);
    }
}
