//! Ergonomic construction of shedding join engines.
//!
//! [`EngineBuilder`] is the one documented construction path: it owns all
//! configuration validation (memory capacities, sketch bank sizing, epoch
//! derivability, shard counts) and produces a single-threaded
//! [`ShedJoinEngine`] (`build`), a hash-partitioned parallel
//! [`ShardedJoinEngine`] (`build_sharded`), or — when more than one query
//! is [`EngineBuilder::register`]ed — a shared-data-plane
//! [`MultiQueryEngine`] (`build_multi`) / [`ShardedMultiEngine`]
//! (`build_multi_sharded`).
//!
//! Validation failures are reported as the typed [`BuildError`] enum; it
//! converts losslessly into the workspace-wide
//! [`mstream_types::Error::InvalidConfig`] for callers that funnel every
//! error through [`mstream_types::Result`].

use crate::engine::{default_epoch, resolve_capacities, EngineConfig, MemoryMode, ShedJoinEngine};
use crate::multi::{MultiQueryEngine, ShardedMultiEngine};
use crate::shard::{ShardConfig, ShardedJoinEngine};
use mstream_shed_policies::{MSketch, ShedPolicy};
use mstream_sketch::{BankConfig, EpochSpec};
use mstream_types::{Error, JoinQuery, QueryId};
use std::fmt;

/// Typed validation errors surfaced by [`EngineBuilder`] and the engine
/// constructors — every invalid configuration has a named variant instead
/// of a stringly error, so callers can match on the failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A window capacity (per-window, per-stream, or pool total) was zero.
    ZeroWindowCapacity,
    /// [`MemoryMode::PerWindowEach`] listed a different number of
    /// capacities than the query has streams.
    CapacityCountMismatch {
        /// Number of capacities provided.
        got: usize,
        /// Number of streams in the query.
        expected: usize,
    },
    /// The sketch bank was sized with `s1 == 0` or `s2 == 0`.
    ZeroSketchBank,
    /// A shard count of zero was requested.
    ZeroShards,
    /// `build()` was called with a multi-shard configuration.
    MultiShardBuild {
        /// The requested shard count.
        shards: usize,
    },
    /// The query mixes time- and tuple-based windows, so the paper's
    /// default tumbling epoch cannot be derived; set
    /// [`EngineBuilder::epoch`] explicitly.
    EpochUnderivable,
    /// `build()` / `build_sharded()` need exactly one registered query;
    /// use `build_multi()` / `build_multi_sharded()` for query sets.
    QueryCountForSingle {
        /// Number of registered queries.
        got: usize,
    },
    /// `build_multi()` was called with no registered queries.
    NoQueries,
    /// Two registered queries name the same stream with different schemas
    /// (attribute lists must be identical for the stream state to be
    /// shared).
    SchemaMismatch {
        /// The stream name both queries use.
        stream: String,
    },
    /// A configuration knob is not supported by the multi-query engine
    /// (global-pool memory, per-stream capacity lists, disorder bounds).
    UnsupportedMulti {
        /// The offending knob.
        what: &'static str,
    },
    /// Engine construction failed after validation (wraps the underlying
    /// workspace error).
    Engine(Error),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroWindowCapacity => write!(f, "window capacity must be positive"),
            BuildError::CapacityCountMismatch { got, expected } => {
                write!(f, "{got} capacities for {expected} streams")
            }
            BuildError::ZeroSketchBank => write!(f, "sketch bank needs s1 >= 1 and s2 >= 1"),
            BuildError::ZeroShards => write!(f, "shard count must be >= 1"),
            BuildError::MultiShardBuild { shards } => {
                write!(f, "{shards} shards requested; call build_sharded()")
            }
            BuildError::EpochUnderivable => write!(
                f,
                "mixed time/tuple windows need an explicit EngineConfig::epoch"
            ),
            BuildError::QueryCountForSingle { got } => write!(
                f,
                "{got} queries registered; build()/build_sharded() take exactly one — \
                 use build_multi()"
            ),
            BuildError::NoQueries => write!(f, "no queries registered; call register() first"),
            BuildError::SchemaMismatch { stream } => write!(
                f,
                "stream `{stream}` is declared with different schemas by two registered queries"
            ),
            BuildError::UnsupportedMulti { what } => {
                write!(f, "{what} is not supported by the multi-query engine")
            }
            BuildError::Engine(e) => write!(f, "engine construction failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        match e {
            BuildError::Engine(inner) => inner,
            other => Error::InvalidConfig(other.to_string()),
        }
    }
}

impl From<Error> for BuildError {
    fn from(e: Error) -> Self {
        BuildError::Engine(e)
    }
}

/// A fluent builder over [`ShedJoinEngine`], [`ShardedJoinEngine`] and the
/// multi-query engines.
///
/// ```
/// use mstream_core::prelude::*;
///
/// let mut catalog = Catalog::new();
/// catalog.add_stream(StreamSchema::new("L", &["k"]));
/// catalog.add_stream(StreamSchema::new("R", &["k"]));
/// let query = JoinQuery::from_names(catalog, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap();
///
/// let engine = EngineBuilder::new(query)
///     .policy(MSketchRs)
///     .capacity_per_window(256)
///     .sketch_copies(64)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(engine.policy_name(), "MSketch-RS");
/// ```
///
/// Registering several queries turns the builder into a query-set builder;
/// `build_multi()` then produces one engine whose window stores, indexes
/// and sketches are owned per *stream* and shared by every query:
///
/// ```
/// use mstream_core::prelude::*;
///
/// let mk = || {
///     let mut c = Catalog::new();
///     c.add_stream(StreamSchema::new("L", &["k"]));
///     c.add_stream(StreamSchema::new("R", &["k"]));
///     JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap()
/// };
/// let mut b = EngineBuilder::new_multi().capacity_per_window(64);
/// let q0 = b.register(mk()).unwrap();
/// let q1 = b.register(mk()).unwrap();
/// assert_ne!(q0, q1);
/// let engine = b.build_multi().unwrap();
/// assert_eq!(engine.n_queries(), 2);
/// ```
pub struct EngineBuilder {
    queries: Vec<JoinQuery>,
    policy: Box<dyn ShedPolicy>,
    config: EngineConfig,
    shard: ShardConfig,
}

impl EngineBuilder {
    /// Starts a builder for the single query `query` with the paper's
    /// flagship policy (`MSketch`) and default sizing. Equivalent to
    /// [`EngineBuilder::new_multi`] followed by one
    /// [`EngineBuilder::register`].
    pub fn new(query: JoinQuery) -> Self {
        let mut b = Self::new_multi();
        b.queries.push(query);
        b
    }

    /// Starts an empty query-set builder; add standing queries with
    /// [`EngineBuilder::register`] and build with
    /// [`EngineBuilder::build_multi`].
    pub fn new_multi() -> Self {
        EngineBuilder {
            queries: Vec::new(),
            policy: Box::new(MSketch),
            config: EngineConfig::default(),
            shard: ShardConfig::default(),
        }
    }

    /// Registers one standing query and returns the [`QueryId`] its
    /// results will be emitted under (ids are assigned densely in
    /// registration order). Rejects queries whose stream schemas conflict
    /// with an already-registered query of the same stream *name* — shared
    /// per-stream state requires identical schemas.
    pub fn register(&mut self, query: JoinQuery) -> Result<QueryId, BuildError> {
        for earlier in &self.queries {
            check_catalogs_compatible(earlier, &query)?;
        }
        let id = QueryId(self.queries.len() as u32);
        self.queries.push(query);
        Ok(id)
    }

    /// Sets the shedding policy.
    pub fn policy<P: ShedPolicy + 'static>(mut self, policy: P) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets a boxed shedding policy (e.g. from
    /// [`mstream_shed_policies::parse_policy`]).
    pub fn boxed_policy(mut self, policy: Box<dyn ShedPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Allocates `tuples` of memory to every window.
    pub fn capacity_per_window(mut self, tuples: usize) -> Self {
        self.config.memory = MemoryMode::PerWindow(tuples);
        self
    }

    /// Allocates explicit per-stream capacities.
    pub fn capacities(mut self, tuples: Vec<usize>) -> Self {
        self.config.memory = MemoryMode::PerWindowEach(tuples);
        self
    }

    /// Uses a single shared memory pool across all windows (the global
    /// least-priority tuple is evicted when the pool overflows).
    pub fn global_pool(mut self, total_tuples: usize) -> Self {
        self.config.memory = MemoryMode::GlobalPool(total_tuples);
        self
    }

    /// Number of AGMS sketch copies averaged per estimate (`s1`).
    pub fn sketch_copies(mut self, s1: usize) -> Self {
        self.config.bank.s1 = s1;
        self
    }

    /// Full sketch sizing.
    pub fn bank(mut self, bank: BankConfig) -> Self {
        self.config.bank = bank;
        self
    }

    /// Overrides the tumbling-epoch discipline (default: epoch = window).
    pub fn epoch(mut self, epoch: EpochSpec) -> Self {
        self.config.epoch = Some(epoch);
        self
    }

    /// Seeds all engine randomness (sketch families share
    /// `EngineConfig::bank.seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Arms the event-time front end with disorder bound `bound`
    /// (DESIGN.md §13): arrivals buffer in per-stream reorder buffers,
    /// release in timestamp order as the watermark advances, and
    /// late-drop (counted in `EngineMetrics::late_dropped`) once later
    /// than the bound. Without this, timestamps are trusted as given and
    /// processed in arrival order. Single-query engines only.
    pub fn disorder_bound(mut self, bound: mstream_types::VDur) -> Self {
        self.config.disorder = Some(bound);
        self
    }

    /// Forces the epoch-memoized productivity score cache on or off for
    /// this engine (DESIGN.md §16), overriding the process-wide
    /// `MSTREAM_SCORE_CACHE` environment pin. Cached and uncached runs
    /// are bit-identical; the cache only changes how often the estimation
    /// kernel runs. Sharded builds propagate the setting to every worker.
    pub fn score_cache(mut self, enabled: bool) -> Self {
        self.config.score_cache = Some(enabled);
        self
    }

    /// Requests `shards` parallel workers. The engine must then be built
    /// with [`EngineBuilder::build_sharded`]; queries whose predicates do
    /// not all share one partition attribute degrade to a single shard
    /// (the reason is surfaced on the run report).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shard.shards = shards;
        self
    }

    /// Full sharded-execution tuning (channel capacity, batch size,
    /// backpressure, row collection). The shard *count* set here is kept;
    /// call [`EngineBuilder::shards`] afterwards to override just that.
    pub fn shard_config(mut self, config: ShardConfig) -> Self {
        self.shard = config;
        self
    }

    /// Tunes (or disables) the skew-adaptive hot-key splitter used by
    /// key-partitioned sharded execution (DESIGN.md §12).
    pub fn hot_keys(mut self, hot_keys: crate::shard::HotKeyConfig) -> Self {
        self.shard.hot_keys = hot_keys;
        self
    }

    /// Enables or disables broadcast execution for queries that have no
    /// single partition key (default: enabled). With broadcast off, such
    /// queries degrade to one shard and report why.
    pub fn broadcast(mut self, broadcast: bool) -> Self {
        self.shard.broadcast = broadcast;
        self
    }

    /// The one query of a single-query builder.
    fn single_query(&self) -> Result<&JoinQuery, BuildError> {
        match self.queries.len() {
            0 => Err(BuildError::NoQueries),
            1 => Ok(&self.queries[0]),
            got => Err(BuildError::QueryCountForSingle { got }),
        }
    }

    /// Validates everything the single-query engine constructors assume:
    /// memory capacities, sketch bank sizing, epoch derivability for the
    /// chosen policy, and the shard count.
    fn validate_single(&self) -> Result<(), BuildError> {
        let query = self.single_query()?;
        resolve_capacities(&self.config.memory, query.n_streams())?;
        if self.config.bank.s1 == 0 || self.config.bank.s2 == 0 {
            return Err(BuildError::ZeroSketchBank);
        }
        let reqs = self.policy.requirements();
        if (reqs.sketches || reqs.partner_freq) && self.config.epoch.is_none() {
            // Surfaces the mixed-window error at build time instead of
            // deep inside engine construction.
            default_epoch(query)?;
        }
        if self.shard.shards == 0 {
            return Err(BuildError::ZeroShards);
        }
        Ok(())
    }

    /// Validates the query-set configuration for the multi-query engines.
    fn validate_multi(&self) -> Result<(), BuildError> {
        if self.queries.is_empty() {
            return Err(BuildError::NoQueries);
        }
        match &self.config.memory {
            MemoryMode::PerWindow(0) => return Err(BuildError::ZeroWindowCapacity),
            MemoryMode::PerWindow(_) => {}
            MemoryMode::PerWindowEach(_) => {
                // A per-stream capacity list is ambiguous once stores are
                // keyed by *global* stream: which query's stream order
                // would it follow?
                return Err(BuildError::UnsupportedMulti {
                    what: "MemoryMode::PerWindowEach",
                });
            }
            MemoryMode::GlobalPool(_) => {
                return Err(BuildError::UnsupportedMulti {
                    what: "MemoryMode::GlobalPool",
                });
            }
        }
        if self.config.disorder.is_some() {
            return Err(BuildError::UnsupportedMulti {
                what: "a disorder bound",
            });
        }
        if self.config.bank.s1 == 0 || self.config.bank.s2 == 0 {
            return Err(BuildError::ZeroSketchBank);
        }
        if self.shard.shards == 0 {
            return Err(BuildError::ZeroShards);
        }
        let reqs = self.policy.requirements();
        if (reqs.sketches || reqs.partner_freq) && self.config.epoch.is_none() {
            for query in &self.queries {
                default_epoch(query)?;
            }
        }
        Ok(())
    }

    /// Builds the single-threaded engine.
    ///
    /// Errors if [`EngineBuilder::shards`] requested more than one worker
    /// (use [`EngineBuilder::build_sharded`]) or if more than one query
    /// was registered (use [`EngineBuilder::build_multi`]).
    pub fn build(self) -> Result<ShedJoinEngine, BuildError> {
        self.validate_single()?;
        if self.shard.shards > 1 {
            return Err(BuildError::MultiShardBuild {
                shards: self.shard.shards,
            });
        }
        let mut queries = self.queries;
        let query = queries.pop().expect("validated non-empty");
        ShedJoinEngine::new(query, self.policy, self.config).map_err(BuildError::Engine)
    }

    /// Builds the sharded parallel engine (spawns its worker threads).
    ///
    /// A shard count of 1 is valid and runs the same code path with a
    /// single worker. Exactly one registered query; use
    /// [`EngineBuilder::build_multi_sharded`] for query sets.
    pub fn build_sharded(self) -> Result<ShardedJoinEngine, BuildError> {
        self.validate_single()?;
        let mut queries = self.queries;
        let query = queries.pop().expect("validated non-empty");
        ShardedJoinEngine::new(query, self.policy, self.config, self.shard)
            .map_err(BuildError::Engine)
    }

    /// Builds the shared-data-plane multi-query engine over every
    /// registered query. Single-query sets are valid (the engine then
    /// behaves like [`ShedJoinEngine`] addressed by global stream ids).
    pub fn build_multi(self) -> Result<MultiQueryEngine, BuildError> {
        self.validate_multi()?;
        if self.shard.shards > 1 {
            return Err(BuildError::MultiShardBuild {
                shards: self.shard.shards,
            });
        }
        MultiQueryEngine::new(self.queries, self.policy, self.config)
    }

    /// Builds the sharded multi-query engine: the coordinator routes each
    /// arrival once and fans it out to every registered query on the
    /// owning shard. Degrades to one shard (with a reason) unless every
    /// query is key-partitionable and all queries agree on each shared
    /// stream's partition attribute.
    pub fn build_multi_sharded(self) -> Result<ShardedMultiEngine, BuildError> {
        self.validate_multi()?;
        ShardedMultiEngine::new(self.queries, self.policy, self.config, self.shard)
    }
}

/// Rejects two queries that name the same stream with different schemas.
fn check_catalogs_compatible(a: &JoinQuery, b: &JoinQuery) -> Result<(), BuildError> {
    for (_, sb) in b.catalog().iter() {
        for (_, sa) in a.catalog().iter() {
            if sa.name == sb.name && sa.attrs != sb.attrs {
                return Err(BuildError::SchemaMismatch {
                    stream: sb.name.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{Arrival, CountSink};
    use mstream_shed_policies::Fifo;
    use mstream_types::{Catalog, StreamId, StreamSchema, VTime, Value, WindowSpec};

    fn pair_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k"]));
        c.add_stream(StreamSchema::new("R", &["k"]));
        JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap()
    }

    fn feed(e: &mut ShedJoinEngine, s: usize, v: u64, at: VTime) {
        e.ingest(
            Arrival::new(StreamId(s), vec![Value(v)], at),
            &mut CountSink::default(),
        );
    }

    #[test]
    fn builder_defaults_to_msketch() {
        let e = EngineBuilder::new(pair_query()).build().unwrap();
        assert_eq!(e.policy_name(), "MSketch");
    }

    #[test]
    fn builder_applies_policy_and_capacity() {
        let mut e = EngineBuilder::new(pair_query())
            .policy(Fifo)
            .capacity_per_window(2)
            .build()
            .unwrap();
        assert_eq!(e.policy_name(), "FIFO");
        for i in 0..5u64 {
            feed(&mut e, 0, i, VTime::ZERO);
        }
        assert_eq!(e.window_len(StreamId(0)), Some(2));
        assert_eq!(e.metrics().shed_window, 3);
    }

    #[test]
    fn builder_accepts_parsed_policies() {
        let boxed = mstream_shed_policies::parse_policy("bjoin").unwrap();
        let e = EngineBuilder::new(pair_query())
            .boxed_policy(boxed)
            .build()
            .unwrap();
        assert_eq!(e.policy_name(), "Bjoin");
    }

    #[test]
    fn builder_rejects_bad_capacities() {
        let err = EngineBuilder::new(pair_query())
            .capacities(vec![1])
            .build()
            .err()
            .expect("capacity count mismatch rejected");
        assert_eq!(
            err,
            BuildError::CapacityCountMismatch {
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn builder_rejects_bad_bank_and_shards() {
        let bank = BankConfig {
            s1: 0,
            ..BankConfig::default()
        };
        assert_eq!(
            EngineBuilder::new(pair_query()).bank(bank).build().err(),
            Some(BuildError::ZeroSketchBank)
        );
        assert_eq!(
            EngineBuilder::new(pair_query()).shards(0).build().err(),
            Some(BuildError::ZeroShards)
        );
    }

    #[test]
    fn builder_build_refuses_multi_shard() {
        let err = EngineBuilder::new(pair_query())
            .shards(4)
            .build()
            .err()
            .expect("multi-shard build() must be rejected");
        assert_eq!(err, BuildError::MultiShardBuild { shards: 4 });
        assert!(err.to_string().contains("build_sharded"));
    }

    #[test]
    fn builder_global_pool_mode() {
        let mut e = EngineBuilder::new(pair_query())
            .policy(Fifo)
            .global_pool(3)
            .build()
            .unwrap();
        for i in 0..5u64 {
            feed(&mut e, (i % 2) as usize, i, VTime::ZERO);
        }
        let total =
            e.window_len(StreamId(0)).unwrap() + e.window_len(StreamId(1)).unwrap();
        assert_eq!(total, 3);
    }

    #[test]
    fn builder_disorder_bound_arms_the_front_end() {
        use mstream_types::VDur;
        let mut e = EngineBuilder::new(pair_query())
            .policy(Fifo)
            .disorder_bound(VDur::from_secs(5))
            .build()
            .unwrap();
        assert_eq!(e.disorder_bound(), Some(VDur::from_secs(5)));
        feed(&mut e, 0, 1, VTime::from_secs(100));
        feed(&mut e, 1, 1, VTime::from_secs(100));
        // Buffered, not yet released: the watermark sits at 95s.
        assert_eq!(e.watermark(), Some(VTime::from_secs(95)));
        assert_eq!(e.buffered(), 2);
        let out = e.flush(&mut CountSink::default());
        assert_eq!(out.produced, 1, "flushed pair joins");
        assert_eq!(e.buffered(), 0);
    }

    #[test]
    fn window_len_out_of_range_is_none() {
        let e = EngineBuilder::new(pair_query()).build().unwrap();
        assert_eq!(e.window_len(StreamId(7)), None);
    }

    #[test]
    fn register_assigns_dense_ids_and_checks_schemas() {
        let mut b = EngineBuilder::new_multi();
        assert_eq!(b.register(pair_query()).unwrap(), QueryId(0));
        assert_eq!(b.register(pair_query()).unwrap(), QueryId(1));
        // Same stream name `L`, different schema: rejected.
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k", "extra"]));
        c.add_stream(StreamSchema::new("Z", &["k"]));
        let clash =
            JoinQuery::from_names(c, &[("L.k", "Z.k")], WindowSpec::secs(60)).unwrap();
        assert_eq!(
            b.register(clash).err(),
            Some(BuildError::SchemaMismatch {
                stream: "L".into()
            })
        );
    }

    #[test]
    fn build_refuses_query_sets_and_build_multi_refuses_empty() {
        let mut b = EngineBuilder::new_multi();
        b.register(pair_query()).unwrap();
        b.register(pair_query()).unwrap();
        assert_eq!(
            b.build().err(),
            Some(BuildError::QueryCountForSingle { got: 2 })
        );
        assert_eq!(
            EngineBuilder::new_multi().build_multi().err(),
            Some(BuildError::NoQueries)
        );
        assert_eq!(
            EngineBuilder::new_multi().build().err(),
            Some(BuildError::NoQueries)
        );
    }

    #[test]
    fn build_multi_rejects_unsupported_modes() {
        let mut b = EngineBuilder::new_multi().global_pool(64);
        b.register(pair_query()).unwrap();
        assert_eq!(
            b.build_multi().err(),
            Some(BuildError::UnsupportedMulti {
                what: "MemoryMode::GlobalPool"
            })
        );
        let mut b = EngineBuilder::new_multi().disorder_bound(mstream_types::VDur::from_secs(1));
        b.register(pair_query()).unwrap();
        assert_eq!(
            b.build_multi().err(),
            Some(BuildError::UnsupportedMulti {
                what: "a disorder bound"
            })
        );
    }

    #[test]
    fn build_errors_convert_to_workspace_errors() {
        let err: Error = BuildError::ZeroShards.into();
        assert!(matches!(err, Error::InvalidConfig(_)));
        assert!(err.to_string().contains("shard count"));
    }
}
