//! Run-level counters and reports.

use mstream_agg::{BucketSeries, HistBuckets};
use mstream_types::VTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters the engine accumulates while processing.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Join result tuples emitted.
    pub total_output: u64,
    /// Tuples run through the join operator.
    pub processed: u64,
    /// Replicated deliveries ingested in addition to an arrival's one
    /// `processed` delivery (hot-key build copies, broadcast-stream
    /// copies); 0 for unsharded runs.
    #[serde(default)]
    pub replicated: u64,
    /// Tuples dismissed from windows before expiry (shed).
    pub shed_window: u64,
    /// Tuples dropped from the input queue (shed).
    pub shed_queue: u64,
    /// Arrivals discarded by the event-time front end because their
    /// timestamp had already fallen behind the watermark (lateness beyond
    /// the configured disorder bound); 0 when no bound is configured.
    #[serde(default)]
    pub late_dropped: u64,
    /// Tuples that left windows by normal expiration.
    pub expired: u64,
    /// Tumbling-epoch rollovers observed.
    pub epoch_rollovers: u64,
    /// Wall-clock nanoseconds folding arrivals into the estimation state
    /// (AGMS sketch / frequency-table `observe` calls).
    #[serde(default)]
    pub sketch_observe_ns: u64,
    /// Wall-clock nanoseconds rebuilding window priorities at rollovers.
    #[serde(default)]
    pub priority_rebuild_ns: u64,
    /// Wall-clock nanoseconds scoring arriving tuples (productivity
    /// queries for sketch policies).
    #[serde(default)]
    pub score_ns: u64,
    /// Packed-sign cache hits inside the sketch bank (0 when sketch-free).
    #[serde(default)]
    pub sign_cache_hits: u64,
    /// Packed-sign cache misses inside the sketch bank.
    #[serde(default)]
    pub sign_cache_misses: u64,
    /// Productivity score-cache hits: cacheable estimate lookups served
    /// from the epoch memo (DESIGN.md §16); 0 when sketch-free or with
    /// `MSTREAM_SCORE_CACHE=off`.
    #[serde(default)]
    pub score_cache_hits: u64,
    /// Productivity score-cache misses: cacheable estimate lookups that
    /// ran the estimation kernel.
    #[serde(default)]
    pub score_cache_misses: u64,
}

impl EngineMetrics {
    /// Folds `other` into `self` by summing every counter (used to combine
    /// the per-shard metrics of a partitioned run).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.total_output += other.total_output;
        self.processed += other.processed;
        self.replicated += other.replicated;
        self.shed_window += other.shed_window;
        self.shed_queue += other.shed_queue;
        self.late_dropped += other.late_dropped;
        self.expired += other.expired;
        self.epoch_rollovers += other.epoch_rollovers;
        self.sketch_observe_ns += other.sketch_observe_ns;
        self.priority_rebuild_ns += other.priority_rebuild_ns;
        self.score_ns += other.score_ns;
        self.sign_cache_hits += other.sign_cache_hits;
        self.sign_cache_misses += other.sign_cache_misses;
        self.score_cache_hits += other.score_cache_hits;
        self.score_cache_misses += other.score_cache_misses;
    }
}

/// The outcome of running one trace through one engine.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Final engine counters.
    pub metrics: EngineMetrics,
    /// Output tuples per time bucket, when requested (Figure 5).
    pub series: Option<BucketSeries>,
    /// Collected aggregate-attribute histograms per bucket, when requested
    /// (Figure 7's windowed AVG / quartiles input).
    pub agg_values: Option<HistBuckets>,
    /// Virtual time when the last tuple finished processing.
    pub end_time: VTime,
    /// Wall-clock time spent inside the engine (shedding decisions + join
    /// processing — the quantity Figure 3 compares).
    pub wall_time: Duration,
    /// Parallel workers the run actually executed on (1 for the
    /// single-threaded engine).
    pub shards: usize,
    /// Why a multi-shard request degraded to one shard, if it did (the
    /// query's predicates do not all share one partition attribute).
    pub degraded: Option<String>,
}

impl Default for RunReport {
    fn default() -> Self {
        RunReport {
            metrics: EngineMetrics::default(),
            series: None,
            agg_values: None,
            end_time: VTime::ZERO,
            wall_time: Duration::ZERO,
            // Every run executes on at least one shard; `..Default::default()`
            // constructions elsewhere inherit the single-threaded answer.
            shards: 1,
            degraded: None,
        }
    }
}

impl RunReport {
    /// Output tuples emitted.
    pub fn total_output(&self) -> u64 {
        self.metrics.total_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zeroed() {
        let m = EngineMetrics::default();
        assert_eq!(m.total_output, 0);
        assert_eq!(m.shed_window + m.shed_queue + m.expired, 0);
        let r = RunReport::default();
        assert_eq!(r.total_output(), 0);
        assert!(r.series.is_none());
        assert_eq!(r.shards, 1, "runs execute on at least one shard");
        assert!(r.degraded.is_none());
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = EngineMetrics {
            total_output: 1,
            processed: 2,
            replicated: 12,
            shed_window: 3,
            shed_queue: 4,
            late_dropped: 13,
            expired: 5,
            epoch_rollovers: 6,
            sketch_observe_ns: 7,
            priority_rebuild_ns: 8,
            score_ns: 9,
            sign_cache_hits: 10,
            sign_cache_misses: 11,
            score_cache_hits: 14,
            score_cache_misses: 15,
        };
        let mut m = a.clone();
        m.merge(&a);
        let json = serde_json::to_value(&m);
        let single = serde_json::to_value(&a);
        for (key, v) in json.as_object().unwrap() {
            let one = single[key.as_str()].as_u64().unwrap();
            assert_eq!(v.as_u64().unwrap(), 2 * one, "{key} must be summed");
        }
    }

    #[test]
    fn metrics_serialize_for_artifacts() {
        let m = EngineMetrics {
            total_output: 5,
            processed: 10,
            ..Default::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: EngineMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
