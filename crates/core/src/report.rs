//! Run-level counters and reports.

use mstream_agg::{BucketSeries, HistBuckets};
use mstream_types::VTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters the engine accumulates while processing.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Join result tuples emitted.
    pub total_output: u64,
    /// Tuples run through the join operator.
    pub processed: u64,
    /// Tuples dismissed from windows before expiry (shed).
    pub shed_window: u64,
    /// Tuples dropped from the input queue (shed).
    pub shed_queue: u64,
    /// Tuples that left windows by normal expiration.
    pub expired: u64,
    /// Tumbling-epoch rollovers observed.
    pub epoch_rollovers: u64,
    /// Wall-clock nanoseconds folding arrivals into the estimation state
    /// (AGMS sketch / frequency-table `observe` calls).
    #[serde(default)]
    pub sketch_observe_ns: u64,
    /// Wall-clock nanoseconds rebuilding window priorities at rollovers.
    #[serde(default)]
    pub priority_rebuild_ns: u64,
    /// Wall-clock nanoseconds scoring arriving tuples (productivity
    /// queries for sketch policies).
    #[serde(default)]
    pub score_ns: u64,
    /// Packed-sign cache hits inside the sketch bank (0 when sketch-free).
    #[serde(default)]
    pub sign_cache_hits: u64,
    /// Packed-sign cache misses inside the sketch bank.
    #[serde(default)]
    pub sign_cache_misses: u64,
}

/// The outcome of running one trace through one engine.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Final engine counters.
    pub metrics: EngineMetrics,
    /// Output tuples per time bucket, when requested (Figure 5).
    pub series: Option<BucketSeries>,
    /// Collected aggregate-attribute histograms per bucket, when requested
    /// (Figure 7's windowed AVG / quartiles input).
    pub agg_values: Option<HistBuckets>,
    /// Virtual time when the last tuple finished processing.
    pub end_time: VTime,
    /// Wall-clock time spent inside the engine (shedding decisions + join
    /// processing — the quantity Figure 3 compares).
    pub wall_time: Duration,
}

impl RunReport {
    /// Output tuples emitted.
    pub fn total_output(&self) -> u64 {
        self.metrics.total_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zeroed() {
        let m = EngineMetrics::default();
        assert_eq!(m.total_output, 0);
        assert_eq!(m.shed_window + m.shed_queue + m.expired, 0);
        let r = RunReport::default();
        assert_eq!(r.total_output(), 0);
        assert!(r.series.is_none());
    }

    #[test]
    fn metrics_serialize_for_artifacts() {
        let m = EngineMetrics {
            total_output: 5,
            processed: 10,
            ..Default::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: EngineMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
