//! # mstream-core
//!
//! A from-scratch reproduction of **"Load Shedding for Window Joins on
//! Multiple Data Streams"** (Yan-Nei Law & Carlo Zaniolo, ICDE 2007): a
//! multi-way sliding-window join operator that keeps running under memory
//! pressure and overload by *semantically* shedding load — evicting the
//! tuples that contribute least to the join result, as estimated by
//! fast-and-light AGMS sketches over tumbling windows.
//!
//! ## Quick start
//!
//! ```
//! use mstream_core::prelude::*;
//!
//! // Three streams joined in a chain: R1.A1 = R2.A1 and R2.A2 = R3.A1,
//! // over 100-second sliding windows.
//! let mut catalog = Catalog::new();
//! catalog.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
//! catalog.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
//! catalog.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
//! let query = JoinQuery::from_names(
//!     catalog,
//!     &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
//!     WindowSpec::secs(100),
//! ).unwrap();
//!
//! // An MSketch-shedding engine holding at most 64 tuples per window.
//! let mut engine = EngineBuilder::new(query)
//!     .policy(MSketch)
//!     .capacity_per_window(64)
//!     .build()
//!     .unwrap();
//!
//! // Feed a few arrivals by hand (real runs use `run_trace`). Results
//! // flow into a sink; `CountSink` just counts them.
//! let mut sink = CountSink::default();
//! let o = engine.ingest(Arrival::new(StreamId(1), vec![Value(7), Value(3)], VTime::from_secs(1)), &mut sink);
//! assert_eq!(o.produced, 0); // nothing to join against yet
//! let o = engine.ingest(Arrival::new(StreamId(2), vec![Value(3), Value(0)], VTime::from_secs(2)), &mut sink);
//! assert_eq!(o.produced, 0); // still missing the R1 side
//! let o = engine.ingest(Arrival::new(StreamId(0), vec![Value(7), Value(9)], VTime::from_secs(3)), &mut sink);
//! assert_eq!(o.produced, 1); // completes one 3-way result
//! assert!(o.stored);
//! assert_eq!(sink.produced, 1);
//! assert_eq!(engine.metrics().total_output, 1);
//! ```
//!
//! ## Crate map
//!
//! * [`engine`] — [`ShedJoinEngine`]: Algorithm 1 of the paper (window
//!   shedding, tumbling sketches, priority queues, per-policy state).
//! * [`ingest`] — the unified feed API: [`Arrival`] in, join results out
//!   through an [`EmitSink`].
//! * [`shard`] — [`ShardedJoinEngine`]: hash-partitioned parallel
//!   execution across worker threads, when the query's predicates allow.
//! * [`sim`] — the discrete-event driver: arrival rate `k`, service rate
//!   `l`, the bounded input queue, and overload shedding.
//! * [`builder`] — [`EngineBuilder`], the one documented construction path.
//! * [`report`] — run reports: output counts, per-bucket series, collected
//!   aggregate values, shedding counters, wall-clock time.
//!
//! Re-exported substrate crates: [`mstream_types`] (values/queries),
//! [`mstream_sketch`] (AGMS sketches), [`mstream_window`] (stores/queues),
//! [`mstream_join`] (probe plans + exact reference join),
//! [`mstream_shed_policies`] (the seven policies), [`mstream_workload`]
//! (paper workloads) and [`mstream_agg`] (aggregates/metrics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod engine;
pub mod ingest;
pub mod multi;
mod multi_shard;
pub mod report;
pub mod shard;
pub mod sim;

pub use builder::{BuildError, EngineBuilder};
pub use engine::{BatchItem, EngineConfig, MemoryMode, ShedJoinEngine};
pub use ingest::{
    Arrival, CountSink, EmitSink, FnSink, IngestOutcome, IngestRole, QueryFnSink, QueryRowsSink,
    VecSink,
};
pub use multi::{MultiQueryEngine, MultiRunReport, QueryStats, ShardedMultiEngine};
pub use report::{EngineMetrics, RunReport};
pub use shard::{Backpressure, HotKeyConfig, ShardConfig, ShardedJoinEngine, ShardedRunReport};
pub use sim::{run_exact_trace, run_trace, RunOptions, SimConfig};

// Re-export the substrate crates under their own names…
pub use mstream_agg;
pub use mstream_join;
pub use mstream_shed_policies;
pub use mstream_sketch;
pub use mstream_types;
pub use mstream_window;
pub use mstream_workload;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::builder::{BuildError, EngineBuilder};
    pub use crate::engine::{BatchItem, EngineConfig, MemoryMode, ShedJoinEngine};
    pub use crate::ingest::{
        Arrival, CountSink, EmitSink, FnSink, IngestOutcome, IngestRole, QueryFnSink,
        QueryRowsSink, VecSink,
    };
    pub use crate::multi::{MultiQueryEngine, MultiRunReport, QueryStats, ShardedMultiEngine};
    pub use crate::report::{EngineMetrics, RunReport};
    pub use crate::shard::{Backpressure, HotKeyConfig, ShardConfig, ShardedJoinEngine, ShardedRunReport};
    pub use crate::sim::{run_exact_trace, run_trace, RunOptions, SimConfig};
    pub use mstream_agg::{quartiles, Reservoir, SeriesComparison};
    pub use mstream_join::{Bindings, ExactJoin};
    pub use mstream_shed_policies::{
        parse_policy, Age, Bjoin, Fifo, Life, MSketch, MSketchCurrentEpoch, MSketchRs,
        RandomLoad, ShedPolicy, ALL_POLICY_NAMES,
    };
    pub use mstream_sketch::{BankConfig, EpochSpec};
    pub use mstream_types::{
        AttrRef, Catalog, EquiPredicate, JoinQuery, Partitioning, QueryId, SeqNo, StreamId,
        StreamSchema, Tuple, VDur, VTime, Value, WindowSpec,
    };
    pub use mstream_workload::{
        CensusConfig, CensusGenerator, FeedOrder, RegionsConfig, RegionsGenerator, Trace,
    };
}
