//! The shared multi-query data plane: one engine, N standing queries.
//!
//! [`MultiQueryEngine`] inverts the ownership of the single-query engine:
//! instead of a query owning its windows, the *engine* owns one
//! [`WindowStore`] (with its flat indexes) per **stream × window** and
//! registered queries borrow them. Registration groups queries into
//! **classes** — structurally identical queries (same streams, windows and
//! predicates) collapse into one class that is planned, estimated, scored
//! and probed exactly once; its emissions fan out to every member
//! [`QueryId`]. Distinct classes that touch the same `(stream, window)`
//! pair share the store outright, and their probe plans are merged into a
//! per-arrival-stream **probe trie** so a shared plan prefix (the same
//! equi-predicate over the same stores) is enumerated once and its partial
//! probe results are reused by every query hanging off it.
//!
//! # Ownership and exactness
//!
//! Every store has a deterministic **owner**: the lowest-id class using it.
//! The owner's policy scores insertions, takes the produced-output credits
//! of its own emissions, and rebuilds the store's priorities on its epoch
//! rollovers — so the owner's stores evolve bit-for-bit as they would in
//! that query's solo run, even under shedding. Queries that share a store
//! they do not own get the full exactness contract only at full memory
//! (identical contents, identical bucket order → bit-identical output
//! modulo stream tags, see below); under shedding their output is a
//! sub-multiset of their exact output, shaped by the owner's policy.
//!
//! # Registration semantics
//!
//! [`MultiQueryEngine::add_query`] mid-run always creates a fresh class
//! with **fresh stores** (never reusing resident state), so a query
//! registered mid-run sees only tuples admitted after registration —
//! deterministic state handoff with no retroactive results.
//! [`MultiQueryEngine::remove_query`] drops the member; a class with no
//! members left is dismantled and any store losing its last user is freed
//! immediately (its memory budget with it). Query ids are dense
//! registration-order indices and are never reused.
//!
//! # Stream tags in emissions
//!
//! Stored tuples carry the *owner class's local* stream tag; the arriving
//! tuple in a [`Bindings`] carries the engine's *global* tag. Consumers
//! identifying result rows should therefore key on `(ts, values)` (plus
//! emission order), not on `Tuple::stream` — the differential tests and
//! the audit harness do exactly this.

use crate::builder::BuildError;
use crate::engine::{default_epoch, EngineConfig, MemoryMode, ProducedScratch};
use crate::ingest::{Arrival, EmitSink, IngestOutcome};
use crate::report::EngineMetrics;
use mstream_join::{Bindings, ProbePlan, StoreLookup};
use mstream_shed_policies::{clamp_score, PriorityCtx, Requirements, ShedPolicy};
use mstream_sketch::{TumblingFreq, TumblingSketches};
use mstream_types::{
    Catalog, EquiPredicate, JoinQuery, QueryId, SeqNo, StreamId, Tuple, VTime, Value, WindowSpec,
};
use mstream_window::{Slot, WindowStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use crate::multi_shard::{MultiRunReport, ShardedMultiEngine};

/// One shared window store plus its sharing bookkeeping.
struct StoreEntry {
    store: WindowStore,
    /// The global stream this store holds tuples of.
    gstream: StreamId,
    /// Classes using this store, in registration order; `users[0]` is the
    /// owner whose policy governs scoring and shedding here.
    users: Vec<usize>,
    /// Tuples shed from this store (evictions before expiry).
    shed: u64,
}

/// One class of structurally identical registered queries.
struct QueryClass {
    /// The class's query in its own local stream space (`StreamId(0..n)`).
    query: JoinQuery,
    /// Member queries, in registration order; every emission fans out to
    /// each of them.
    members: Vec<QueryId>,
    plans: Vec<ProbePlan>,
    policy: Box<dyn ShedPolicy>,
    reqs: Requirements,
    sketches: Option<TumblingSketches>,
    partner_freq: Option<TumblingFreq>,
    rng: StdRng,
    /// Local stream `k` → global stream id.
    gstream_of: Vec<StreamId>,
    /// Local stream `k` → store table index.
    store_of: Vec<usize>,
}

impl QueryClass {
    /// The local stream id of global stream `g` in this class, if any.
    fn local_of(&self, g: StreamId) -> Option<StreamId> {
        self.gstream_of.iter().position(|&x| x == g).map(StreamId)
    }
}

/// Per registered query state (dense by [`QueryId`]).
struct QueryState {
    class: usize,
    produced: u64,
}

/// Per-query counters reported by [`MultiQueryEngine::query_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Join results emitted under this query's id.
    pub produced: u64,
    /// Tuples shed from the stores this query reads (shared stores count
    /// the same eviction for every user).
    pub shed: u64,
}

/// A position in the probe-trie path: the arriving tuple or an
/// already-bound trie depth. Canonicalizing plan steps into path positions
/// (instead of query-local stream ids) is what lets structurally matching
/// steps of *different* queries merge into one trie node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PathRef {
    Origin,
    Depth(usize),
}

/// One merged probe step shared by every class whose canonical plan
/// traverses it. `terminals` lists the classes whose plans complete here.
struct TrieNode {
    /// Store table index probed by this step.
    store: usize,
    /// Schema attribute hash-probed on that store.
    probe_attr: usize,
    /// Where the probe value comes from.
    drive: (PathRef, usize),
    /// Residual equi-checks `(bound position, bound attr, candidate
    /// attr)`.
    residual: Vec<(PathRef, usize, usize)>,
    /// `(class id, class-local origin stream)` pairs completing here.
    terminals: Vec<(usize, StreamId)>,
    children: Vec<TrieNode>,
}

/// Applies every pending produced-output credit of every store: one
/// coalesced `add_produced` + priority refresh per touched live slot,
/// refreshed by the store owner's policy (credits are only accrued by
/// owner-class emissions, keeping the owner's counters solo-identical).
/// The multi-query twin of the solo engine's `flush_produced`; shares its
/// generation-safe [`ProducedScratch`]. A store removed while credits were
/// pending just drops them (its tuples are gone with it).
fn flush_credit_stores(
    stores: &mut [Option<StoreEntry>],
    scratches: &mut [ProducedScratch],
    classes: &[Option<QueryClass>],
) {
    for (slot, scratch) in stores.iter_mut().zip(scratches.iter_mut()) {
        if scratch.touched.is_empty() {
            continue;
        }
        let Some(entry) = slot.as_mut() else {
            scratch.drain_credits(|_, _| {});
            continue;
        };
        let owner = entry.users[0];
        let policy = &classes[owner].as_ref().expect("owner is live").policy;
        scratch.drain_credits(|slot, cnt| {
            let Some(total) = entry.store.add_produced(slot, cnt) else {
                return;
            };
            let state = entry.store.state(slot).expect("credited slot is live");
            let score = clamp_score(policy.refresh_priority(state, total));
            entry.store.update_priority(slot, score);
        });
    }
}

/// A query-local view of the shared store table: local stream `k` resolves
/// through the class's `store_of` mapping. This is the [`StoreLookup`]
/// behind every multi-query [`Bindings`].
struct MappedStores<'a> {
    entries: &'a [Option<StoreEntry>],
    map: &'a [usize],
}

impl StoreLookup for MappedStores<'_> {
    #[inline]
    fn store(&self, stream: StreamId) -> &WindowStore {
        &self.entries[self.map[stream.index()]]
            .as_ref()
            .expect("mapped store is live")
            .store
    }
}

/// One engine executing N standing window-join queries over shared
/// per-stream state. See the module docs for the sharing and exactness
/// model; construction goes through
/// [`crate::EngineBuilder::build_multi`].
pub struct MultiQueryEngine {
    catalog: Catalog,
    policy_proto: Box<dyn ShedPolicy>,
    config: EngineConfig,
    queries: Vec<Option<QueryState>>,
    classes: Vec<Option<QueryClass>>,
    stores: Vec<Option<StoreEntry>>,
    /// Per-store produced-credit scratch (parallel to `stores`).
    scratches: Vec<ProducedScratch>,
    /// Per-class slot scratch for assembling emission bindings (parallel
    /// to `classes`).
    emit_scratch: Vec<Vec<Option<Slot>>>,
    /// Per global stream: merged probe-trie roots.
    tries: Vec<Vec<TrieNode>>,
    next_seq: SeqNo,
    metrics: EngineMetrics,
    /// Cache counters of classes dismantled by
    /// [`MultiQueryEngine::remove_query`], folded in at teardown so the
    /// engine-level cache statistics stay monotone as classes (and the
    /// sketch banks carrying the live counters) come and go.
    retired_cache: RetiredCacheStats,
    /// Recycled buffer behind [`MultiQueryEngine::ingest_batch`].
    batch_scratch: Vec<(Tuple, VTime)>,
}

/// Sketch-side cache counters surviving their class (see
/// [`MultiQueryEngine::remove_query`]).
#[derive(Clone, Copy, Debug, Default)]
struct RetiredCacheStats {
    sign_hits: u64,
    sign_misses: u64,
    score_hits: u64,
    score_misses: u64,
}

impl RetiredCacheStats {
    fn absorb(&mut self, sketches: &TumblingSketches) {
        let signs = sketches.sign_cache_stats();
        self.sign_hits += signs.hits;
        self.sign_misses += signs.misses;
        let scores = sketches.score_cache_stats();
        self.score_hits += scores.hits;
        self.score_misses += scores.misses;
    }
}

/// Maps `query`'s local streams into `catalog` by stream *name*, appending
/// streams the catalog has not seen and rejecting schema conflicts. Shared
/// by the in-process engine and the sharded coordinator (whose routing
/// table must mirror its workers' merged catalogs exactly).
pub(crate) fn merge_into_catalog(
    catalog: &mut Catalog,
    query: &JoinQuery,
) -> Result<Vec<StreamId>, BuildError> {
    let mut gstream_of = Vec::with_capacity(query.n_streams());
    for (_, schema) in query.catalog().iter() {
        let existing = catalog
            .iter()
            .find(|(_, s)| s.name == schema.name)
            .map(|(g, s)| (g, s.attrs.clone()));
        let g = match existing {
            Some((g, attrs)) => {
                if attrs != schema.attrs {
                    return Err(BuildError::SchemaMismatch {
                        stream: schema.name.clone(),
                    });
                }
                g
            }
            None => catalog.add_stream(schema.clone()),
        };
        gstream_of.push(g);
    }
    Ok(gstream_of)
}

/// A query's structural signature: two queries with equal signatures are
/// the same standing computation and collapse into one class.
fn class_signature(q: &JoinQuery) -> (Vec<String>, Vec<WindowSpec>, Vec<EquiPredicate>) {
    let names = q.catalog().iter().map(|(_, s)| s.name.clone()).collect();
    (names, q.windows().to_vec(), q.predicates().to_vec())
}

impl MultiQueryEngine {
    /// Builds the engine over `queries` (registration order = dense query
    /// ids). Prefer [`crate::EngineBuilder::build_multi`], which validates
    /// the configuration first.
    pub(crate) fn new(
        queries: Vec<JoinQuery>,
        policy: Box<dyn ShedPolicy>,
        config: EngineConfig,
    ) -> Result<Self, BuildError> {
        if queries.is_empty() {
            return Err(BuildError::NoQueries);
        }
        let mut engine = MultiQueryEngine {
            catalog: Catalog::new(),
            policy_proto: policy,
            config,
            queries: Vec::new(),
            classes: Vec::new(),
            stores: Vec::new(),
            scratches: Vec::new(),
            emit_scratch: Vec::new(),
            tries: Vec::new(),
            next_seq: SeqNo(0),
            metrics: EngineMetrics::default(),
            retired_cache: RetiredCacheStats::default(),
            batch_scratch: Vec::new(),
        };
        engine.per_window_capacity()?;
        // Group into classes first so structurally identical queries share
        // everything, then plan the store table with the attr-index union
        // of all users before any store is constructed.
        let mut specs: Vec<(JoinQuery, Vec<QueryId>)> = Vec::new();
        for (i, q) in queries.into_iter().enumerate() {
            let sig = class_signature(&q);
            match specs.iter_mut().find(|(e, _)| class_signature(e) == sig) {
                Some((_, members)) => members.push(QueryId(i as u32)),
                None => specs.push((q, vec![QueryId(i as u32)])),
            }
        }
        struct Planned {
            gstream: StreamId,
            window: WindowSpec,
            attrs: Vec<usize>,
            users: Vec<usize>,
        }
        let mut planned: Vec<Planned> = Vec::new();
        let mut class_maps: Vec<(Vec<StreamId>, Vec<usize>)> = Vec::new();
        for (cid, (q, _)) in specs.iter().enumerate() {
            let gstream_of = engine.merge_catalog(q)?;
            let mut store_of = Vec::with_capacity(q.n_streams());
            for (k, &g) in gstream_of.iter().enumerate() {
                let window = q.window(StreamId(k));
                let mut attrs = q.join_attrs(StreamId(k));
                attrs.sort_unstable();
                attrs.dedup();
                let si = match planned
                    .iter()
                    .position(|p| p.gstream == g && p.window == window)
                {
                    Some(si) => {
                        let p = &mut planned[si];
                        for a in attrs {
                            if !p.attrs.contains(&a) {
                                p.attrs.push(a);
                            }
                        }
                        p.attrs.sort_unstable();
                        if !p.users.contains(&cid) {
                            p.users.push(cid);
                        }
                        si
                    }
                    None => {
                        planned.push(Planned {
                            gstream: g,
                            window,
                            attrs,
                            users: vec![cid],
                        });
                        planned.len() - 1
                    }
                };
                store_of.push(si);
            }
            class_maps.push((gstream_of, store_of));
        }
        let capacity = engine.per_window_capacity()?;
        for p in planned {
            engine.stores.push(Some(StoreEntry {
                store: WindowStore::new(p.window, p.attrs.clone(), capacity),
                gstream: p.gstream,
                users: p.users,
                shed: 0,
            }));
            engine.scratches.push(ProducedScratch::default());
        }
        for ((q, members), (gstream_of, store_of)) in specs.into_iter().zip(class_maps) {
            let cid = engine.classes.len();
            let class = make_class(
                q,
                members.clone(),
                gstream_of,
                store_of,
                engine.policy_proto.clone(),
                &engine.config,
            )?;
            engine.classes.push(Some(class));
            engine.emit_scratch.push(Vec::new());
            for m in members {
                if engine.queries.len() <= m.index() {
                    engine.queries.resize_with(m.index() + 1, || None);
                }
                engine.queries[m.index()] = Some(QueryState {
                    class: cid,
                    produced: 0,
                });
            }
        }
        engine.rebuild_tries();
        Ok(engine)
    }

    /// The per-window capacity of the (sole supported) memory mode.
    fn per_window_capacity(&self) -> Result<usize, BuildError> {
        match &self.config.memory {
            MemoryMode::PerWindow(0) => Err(BuildError::ZeroWindowCapacity),
            MemoryMode::PerWindow(c) => Ok(*c),
            MemoryMode::PerWindowEach(_) => Err(BuildError::UnsupportedMulti {
                what: "MemoryMode::PerWindowEach",
            }),
            MemoryMode::GlobalPool(_) => Err(BuildError::UnsupportedMulti {
                what: "MemoryMode::GlobalPool",
            }),
        }
    }

    /// Maps `query`'s local streams into the global catalog by stream
    /// *name*, appending streams the catalog has not seen and rejecting
    /// schema conflicts.
    fn merge_catalog(&mut self, query: &JoinQuery) -> Result<Vec<StreamId>, BuildError> {
        merge_into_catalog(&mut self.catalog, query)
    }

    /// The merged global catalog; [`Arrival::stream`] ids passed to
    /// [`MultiQueryEngine::ingest`] index into it.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The global id of the stream named `name`.
    pub fn stream_id(&self, name: &str) -> Option<StreamId> {
        self.catalog
            .iter()
            .find(|(_, s)| s.name == name)
            .map(|(g, _)| g)
    }

    /// Queries currently registered (removed queries do not count).
    pub fn n_queries(&self) -> usize {
        self.queries.iter().flatten().count()
    }

    /// Query ids handed out so far (dense; includes removed queries).
    pub fn n_registered(&self) -> usize {
        self.queries.len()
    }

    /// Distinct query classes currently active — the unit of planning,
    /// estimation and scoring work.
    pub fn n_classes(&self) -> usize {
        self.classes.iter().flatten().count()
    }

    /// Live shared window stores — the unit of resident memory.
    pub fn n_stores(&self) -> usize {
        self.stores.iter().flatten().count()
    }

    /// The query executed for `id` (its class's local-stream-space query).
    pub fn query(&self, id: QueryId) -> Option<&JoinQuery> {
        let state = self.queries.get(id.index())?.as_ref()?;
        self.classes[state.class].as_ref().map(|c| &c.query)
    }

    /// Accumulated engine-level counters. Sketch-side cache statistics
    /// are snapshotted here, at read time: the sum over every live class's
    /// sketch bank plus the folded baseline of classes already dismantled
    /// by [`MultiQueryEngine::remove_query`] — so the counters stay
    /// monotone across query churn.
    pub fn metrics(&mut self) -> &EngineMetrics {
        let mut total = self.retired_cache;
        for class in self.classes.iter().flatten() {
            if let Some(sk) = class.sketches.as_ref() {
                total.absorb(sk);
            }
        }
        self.metrics.sign_cache_hits = total.sign_hits;
        self.metrics.sign_cache_misses = total.sign_misses;
        self.metrics.score_cache_hits = total.score_hits;
        self.metrics.score_cache_misses = total.score_misses;
        &self.metrics
    }

    /// Per-query produced/shed counters, `None` if `id` was never
    /// registered or has been removed.
    pub fn query_stats(&self, id: QueryId) -> Option<QueryStats> {
        let state = self.queries.get(id.index())?.as_ref()?;
        let class = self.classes[state.class].as_ref()?;
        let shed = class
            .store_of
            .iter()
            .map(|&si| self.stores[si].as_ref().map_or(0, |e| e.shed))
            .sum();
        Some(QueryStats {
            produced: state.produced,
            shed,
        })
    }

    /// Total resident tuples across every live store.
    pub fn total_resident(&self) -> usize {
        self.stores
            .iter()
            .flatten()
            .map(|e| e.store.len())
            .sum()
    }

    /// Structural audit of the shared data plane: every live store's
    /// internal invariants, every class's sketch coherence, and the
    /// sharing bookkeeping (owners exist, mappings in range). Compiled
    /// only under the `audit` feature.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(feature = "audit")]
    pub fn check_invariants(&self) {
        for entry in self.stores.iter().flatten() {
            entry.store.check_invariants();
            assert!(!entry.users.is_empty(), "stores without users are freed");
            for &cid in &entry.users {
                assert!(
                    self.classes.get(cid).is_some_and(|c| c.is_some()),
                    "store user class {cid} is live"
                );
            }
        }
        for class in self.classes.iter().flatten() {
            if let Some(sk) = class.sketches.as_ref() {
                sk.check_invariants();
            }
            for (&si, &g) in class.store_of.iter().zip(&class.gstream_of) {
                let entry = self.stores[si].as_ref().expect("class store is live");
                assert_eq!(entry.gstream, g, "store mapping agrees on stream");
            }
            for &m in &class.members {
                assert!(
                    self.queries[m.index()].is_some(),
                    "class member {m} is registered"
                );
            }
        }
    }

    /// Registers a new standing query at runtime and returns its id.
    ///
    /// The query always gets a fresh class with fresh stores — even if it
    /// is structurally identical to a running one — so it sees only
    /// tuples admitted after this call (deterministic handoff). Its
    /// schema must agree with the global catalog on any stream name it
    /// shares.
    pub fn add_query(&mut self, query: JoinQuery) -> Result<QueryId, BuildError> {
        let capacity = self.per_window_capacity()?;
        let snapshot = self.catalog.clone();
        let gstream_of = match self.merge_catalog(&query) {
            Ok(m) => m,
            Err(e) => {
                self.catalog = snapshot;
                return Err(e);
            }
        };
        let cid = self.classes.len();
        let first_store = self.stores.len();
        let store_of: Vec<usize> = (0..query.n_streams()).map(|k| first_store + k).collect();
        let windows: Vec<WindowSpec> = (0..query.n_streams())
            .map(|k| query.window(StreamId(k)))
            .collect();
        let attr_sets: Vec<Vec<usize>> = (0..query.n_streams())
            .map(|k| {
                let mut a = query.join_attrs(StreamId(k));
                a.sort_unstable();
                a.dedup();
                a
            })
            .collect();
        let qid = QueryId(self.queries.len() as u32);
        let class = match make_class(
            query,
            vec![qid],
            gstream_of.clone(),
            store_of,
            self.policy_proto.clone(),
            &self.config,
        ) {
            Ok(c) => c,
            Err(e) => {
                self.catalog = snapshot;
                return Err(e);
            }
        };
        for ((&g, window), attrs) in gstream_of.iter().zip(windows).zip(attr_sets) {
            self.stores.push(Some(StoreEntry {
                store: WindowStore::new(window, attrs, capacity),
                gstream: g,
                users: vec![cid],
                shed: 0,
            }));
            self.scratches.push(ProducedScratch::default());
        }
        self.classes.push(Some(class));
        self.emit_scratch.push(Vec::new());
        self.queries.push(Some(QueryState {
            class: cid,
            produced: 0,
        }));
        self.rebuild_tries();
        Ok(qid)
    }

    /// Deregisters `id`: it stops emitting immediately. When it was its
    /// class's last member the class is dismantled, and stores left with
    /// no users are freed on the spot (their memory budget with them).
    /// Returns `false` if `id` is unknown or already removed. Survivor
    /// queries are not perturbed: shared stores keep evolving, and a
    /// shared store whose owner departs is handed to its next-oldest user
    /// (which rescoring picks up from the next epoch rollover).
    pub fn remove_query(&mut self, id: QueryId) -> bool {
        let Some(state) = self.queries.get_mut(id.index()).and_then(Option::take) else {
            return false;
        };
        let cid = state.class;
        let class = self.classes[cid].as_mut().expect("member's class is live");
        class.members.retain(|&q| q != id);
        if class.members.is_empty() {
            let retired = std::mem::take(&mut self.classes[cid]).expect("checked");
            if let Some(sk) = retired.sketches.as_ref() {
                // The class's sketch bank dies here; bank its cache
                // counters so engine-level stats stay monotone.
                self.retired_cache.absorb(sk);
            }
            let store_of = retired.store_of;
            for si in store_of {
                let entry = self.stores[si].as_mut().expect("class store is live");
                entry.users.retain(|&c| c != cid);
                if entry.users.is_empty() {
                    self.stores[si] = None;
                }
            }
        }
        self.rebuild_tries();
        true
    }

    /// Mints an [`Arrival`] (global stream id) into a sequence-numbered
    /// tuple without processing it.
    pub fn mint(&mut self, arrival: Arrival) -> Tuple {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        Tuple::new(arrival.stream, arrival.ts, seq, arrival.values)
    }

    /// Feeds one arrival (addressed by **global** stream id) through the
    /// shared data plane: every interested class observes it, probes once
    /// through the merged trie, and fans results out to its member
    /// queries via `sink`. Returns the aggregate outcome across all
    /// queries.
    pub fn ingest(&mut self, arrival: Arrival, sink: &mut impl EmitSink) -> IngestOutcome {
        let now = arrival.ts;
        let tuple = self.mint(arrival);
        self.ingest_tuple(tuple, now, sink)
    }

    /// Runs one already-minted tuple (global stream tag) through the data
    /// plane at time `now` — the primitive the sharded coordinator feeds.
    pub fn ingest_tuple(
        &mut self,
        tuple: Tuple,
        now: VTime,
        sink: &mut impl EmitSink,
    ) -> IngestOutcome {
        self.ingest_tuple_inner(tuple, now, sink, false)
    }

    /// Runs a pre-minted batch through the shared data plane, replaying
    /// the per-arrival path bit-identically (same fan-out emissions in the
    /// same order, same shed decisions) with the batch amortizations of
    /// the solo engine: an upfront pass software-prefetches each tuple's
    /// origin-driven trie-root probes, and produced-credit rescoring is
    /// deferred — flushed before any owner rollover rebuild, before any
    /// at-capacity insert, and at batch end. Items are drained; the
    /// vector's capacity is retained for recycling.
    pub fn ingest_tuple_batch(
        &mut self,
        items: &mut Vec<(Tuple, VTime)>,
        sink: &mut impl EmitSink,
    ) -> IngestOutcome {
        for (tuple, _) in items.iter() {
            let Some(roots) = self.tries.get(tuple.stream.index()) else {
                continue;
            };
            for node in roots {
                // Trie roots are driven by the arriving tuple itself.
                let (PathRef::Origin, attr) = &node.drive else {
                    continue;
                };
                if let Some(entry) = self.stores[node.store].as_ref() {
                    entry.store.prefetch(node.probe_attr, tuple.values[*attr]);
                }
            }
        }
        let mut total = IngestOutcome {
            produced: 0,
            stored: true,
            shed: 0,
        };
        for (tuple, now) in items.drain(..) {
            let out = self.ingest_tuple_inner(tuple, now, sink, true);
            total.produced += out.produced;
            total.shed += out.shed;
            total.stored = out.stored;
        }
        flush_credit_stores(&mut self.stores, &mut self.scratches, &self.classes);
        total
    }

    /// Batch counterpart of [`MultiQueryEngine::ingest`]: mints every
    /// arrival and feeds [`MultiQueryEngine::ingest_tuple_batch`].
    pub fn ingest_batch(
        &mut self,
        arrivals: impl IntoIterator<Item = Arrival>,
        sink: &mut impl EmitSink,
    ) -> IngestOutcome {
        let mut items = std::mem::take(&mut self.batch_scratch);
        items.clear();
        for arrival in arrivals {
            let now = arrival.ts;
            let tuple = self.mint(arrival);
            items.push((tuple, now));
        }
        let out = self.ingest_tuple_batch(&mut items, sink);
        self.batch_scratch = items;
        out
    }

    fn ingest_tuple_inner(
        &mut self,
        tuple: Tuple,
        now: VTime,
        sink: &mut impl EmitSink,
        defer_credits: bool,
    ) -> IngestOutcome {
        let g = tuple.stream;
        assert!(
            g.index() < self.catalog.len(),
            "arrival stream {g} is not in the engine catalog"
        );
        let Self {
            queries,
            classes,
            stores,
            scratches,
            emit_scratch,
            tries,
            metrics,
            ..
        } = self;
        // 1. Every interested class folds the arrival into its estimation
        //    state under its *local* stream id; a class whose epoch rolls
        //    over rebuilds the priorities of the stores it owns (exactly
        //    its solo rollover, store tuples already carry its tags).
        for cid in 0..classes.len() {
            let Some(class) = classes[cid].as_mut() else {
                continue;
            };
            let Some(k) = class.local_of(g) else { continue };
            let mut rolled = false;
            if let Some(sk) = class.sketches.as_mut() {
                rolled |= sk.observe(k, &tuple.values, now);
            }
            if let Some(fr) = class.partner_freq.as_mut() {
                rolled |= fr.observe(k, &tuple.values, now);
            }
            if !rolled {
                continue;
            }
            metrics.epoch_rollovers += 1;
            if !class.reqs.recompute_on_epoch {
                continue;
            }
            // The rebuild reads produced counts: land any credits still
            // pending from earlier arrivals of a batch first (no-op on the
            // per-arrival path, whose scratches are always drained).
            flush_credit_stores(stores, scratches, classes);
            let class = classes[cid].as_mut().expect("class observed above");
            let QueryClass {
                query,
                policy,
                sketches,
                partner_freq,
                rng,
                store_of,
                ..
            } = class;
            let grouped = policy.groupable_estimate();
            for &si in store_of.iter() {
                let entry = stores[si].as_mut().expect("class store is live");
                if entry.users.first() != Some(&cid) {
                    continue;
                }
                if grouped {
                    // One estimation-kernel run per distinct join key,
                    // fanned out to every slot holding that key
                    // (DESIGN.md §16) — same grouped walk as the solo
                    // engine's rollover.
                    entry.store.rebuild_priorities_grouped(|t, produced, shared| {
                        let mut ctx = PriorityCtx {
                            query,
                            sketches: sketches.as_mut(),
                            partner_freq: partner_freq.as_ref(),
                            now,
                            rng,
                            event_time: false,
                        };
                        let estimate =
                            shared.unwrap_or_else(|| policy.window_estimate(&mut ctx, t));
                        let (score, state) =
                            policy.window_priority_from_estimate(&mut ctx, t, produced, estimate);
                        (clamp_score(score), state, estimate)
                    });
                } else {
                    entry.store.rebuild_priorities(|t, produced| {
                        let mut ctx = PriorityCtx {
                            query,
                            sketches: sketches.as_mut(),
                            partner_freq: partner_freq.as_ref(),
                            now,
                            rng,
                            event_time: false,
                        };
                        let (score, state) =
                            policy.window_priority_with_state(&mut ctx, t, produced);
                        (clamp_score(score), state)
                    });
                }
            }
        }
        // 2. Expire every live store. Expirations always proceed
        //    oldest-first, so expiring a store between its owner's events
        //    changes only the batching of removals, never their sequence —
        //    owner-solo equivalence is preserved.
        for entry in stores.iter_mut().flatten() {
            metrics.expired += entry.store.expire(now).len() as u64;
        }
        // 3. Probe every interested class through the merged trie, before
        //    any insertion (the paper's operator probes partner windows
        //    only). Shared prefixes are enumerated once.
        let produced = {
            let entries: &[Option<StoreEntry>] = stores;
            let mut ctx = ProbeCtx {
                entries,
                classes,
                queries,
                scratches,
                emit_scratch,
                sink,
                tuple: &tuple,
                path: Vec::with_capacity(4),
                produced: 0,
            };
            if let Some(roots) = tries.get(g.index()) {
                for node in roots {
                    ctx.walk(node);
                }
            }
            ctx.produced
        };
        metrics.total_output += produced;
        metrics.processed += 1;
        // 4. Apply produced-output credits: one coalesced heap update per
        //    touched slot (see `flush_credit_stores`). Batched arrivals
        //    leave them pending instead, so a slot matched by many batch
        //    members still costs one update.
        if !defer_credits {
            flush_credit_stores(stores, scratches, classes);
        }
        // 5. Store the arrival once per (stream, window) store, scored and
        //    tagged by the store's owner; shed if full. A full store evicts
        //    by priority, so the batched path lands pending refreshes
        //    first to pick the same victim the per-arrival replay would.
        if defer_credits
            && stores.iter().flatten().any(|e| {
                e.gstream == g && e.store.len() >= e.store.capacity()
            })
        {
            flush_credit_stores(stores, scratches, classes);
        }
        let mut stored = false;
        let mut shed = 0u64;
        for (si, slot) in stores.iter_mut().enumerate() {
            let Some(entry) = slot.as_mut() else {
                continue;
            };
            if entry.gstream != g {
                continue;
            }
            let owner = entry.users[0];
            let class = classes[owner].as_mut().expect("owner is live");
            let k = class
                .store_of
                .iter()
                .position(|&s| s == si)
                .expect("owner uses its store");
            let mut local = tuple.clone();
            local.stream = StreamId(k);
            let (score, state) = {
                let QueryClass {
                    query,
                    policy,
                    sketches,
                    partner_freq,
                    rng,
                    ..
                } = class;
                let mut ctx = PriorityCtx {
                    query,
                    sketches: sketches.as_mut(),
                    partner_freq: partner_freq.as_ref(),
                    now,
                    rng,
                    event_time: false,
                };
                let (s, st) = policy.window_priority_with_state(&mut ctx, &local, 0);
                (clamp_score(s), st)
            };
            let outcome = entry.store.insert_scored(local, score, state);
            stored |= outcome.slot.is_some();
            if let mstream_window::Eviction::Evicted(_) = outcome.eviction {
                entry.shed += 1;
                metrics.shed_window += 1;
                shed += 1;
            }
        }
        IngestOutcome {
            produced,
            stored,
            shed,
        }
    }

    /// Notes `n` arrivals of global stream `g` processed on another shard,
    /// so tuple-based window expiry here counts every operator-reaching
    /// arrival.
    pub fn note_foreign_arrivals(&mut self, g: StreamId, n: u64) {
        for entry in self.stores.iter_mut().flatten() {
            if entry.gstream == g {
                entry.store.note_arrivals(n);
            }
        }
    }

    /// Rebuilds the per-stream probe tries from the live classes (called
    /// after every registration change; class-id insertion order keeps the
    /// merge deterministic).
    fn rebuild_tries(&mut self) {
        let mut tries: Vec<Vec<TrieNode>> = (0..self.catalog.len()).map(|_| Vec::new()).collect();
        for cid in 0..self.classes.len() {
            let Some(class) = self.classes[cid].as_ref() else {
                continue;
            };
            for k in 0..class.query.n_streams() {
                let g = class.gstream_of[k];
                let steps = canon_steps(class, StreamId(k));
                debug_assert!(!steps.is_empty(), "joins have at least two streams");
                let mut cur: &mut Vec<TrieNode> = &mut tries[g.index()];
                for (j, step) in steps.iter().enumerate() {
                    let pos = match cur.iter().position(|n| {
                        n.store == step.store
                            && n.probe_attr == step.probe_attr
                            && n.drive == step.drive
                            && n.residual == step.residual
                    }) {
                        Some(p) => p,
                        None => {
                            cur.push(TrieNode {
                                store: step.store,
                                probe_attr: step.probe_attr,
                                drive: step.drive,
                                residual: step.residual.clone(),
                                terminals: Vec::new(),
                                children: Vec::new(),
                            });
                            cur.len() - 1
                        }
                    };
                    if j + 1 == steps.len() {
                        cur[pos].terminals.push((cid, StreamId(k)));
                        break;
                    }
                    cur = &mut cur[pos].children;
                }
            }
        }
        self.tries = tries;
    }
}

/// A class plan step canonicalized into path-position space.
struct CanonStep {
    store: usize,
    probe_attr: usize,
    drive: (PathRef, usize),
    residual: Vec<(PathRef, usize, usize)>,
}

/// Rewrites `class`'s probe plan for local origin `k` so that every stream
/// reference becomes a path position — the representation under which
/// structurally matching steps of different queries compare equal.
fn canon_steps(class: &QueryClass, origin: StreamId) -> Vec<CanonStep> {
    let plan = &class.plans[origin.index()];
    let mut pos_of: Vec<Option<PathRef>> = vec![None; class.query.n_streams()];
    pos_of[origin.index()] = Some(PathRef::Origin);
    plan.steps()
        .iter()
        .enumerate()
        .map(|(j, step)| {
            let canon = CanonStep {
                store: class.store_of[step.stream.index()],
                probe_attr: step.probe_attr,
                drive: (
                    pos_of[step.drive_stream.index()].expect("drive stream bound before use"),
                    step.drive_attr,
                ),
                residual: step
                    .residual
                    .iter()
                    .map(|&(bs, ba, ca)| {
                        (
                            pos_of[bs.index()].expect("residual stream bound before use"),
                            ba,
                            ca,
                        )
                    })
                    .collect(),
            };
            pos_of[step.stream.index()] = Some(PathRef::Depth(j));
            canon
        })
        .collect()
}

/// Constructs one query class (shared by build-time registration and
/// runtime [`MultiQueryEngine::add_query`]).
fn make_class(
    query: JoinQuery,
    members: Vec<QueryId>,
    gstream_of: Vec<StreamId>,
    store_of: Vec<usize>,
    policy: Box<dyn ShedPolicy>,
    config: &EngineConfig,
) -> Result<QueryClass, BuildError> {
    let reqs = policy.requirements();
    let epoch = if reqs.sketches || reqs.partner_freq {
        Some(match config.epoch {
            Some(e) => e,
            None => default_epoch(&query)?,
        })
    } else {
        None
    };
    let mut sketches = reqs.sketches.then(|| {
        TumblingSketches::new(&query, config.bank, epoch.expect("resolved above"))
    });
    if let (Some(on), Some(s)) = (config.score_cache, sketches.as_mut()) {
        s.set_score_cache(on);
    }
    let partner_freq = reqs
        .partner_freq
        .then(|| TumblingFreq::new(&query, epoch.expect("resolved above")));
    Ok(QueryClass {
        plans: ProbePlan::all(&query),
        query,
        members,
        policy,
        reqs,
        sketches,
        partner_freq,
        rng: StdRng::seed_from_u64(config.seed),
        gstream_of,
        store_of,
    })
}

/// The trie walk state: one depth-first enumeration over a global stream's
/// merged probe trie, shared by every interested class.
struct ProbeCtx<'a, S: EmitSink> {
    entries: &'a [Option<StoreEntry>],
    classes: &'a [Option<QueryClass>],
    queries: &'a mut [Option<QueryState>],
    scratches: &'a mut [ProducedScratch],
    emit_scratch: &'a mut [Vec<Option<Slot>>],
    sink: &'a mut S,
    /// The arriving tuple (global stream tag; only values/ts/seq are read).
    tuple: &'a Tuple,
    /// `(slot, store index)` bound at each trie depth.
    path: Vec<(Slot, usize)>,
    produced: u64,
}

impl<'a, S: EmitSink> ProbeCtx<'a, S> {
    /// Resolves a path-position attribute reference against the current
    /// path.
    fn value_at(&self, r: PathRef, attr: usize) -> Value {
        match r {
            PathRef::Origin => self.tuple.values[attr],
            PathRef::Depth(j) => {
                let (slot, si) = self.path[j];
                self.entries[si]
                    .as_ref()
                    .expect("path store is live")
                    .store
                    .tuple(slot)
                    .expect("bound slot is live")
                    .values[attr]
            }
        }
    }

    /// Depth-first enumeration: candidates of this node's store, residual
    /// filtering, terminal emissions, then children — which is exactly the
    /// recursive kernel's order for each individual class, so per-query
    /// emission order matches that query's solo run.
    fn walk(&mut self, node: &TrieNode) {
        let entries = self.entries;
        let drive = self.value_at(node.drive.0, node.drive.1);
        let res: Vec<(Value, usize)> = node
            .residual
            .iter()
            .map(|&(r, ba, ca)| (self.value_at(r, ba), ca))
            .collect();
        let store = &entries[node.store].as_ref().expect("trie store is live").store;
        for slot in store.probe(node.probe_attr, drive).iter() {
            if !res.is_empty() {
                let t = store.tuple(slot).expect("probed slot is live");
                if !res.iter().all(|&(v, ca)| t.values[ca] == v) {
                    continue;
                }
            }
            self.path.push((slot, node.store));
            for &(cid, origin_local) in &node.terminals {
                self.emit(cid, origin_local);
            }
            for child in &node.children {
                self.walk(child);
            }
            self.path.pop();
        }
    }

    /// Emits one completed match of class `cid` to every member query, and
    /// accrues produced credits on the stores the class owns.
    fn emit(&mut self, cid: usize, origin_local: StreamId) {
        let class = self.classes[cid].as_ref().expect("terminal class is live");
        let plan = &class.plans[origin_local.index()];
        let scratch = &mut self.emit_scratch[cid];
        scratch.clear();
        scratch.resize(class.query.n_streams(), None);
        for (j, step) in plan.steps().iter().enumerate() {
            scratch[step.stream.index()] = Some(self.path[j].0);
        }
        if class.reqs.produced_counters {
            for &(slot, si) in self.path.iter() {
                let owner = self.entries[si].as_ref().expect("path store is live").users[0];
                if owner == cid {
                    self.scratches[si].add(slot, 1);
                }
            }
        }
        let lookup = MappedStores {
            entries: self.entries,
            map: &class.store_of,
        };
        let bindings = Bindings::from_parts(origin_local, self.tuple, scratch, &lookup);
        for &qid in &class.members {
            if let Some(q) = self.queries[qid.index()].as_mut() {
                q.produced += 1;
            }
            self.sink.emit(qid, &bindings);
            self.produced += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::ingest::{CountSink, QueryRowsSink, VecSink};
    use mstream_shed_policies::Fifo;
    use mstream_types::{Row, StreamSchema};

    fn pair_query(l: &str, r: &str, secs: u64) -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new(l, &["k", "v"]));
        c.add_stream(StreamSchema::new(r, &["k", "v"]));
        JoinQuery::from_names(
            c,
            &[(&format!("{l}.k"), &format!("{r}.k"))],
            WindowSpec::secs(secs),
        )
        .unwrap()
    }

    fn chain_query(a: &str, b: &str, c_name: &str, secs: u64) -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new(a, &["k", "v"]));
        c.add_stream(StreamSchema::new(b, &["k", "v"]));
        c.add_stream(StreamSchema::new(c_name, &["k", "v"]));
        JoinQuery::from_names(
            c,
            &[
                (&format!("{a}.k"), &format!("{b}.k")),
                (&format!("{b}.v"), &format!("{c_name}.k")),
            ],
            WindowSpec::secs(secs),
        )
        .unwrap()
    }

    fn multi(queries: Vec<JoinQuery>, capacity: usize) -> MultiQueryEngine {
        let mut b = EngineBuilder::new_multi()
            .policy(Fifo)
            .capacity_per_window(capacity);
        for q in queries {
            b.register(q).unwrap();
        }
        b.build_multi().unwrap()
    }

    /// A deterministic little trace over streams by name. Keys derive
    /// from the round-robin *cycle* index so they do not correlate with
    /// the stream (a `i % 3` key would be constant per stream whenever
    /// the stream count divides 3).
    fn trace(names: &[&str], len: u64) -> Vec<(String, Row, VTime)> {
        (0..len)
            .map(|i| {
                let s = names[(i % names.len() as u64) as usize];
                let cycle = i / names.len() as u64;
                let row: Row = vec![Value(cycle % 3), Value(cycle % 5)].into();
                (s.to_string(), row, VTime::from_secs(i))
            })
            .collect()
    }

    fn feed(e: &mut MultiQueryEngine, t: &[(String, Row, VTime)], sink: &mut QueryRowsSink) {
        for (name, row, ts) in t {
            let g = e.stream_id(name).expect("stream registered");
            e.ingest(Arrival::new(g, row.clone(), *ts), sink);
        }
    }

    /// Projects an emitted row to comparable form (stream tags differ
    /// between the shared and the solo engines by design).
    fn key_rows(rows: &[Vec<Tuple>]) -> Vec<Vec<(VTime, Row)>> {
        rows.iter()
            .map(|r| r.iter().map(|t| (t.ts, t.values.clone())).collect())
            .collect()
    }

    fn solo_rows(query: JoinQuery, t: &[(String, Row, VTime)], capacity: usize) -> Vec<Vec<Tuple>> {
        let mut e = EngineBuilder::new(query)
            .policy(Fifo)
            .capacity_per_window(capacity)
            .build()
            .unwrap();
        let mut sink = VecSink::default();
        for (name, row, ts) in t {
            let Ok(attr) = e.query().catalog().resolve(&format!("{name}.k")) else {
                continue; // stream not in this query
            };
            e.ingest(Arrival::new(attr.stream, row.clone(), *ts), &mut sink);
        }
        sink.rows
    }

    #[test]
    fn duplicate_queries_collapse_into_one_class_and_fan_out() {
        let mut e = multi(vec![pair_query("L", "R", 60), pair_query("L", "R", 60)], 64);
        assert_eq!(e.n_queries(), 2);
        assert_eq!(e.n_classes(), 1, "duplicates share one class");
        assert_eq!(e.n_stores(), 2, "one store per stream, not per query");
        let t = trace(&["L", "R"], 40);
        let mut sink = QueryRowsSink::default();
        feed(&mut e, &t, &mut sink);
        assert!(!sink.rows[0].is_empty());
        assert_eq!(
            key_rows(&sink.rows[0]),
            key_rows(&sink.rows[1]),
            "both duplicates see identical results"
        );
        let s0 = e.query_stats(QueryId(0)).unwrap();
        let s1 = e.query_stats(QueryId(1)).unwrap();
        assert_eq!(s0, s1);
        assert_eq!(s0.produced, sink.rows[0].len() as u64);
    }

    #[test]
    fn full_memory_matches_each_solo_run() {
        // Duplicate + overlapping-subgraph + disjoint mix.
        let queries = vec![
            pair_query("L", "R", 60),
            pair_query("L", "R", 60),
            chain_query("L", "R", "X", 60),
            pair_query("A", "B", 60),
        ];
        let mut e = multi(queries.clone(), 100_000);
        let t = trace(&["L", "R", "X", "A", "B"], 120);
        let mut sink = QueryRowsSink::default();
        feed(&mut e, &t, &mut sink);
        for (i, q) in queries.into_iter().enumerate() {
            let solo = solo_rows(q, &t, 100_000);
            assert_eq!(
                key_rows(&sink.rows[i]),
                key_rows(&solo),
                "query {i} diverged from its solo run"
            );
        }
    }

    #[test]
    fn overlapping_subgraphs_share_stores() {
        let e = multi(
            vec![pair_query("L", "R", 60), chain_query("L", "R", "X", 60)],
            64,
        );
        assert_eq!(e.n_classes(), 2);
        // L and R are shared; only X is extra: 3 stores, not 5.
        assert_eq!(e.n_stores(), 3);
    }

    #[test]
    fn different_windows_get_distinct_stores() {
        let e = multi(vec![pair_query("L", "R", 60), pair_query("L", "R", 120)], 64);
        assert_eq!(e.n_classes(), 2);
        assert_eq!(e.n_stores(), 4, "window is part of the sharing key");
    }

    #[test]
    fn add_query_sees_only_the_suffix() {
        let mut e = multi(vec![pair_query("L", "R", 60)], 1 << 20);
        let t = trace(&["L", "R"], 60);
        let (head, tail) = t.split_at(30);
        let mut sink = QueryRowsSink::default();
        feed(&mut e, head, &mut sink);
        let q1 = e.add_query(pair_query("L", "R", 60)).unwrap();
        assert_eq!(q1, QueryId(1));
        assert_eq!(e.n_classes(), 2, "runtime additions never share state");
        feed(&mut e, tail, &mut sink);
        // The late query matches a solo run over the suffix only.
        let solo = solo_rows(pair_query("L", "R", 60), tail, 1 << 20);
        assert_eq!(key_rows(&sink.rows[1]), key_rows(&solo));
        // And the original query is unperturbed by the registration.
        let full = solo_rows(pair_query("L", "R", 60), &t, 1 << 20);
        assert_eq!(key_rows(&sink.rows[0]), key_rows(&full));
    }

    #[test]
    fn remove_query_frees_stores_and_stops_emitting() {
        let mut e = multi(vec![pair_query("L", "R", 60), pair_query("A", "B", 60)], 64);
        assert_eq!(e.n_stores(), 4);
        let t = trace(&["L", "R", "A", "B"], 40);
        let mut sink = QueryRowsSink::default();
        feed(&mut e, &t, &mut sink);
        assert!(e.remove_query(QueryId(1)));
        assert!(!e.remove_query(QueryId(1)), "double removal is a no-op");
        assert_eq!(e.n_stores(), 2, "sole-user stores freed");
        assert_eq!(e.n_queries(), 1);
        let before = sink.rows[1].len();
        feed(&mut e, &t, &mut sink);
        assert_eq!(sink.rows[1].len(), before, "removed query emits nothing");
        assert!(sink.rows[0].len() > 0);
        assert!(e.query_stats(QueryId(1)).is_none());
    }

    #[test]
    fn remove_query_keeps_cache_counters_monotone() {
        // Engine-level cache statistics live in the per-class sketch
        // banks; dismantling a class must fold its counts into the retired
        // baseline, never lose them.
        let mut b = EngineBuilder::new_multi()
            .policy(mstream_shed_policies::MSketch)
            .capacity_per_window(16);
        b.register(pair_query("L", "R", 30)).unwrap();
        b.register(pair_query("A", "B", 30)).unwrap();
        let mut e = b.build_multi().unwrap();
        let t = trace(&["L", "R", "A", "B"], 200);
        let mut sink = QueryRowsSink::default();
        feed(&mut e, &t, &mut sink);
        let before = e.metrics().clone();
        let activity = before.score_cache_hits + before.score_cache_misses;
        assert!(activity > 0, "sketch scoring must exercise the cache");
        assert!(e.remove_query(QueryId(1)));
        let after = e.metrics().clone();
        assert!(
            after.score_cache_hits >= before.score_cache_hits
                && after.score_cache_misses >= before.score_cache_misses
                && after.sign_cache_hits >= before.sign_cache_hits
                && after.sign_cache_misses >= before.sign_cache_misses,
            "cache counters went backwards across remove_query:\n{before:?}\n{after:?}"
        );
        // The survivor keeps counting on top of the retired baseline.
        feed(&mut e, &t, &mut sink);
        let later = e.metrics().clone();
        assert!(
            later.score_cache_hits + later.score_cache_misses
                >= after.score_cache_hits + after.score_cache_misses,
            "counters stay monotone after churn"
        );
    }

    #[test]
    fn shared_store_removal_keeps_survivors() {
        let mut e = multi(
            vec![pair_query("L", "R", 60), chain_query("L", "R", "X", 60)],
            1 << 20,
        );
        let t = trace(&["L", "R", "X"], 40);
        let mut sink = QueryRowsSink::default();
        feed(&mut e, &t.clone()[..20], &mut sink);
        assert!(e.remove_query(QueryId(0)));
        assert_eq!(e.n_stores(), 3, "shared stores survive, owner hands off");
        feed(&mut e, &t[20..], &mut sink);
        let solo = solo_rows(chain_query("L", "R", "X", 60), &t, 1 << 20);
        assert_eq!(key_rows(&sink.rows[1]), key_rows(&solo));
    }

    #[test]
    fn shed_output_is_a_sub_multiset_of_exact() {
        let mut tight = multi(vec![pair_query("L", "R", 60)], 2);
        let mut exact = multi(vec![pair_query("L", "R", 60)], 1 << 20);
        let t = trace(&["L", "R"], 80);
        let (mut s1, mut s2) = (QueryRowsSink::default(), QueryRowsSink::default());
        feed(&mut tight, &t, &mut s1);
        feed(&mut exact, &t, &mut s2);
        assert!(tight.metrics().shed_window > 0, "capacity 2 must shed");
        let mut exact_keys = key_rows(&s2.rows[0]);
        for row in key_rows(&s1.rows[0]) {
            let pos = exact_keys
                .iter()
                .position(|r| *r == row)
                .expect("shed output must be a sub-multiset of exact");
            exact_keys.swap_remove(pos);
        }
        let stats = tight.query_stats(QueryId(0)).unwrap();
        assert!(stats.shed > 0);
    }

    #[test]
    fn schema_mismatch_on_add_is_rejected_and_rolled_back() {
        let mut e = multi(vec![pair_query("L", "R", 60)], 64);
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k", "v", "w"]));
        c.add_stream(StreamSchema::new("Z", &["k", "v"]));
        let clash = JoinQuery::from_names(c, &[("L.k", "Z.k")], WindowSpec::secs(60)).unwrap();
        assert!(matches!(
            e.add_query(clash),
            Err(BuildError::SchemaMismatch { .. })
        ));
        assert_eq!(e.catalog().len(), 2, "failed registration leaves no trace");
        assert_eq!(e.n_queries(), 1);
        let mut sink = CountSink::default();
        let g = e.stream_id("L").unwrap();
        e.ingest(Arrival::new(g, vec![Value(1), Value(2)], VTime::ZERO), &mut sink);
    }
}
