//! Hash-partitioned parallel execution of the shedding join.
//!
//! [`ShardedJoinEngine`] analyzes the query's equi-predicate graph
//! ([`JoinQuery::partitioning`]): when every predicate lies in one
//! attribute-equivalence class, arrivals can be hash-partitioned by that
//! attribute's value across `S` worker threads, each owning an independent
//! [`ShedJoinEngine`] with `1/S` of the memory budget — two tuples with
//! different partition keys can never join, so the union of the per-shard
//! outputs equals the single-engine output exactly (at full memory it is
//! byte-identical; under shedding each shard shrinks its own partition).
//! Queries that join through more than one attribute class degrade to one
//! shard, with the reason surfaced on the [`RunReport`].
//!
//! ## Tuple-based windows
//!
//! Tuple-count windows expire by *arrivals seen on the stream*, which a
//! shard only partially observes. The coordinator therefore broadcasts an
//! arrival *tick* to every non-home shard
//! ([`ShedJoinEngine::note_foreign_arrival`]); channel FIFO ordering
//! guarantees each worker sees the tick before any later tuple, so expiry
//! boundaries match the single-engine run exactly. Time-based windows need
//! no ticks (expiry depends only on timestamps).
//!
//! ## Determinism
//!
//! The coordinator mints globally-ordered sequence numbers, routes by a
//! fixed hash of the key value, and derives each worker's engine seed from
//! the master seed — so a run is a pure function of (query, policy,
//! config, trace). With [`Backpressure::Block`] (the default) nothing is
//! ever dropped at the channels and replays are exact;
//! [`Backpressure::Shed`] instead drops batches when a worker falls
//! behind, counting them in [`ShardedRunReport::shed_channel`] (live-mode
//! semantics: tuple-window accounting then drifts by the dropped ticks).

use crate::engine::{EngineConfig, MemoryMode, ShedJoinEngine};
use crate::ingest::{Arrival, CountSink, VecSink};
use crate::report::{EngineMetrics, RunReport};
use crossbeam::channel::{bounded, Receiver, Sender};
use mstream_shed_policies::ShedPolicy;
use mstream_types::{
    Error, JoinQuery, Partitioning, Result, SeqNo, StreamId, Tuple, VDur, VTime, WindowSpec,
};
use mstream_workload::Trace;
use std::thread::JoinHandle;
use std::time::Instant;

/// What the coordinator does when a worker's channel is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the worker (lossless; keeps replays exact).
    #[default]
    Block,
    /// Drop the batch and count it (live-mode load shedding at the
    /// source, as in the paper's overloaded-operator regime).
    Shed,
}

/// Tuning for sharded execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Requested worker count (the engine may degrade to 1; see
    /// [`ShardedJoinEngine::degraded`]).
    pub shards: usize,
    /// Bounded channel depth per worker, in *batches*.
    pub channel_capacity: usize,
    /// Arrivals buffered per worker before a batch is sent.
    pub batch_size: usize,
    /// Full-channel behavior.
    pub backpressure: Backpressure,
    /// Collect every join result row (owned tuples in stream order) for
    /// the merged report. Needed for differential testing; off for
    /// throughput runs.
    pub collect_rows: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            channel_capacity: 64,
            batch_size: 64,
            backpressure: Backpressure::Block,
            collect_rows: false,
        }
    }
}

/// The merged outcome of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardedRunReport {
    /// Combined counters and run metadata (per-shard metrics summed;
    /// `shards` / `degraded` describe how the run actually executed).
    pub combined: RunReport,
    /// Each worker's own counters, indexed by shard.
    pub per_shard: Vec<EngineMetrics>,
    /// Tuples dropped at the shard channels under [`Backpressure::Shed`].
    pub shed_channel: u64,
    /// Every join result row (tuples in stream order), merged across
    /// shards and sorted by per-stream sequence numbers, when
    /// [`ShardConfig::collect_rows`] was set.
    pub rows: Option<Vec<Vec<Tuple>>>,
}

/// One message element on a worker channel.
enum Item {
    /// A tuple routed to this shard for processing.
    Tuple(Tuple),
    /// An arrival on `StreamId` that another shard is processing (advances
    /// tuple-window expiry here).
    Tick(StreamId),
}

struct WorkerOut {
    metrics: EngineMetrics,
    rows: Option<Vec<Vec<Tuple>>>,
    end_time: VTime,
}

/// A shard-parallel front for [`ShedJoinEngine`]: route arrivals with
/// [`ShardedJoinEngine::ingest`], then collect the merged report with
/// [`ShardedJoinEngine::finish`].
pub struct ShardedJoinEngine {
    shards: usize,
    degraded: Option<String>,
    key_attrs: Option<Vec<usize>>,
    needs_ticks: bool,
    batch_size: usize,
    backpressure: Backpressure,
    collect_rows: bool,
    senders: Vec<Sender<Vec<Item>>>,
    buffers: Vec<Vec<Item>>,
    handles: Vec<JoinHandle<WorkerOut>>,
    next_seq: SeqNo,
    shed_channel: u64,
    started: Instant,
}

impl ShardedJoinEngine {
    /// Spawns the worker threads for `query` with per-worker copies of
    /// `policy`. `config.memory` is the *total* budget; each worker gets
    /// `1/S` of it. Prefer [`crate::EngineBuilder::build_sharded`].
    pub fn new(
        query: JoinQuery,
        policy: Box<dyn ShedPolicy>,
        config: EngineConfig,
        shard: ShardConfig,
    ) -> Result<Self> {
        if shard.shards == 0 {
            return Err(Error::InvalidConfig("shard count must be >= 1".into()));
        }
        if shard.batch_size == 0 || shard.channel_capacity == 0 {
            return Err(Error::InvalidConfig(
                "shard batch size and channel capacity must be >= 1".into(),
            ));
        }
        let (shards, degraded, key_attrs) = match (shard.shards, query.partitioning()) {
            (1, p) => (1, None, p.key_attrs().map(<[usize]>::to_vec)),
            (s, Partitioning::ByKey { key_attrs }) => (s, None, Some(key_attrs)),
            (_, Partitioning::Single { reason }) => (1, Some(reason), None),
        };
        let needs_ticks = shards > 1
            && query
                .windows()
                .iter()
                .any(|w| matches!(w, WindowSpec::Tuples(_)));
        let memory = split_memory(&config.memory, shards);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut worker_config = config.clone();
            worker_config.memory = memory.clone();
            // A 1-shard run keeps the master seed so it is bit-identical to
            // the single-threaded engine; multi-shard workers get
            // independent derived streams.
            if shards > 1 {
                worker_config.seed = splitmix64(config.seed ^ (i as u64 + 1));
            }
            let engine = ShedJoinEngine::new(query.clone(), policy.clone(), worker_config)?;
            let (tx, rx) = bounded(shard.channel_capacity);
            let collect = shard.collect_rows;
            handles.push(std::thread::spawn(move || worker_loop(engine, rx, collect)));
            senders.push(tx);
        }
        Ok(ShardedJoinEngine {
            shards,
            degraded,
            key_attrs,
            needs_ticks,
            batch_size: shard.batch_size,
            backpressure: shard.backpressure,
            collect_rows: shard.collect_rows,
            senders,
            buffers: (0..shards).map(|_| Vec::new()).collect(),
            handles,
            next_seq: SeqNo(0),
            shed_channel: 0,
            started: Instant::now(),
        })
    }

    /// Workers the engine actually runs on (1 when the query degraded).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Why a multi-shard request fell back to one shard, if it did.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Routes one arrival to its home shard (and, for tuple-based windows,
    /// broadcasts an expiry tick to the others). Channel errors surface at
    /// [`ShardedJoinEngine::finish`], where the worker's panic is
    /// reported.
    pub fn ingest(&mut self, arrival: Arrival) {
        let stream = arrival.stream;
        let seq = self.next_seq;
        self.next_seq = seq.next();
        let tuple = Tuple::new(stream, arrival.ts, seq, arrival.values);
        let home = self.route(&tuple);
        self.push(home, Item::Tuple(tuple));
        if self.needs_ticks {
            for i in (0..self.shards).filter(|&i| i != home) {
                self.push(i, Item::Tick(stream));
            }
        }
    }

    fn route(&self, tuple: &Tuple) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let key_attrs = self.key_attrs.as_ref().expect("multi-shard implies keys");
        let key = tuple.values[key_attrs[tuple.stream.index()]].raw();
        (splitmix64(key) % self.shards as u64) as usize
    }

    fn push(&mut self, shard: usize, item: Item) {
        self.buffers[shard].push(item);
        if self.buffers[shard].len() >= self.batch_size {
            self.flush(shard);
        }
    }

    fn flush(&mut self, shard: usize) {
        let batch = std::mem::take(&mut self.buffers[shard]);
        if batch.is_empty() {
            return;
        }
        match self.backpressure {
            Backpressure::Block => {
                if self.senders[shard].send(batch).is_err() {
                    // The worker died; its panic is reported by `finish`.
                }
            }
            Backpressure::Shed => {
                if let Err(err) = self.senders[shard].try_send(batch) {
                    let dropped = err
                        .0
                        .iter()
                        .filter(|item| matches!(item, Item::Tuple(_)))
                        .count();
                    self.shed_channel += dropped as u64;
                }
            }
        }
    }

    /// Flushes the remaining batches, waits for every worker, and merges
    /// their metrics (and rows, when collected) into one report.
    ///
    /// Fails with [`Error::Shard`] if any worker panicked — under the
    /// `audit` feature workers check engine invariants after every tuple.
    pub fn finish(mut self) -> Result<ShardedRunReport> {
        for shard in 0..self.shards {
            self.flush(shard);
        }
        self.senders.clear(); // Dropping the senders ends the worker loops.
        let handles = std::mem::take(&mut self.handles);
        let mut combined = EngineMetrics::default();
        let mut per_shard = Vec::with_capacity(self.shards);
        let mut rows = self.collect_rows.then(Vec::new);
        let mut end_time = VTime::ZERO;
        let mut failure: Option<Error> = None;
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(out) => {
                    combined.merge(&out.metrics);
                    per_shard.push(out.metrics);
                    if let (Some(all), Some(r)) = (rows.as_mut(), out.rows) {
                        all.extend(r);
                    }
                    end_time = end_time.max(out.end_time);
                }
                Err(panic) => {
                    failure.get_or_insert(Error::Shard(format!(
                        "worker {i} panicked: {}",
                        panic_message(&panic)
                    )));
                }
            }
        }
        if let Some(err) = failure {
            return Err(err);
        }
        if let Some(all) = rows.as_mut() {
            // Seq-stamped merge: per-stream arrival sequence numbers are
            // global (coordinator-minted), so this canonical order is
            // directly comparable across shard counts and to the
            // single-engine oracle.
            all.sort_by_key(|row| row.iter().map(|t| t.seq).collect::<Vec<_>>());
        }
        let combined = RunReport {
            metrics: combined,
            end_time,
            wall_time: self.started.elapsed(),
            shards: self.shards,
            degraded: self.degraded.clone(),
            ..Default::default()
        };
        Ok(ShardedRunReport {
            combined,
            per_shard,
            shed_channel: self.shed_channel,
            rows,
        })
    }

    /// Convenience driver: feeds `trace` at `arrival_rate` tuples/second
    /// on the same virtual-time schedule as [`crate::sim::run_trace`],
    /// then finishes.
    pub fn run_trace(mut self, trace: &Trace, arrival_rate: f64) -> Result<ShardedRunReport> {
        let dt = VDur::from_rate(arrival_rate);
        for (i, item) in trace.items.iter().enumerate() {
            let now = VTime::ZERO + dt.mul(i as u64);
            self.ingest(Arrival::new(item.stream, item.values.clone(), now));
        }
        self.finish()
    }
}

fn worker_loop(mut engine: ShedJoinEngine, rx: Receiver<Vec<Item>>, collect_rows: bool) -> WorkerOut {
    let mut vec_sink = VecSink::default();
    let mut count_sink = CountSink::default();
    let mut end_time = VTime::ZERO;
    while let Ok(batch) = rx.recv() {
        for item in batch {
            match item {
                Item::Tick(stream) => engine.note_foreign_arrival(stream),
                Item::Tuple(tuple) => {
                    let now = tuple.ts;
                    end_time = end_time.max(now);
                    if collect_rows {
                        engine.ingest_tuple(tuple, now, &mut vec_sink);
                    } else {
                        engine.ingest_tuple(tuple, now, &mut count_sink);
                    }
                    #[cfg(feature = "audit")]
                    engine.check_invariants();
                }
            }
        }
    }
    WorkerOut {
        metrics: engine.metrics().clone(),
        rows: collect_rows.then_some(vec_sink.rows),
        end_time,
    }
}

/// Splits a total memory budget evenly across `shards` workers (each
/// window keeps at least one slot).
fn split_memory(memory: &MemoryMode, shards: usize) -> MemoryMode {
    if shards <= 1 {
        return memory.clone();
    }
    match memory {
        MemoryMode::PerWindow(c) => MemoryMode::PerWindow((c / shards).max(1)),
        MemoryMode::PerWindowEach(cs) => {
            MemoryMode::PerWindowEach(cs.iter().map(|c| (c / shards).max(1)).collect())
        }
        MemoryMode::GlobalPool(total) => MemoryMode::GlobalPool((total / shards).max(1)),
    }
}

/// SplitMix64: the fixed avalanche hash used for both shard routing and
/// per-worker seed derivation (stable across platforms and runs, unlike
/// `std`'s `RandomState`).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_memory_is_even_with_floor_of_one() {
        assert_eq!(
            split_memory(&MemoryMode::PerWindow(64), 4),
            MemoryMode::PerWindow(16)
        );
        assert_eq!(
            split_memory(&MemoryMode::PerWindow(2), 8),
            MemoryMode::PerWindow(1)
        );
        assert_eq!(
            split_memory(&MemoryMode::PerWindowEach(vec![8, 4]), 2),
            MemoryMode::PerWindowEach(vec![4, 2])
        );
        assert_eq!(
            split_memory(&MemoryMode::GlobalPool(100), 3),
            MemoryMode::GlobalPool(33)
        );
        // A single shard keeps the budget untouched.
        assert_eq!(
            split_memory(&MemoryMode::GlobalPool(100), 1),
            MemoryMode::GlobalPool(100)
        );
    }

    #[test]
    fn splitmix_spreads_small_domains() {
        // Join keys live in tiny discretized domains; the router must not
        // collapse them onto one shard.
        let shards = 4u64;
        let hit: std::collections::HashSet<u64> =
            (0..16u64).map(|v| splitmix64(v) % shards).collect();
        assert!(hit.len() >= 3, "16 keys should reach >= 3 of 4 shards");
    }

    #[test]
    fn splitmix_is_stable() {
        // Routing (and thus sharded replay) depends on these exact values.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
