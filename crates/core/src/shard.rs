//! Hash-partitioned parallel execution of the shedding join.
//!
//! [`ShardedJoinEngine`] analyzes the query's equi-predicate graph
//! ([`JoinQuery::partitioning`]): when every predicate lies in one
//! attribute-equivalence class, arrivals can be hash-partitioned by that
//! attribute's value across `S` worker threads, each owning an independent
//! [`ShedJoinEngine`] with `1/S` of the memory budget — two tuples with
//! different partition keys can never join, so the union of the per-shard
//! outputs equals the single-engine output exactly (at full memory it is
//! byte-identical; under shedding each shard shrinks its own partition).
//! Queries that join through more than one attribute class degrade to one
//! shard, with the reason surfaced on the [`RunReport`].
//!
//! ## Data plane
//!
//! The coordinator buffers routed tuples into per-shard batches
//! (`Vec<Item>`) and sends full batches over bounded channels. Batch
//! buffers are *recycled*: each worker drains a batch in place and sends
//! the empty allocation back on a per-worker return channel, so
//! steady-state ingest allocates nothing — combined with the inline
//! [`mstream_types::Row`] tuple payload, routing a tuple of arity ≤
//! [`mstream_types::ROW_INLINE`] touches the heap zero times.
//!
//! ## Tuple-based windows
//!
//! Tuple-count windows expire by *arrivals seen on the stream*, which a
//! shard only partially observes. The coordinator accumulates the arrivals
//! routed elsewhere as per-shard pending tick counters and flushes them as
//! one coalesced [`Item::Ticks`] summary immediately before the next tuple
//! delivered to that shard (O(1) channel items per batch instead of O(S)
//! per arrival). Ticks only advance each stream's arrival counter
//! ([`ShedJoinEngine::note_foreign_arrivals`]) and expiry is evaluated
//! when the *next stored tuple* is processed, so a summary applied just
//! before that tuple is observationally identical to the per-arrival
//! interleaving — expiry boundaries match the single-engine run exactly.
//! Time-based windows need no ticks (expiry depends only on timestamps).
//!
//! ## Skew-adaptive routing (DESIGN.md §12)
//!
//! Hash routing pins every hot join key to one worker, so a Zipf-skewed
//! key distribution saturates one shard while the rest idle. The
//! coordinator therefore runs an online heavy-hitter detector (a
//! space-saving tracker over routed keys, sampled at a fixed arrival
//! cadence with promote/demote hysteresis). Arrivals carrying a *hot* key
//! fan their **store side** to every shard ([`Item::Replica`]: observe +
//! expire + store, no probe, no `processed` credit) while their **probe
//! side** goes to exactly one shard — round-robin once the key's *fan-out
//! gate* opens, the hash-home shard until then. The gate guards exactness:
//! a shard other than the hash home is missing the key's pre-promotion
//! tuples, so probes stay pinned to the home until every pre-promotion
//! tuple is provably expired (time windows: `now ≥ promote_ts + p`;
//! tuple windows: `c + 1` further arrivals on the stream since the
//! promotion snapshot). Each arrival gets exactly one probing (FULL)
//! delivery, so produced counts and join results are never duplicated, and
//! demotion is immediately safe (the home shard received every replica).
//!
//! ## Broadcast execution mode
//!
//! Queries whose equi-predicate graph is *not* key-partitionable
//! previously degraded to one shard. With [`ShardConfig::broadcast`] (the
//! default) they instead run replicated: the **dominant** stream (most
//! incident predicates, ties to the lowest index) is partitioned
//! round-robin, and every other stream is broadcast — stored on all
//! shards, probed on all shards ([`Item::ProbeReplica`] on the non-home
//! copies). Every result combination contains exactly one dominant-stream
//! tuple, resident on exactly one shard, so each combination is emitted
//! exactly once. Broadcast streams keep their *full* window allocation on
//! every shard (memory × S for those streams — the price of sharing the
//! build side), while the dominant stream's window divides by S.
//!
//! ## Determinism
//!
//! The coordinator mints globally-ordered sequence numbers, routes by a
//! fixed hash of the key value, and derives each worker's engine seed from
//! the master seed — so a run is a pure function of (query, policy,
//! config, trace); the heavy-hitter tracker and round-robin cursors are
//! deterministic too (`Vec` scans only, no hash-order iteration). With
//! [`Backpressure::Block`] (the default) nothing is ever dropped at the
//! channels and replays are exact; [`Backpressure::Shed`] instead drops
//! batches when a worker falls behind, counting them in
//! [`ShardedRunReport::shed_channel`]. A dropped batch's coalesced tick
//! summaries are re-queued into the pending counters (tick counts commute,
//! and the dropped batch is always the newest traffic for that shard), so
//! tuple-window accounting only drifts by the dropped *tuples* themselves
//! — live-mode semantics matching the single engine's queue shedding,
//! where a dropped tuple never ages any window. Dropped replica deliveries
//! re-queue as ticks for their shard (the arrival is still processed by
//! its FULL delivery elsewhere), so expiry counters never skew.

use crate::engine::{BatchItem, EngineConfig, EventTimeFrontEnd, MemoryMode, ShedJoinEngine};
use crate::ingest::{Arrival, CountSink, IngestRole, VecSink};
use crate::report::{EngineMetrics, RunReport};
use crossbeam::channel::{bounded, Receiver, Sender};
use mstream_shed_policies::ShedPolicy;
use mstream_sketch::{BankConfig, SpaceSaving};
use mstream_types::{
    Error, JoinQuery, Partitioning, Result, SeqNo, StreamId, Tuple, VDur, VTime, WindowSpec,
};
use mstream_workload::Trace;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Instant;

/// What the coordinator does when a worker's channel is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the worker (lossless; keeps replays exact).
    #[default]
    Block,
    /// Drop the batch and count it (live-mode load shedding at the
    /// source, as in the paper's overloaded-operator regime).
    Shed,
}

/// Online heavy-hitter detection knobs for skew-adaptive routing (active
/// only for key-partitioned runs with more than one shard).
///
/// Thresholds are integer **permille** of the tracker's observed total
/// (integer math keeps routing decisions platform-deterministic). `0`
/// resolves the paper-free defaults at construction: promote at
/// `1000 / (2·S)` permille (a key earning more than half a shard's fair
/// share of probe work), demote at half the promote threshold — the
/// promote/demote gap is the hysteresis that keeps the hot set stable
/// between decision epochs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotKeyConfig {
    /// Master switch; `false` restores pure hash routing.
    pub enabled: bool,
    /// Concurrently-hot key slots (keys beyond this stay hash-routed).
    pub capacity: usize,
    /// Space-saving counters in the detector. Detection resolution is
    /// `total / tracker_capacity`: a key share below
    /// `1 / tracker_capacity` can never be *certified* hot, so size this
    /// well above `1000 / promote_permille`.
    pub tracker_capacity: usize,
    /// Arrivals between promote/demote decision points (the tracker
    /// accumulates across epochs; this is the decision cadence).
    pub epoch_arrivals: u64,
    /// Promote when a key's *guaranteed* (lower-bound) share reaches this
    /// many permille; `0` = auto (`1000 / (2·S)`).
    pub promote_permille: u32,
    /// Demote when a key's *estimated* (upper-bound) share falls below
    /// this many permille; `0` = auto (half the promote threshold).
    pub demote_permille: u32,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        HotKeyConfig {
            enabled: true,
            capacity: 32,
            tracker_capacity: 256,
            epoch_arrivals: 2048,
            promote_permille: 0,
            demote_permille: 0,
        }
    }
}

/// Tuning for sharded execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Requested worker count (the engine may degrade to 1; see
    /// [`ShardedJoinEngine::degraded`]).
    pub shards: usize,
    /// Bounded channel depth per worker, in *batches*.
    pub channel_capacity: usize,
    /// Arrivals buffered per worker before a batch is sent.
    pub batch_size: usize,
    /// Full-channel behavior.
    pub backpressure: Backpressure,
    /// Collect every join result row (owned tuples in stream order) for
    /// the merged report. Needed for differential testing; off for
    /// throughput runs.
    pub collect_rows: bool,
    /// Diagnostic mode: workers drain and recycle batches without running
    /// the join, isolating the data-plane cost (mint + route + channel
    /// round-trip). Output counters stay zero; used by the `shard_scaling
    /// --route-only` bench to demonstrate allocation-free ingest.
    pub route_only: bool,
    /// Heavy-hitter splitting for key-partitioned queries.
    pub hot_keys: HotKeyConfig,
    /// Run non-key-partitionable queries in broadcast mode at the
    /// requested shard count instead of degrading to one shard.
    pub broadcast: bool,
    /// Feed each routed batch through the engine's batch-amortized ingest
    /// path (`ingest_tuple_batch`: prefetched index lookups, coalesced
    /// heap rescoring) instead of one `ingest_tuple_as` call per item.
    /// Bit-identical either way — the knob exists for differential tests
    /// and A/B benchmarking.
    pub batch_ingest: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            channel_capacity: 64,
            batch_size: 64,
            backpressure: Backpressure::Block,
            collect_rows: false,
            route_only: false,
            hot_keys: HotKeyConfig::default(),
            broadcast: true,
            batch_ingest: true,
        }
    }
}

/// The merged outcome of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardedRunReport {
    /// Combined counters and run metadata (per-shard metrics summed;
    /// `shards` / `degraded` describe how the run actually executed).
    pub combined: RunReport,
    /// Each worker's own counters, indexed by shard.
    pub per_shard: Vec<EngineMetrics>,
    /// Tuples dropped at the shard channels under [`Backpressure::Shed`].
    pub shed_channel: u64,
    /// FULL (probing) deliveries the coordinator assigned to each shard
    /// (before any channel shedding) — the router's probe-work balance.
    /// Exactly one per arrival; replicated build/broadcast copies are not
    /// counted here (see [`EngineMetrics::replicated`]).
    pub routed: Vec<u64>,
    /// Final resident tuples on each shard (per-shard window occupancy at
    /// the end of the run).
    pub resident: Vec<usize>,
    /// Hot-key promotions performed by the skew router over the run.
    pub hot_promoted: u64,
    /// Whether the run executed in broadcast mode (replicated windows for
    /// non-key-partitionable queries).
    pub broadcast: bool,
    /// Every join result row (tuples in stream order), merged across
    /// shards and sorted by per-stream sequence numbers, when
    /// [`ShardConfig::collect_rows`] was set.
    pub rows: Option<Vec<Vec<Tuple>>>,
}

/// Streams covered by one [`Item::Ticks`] summary (wider schemas send
/// several chained blocks).
const TICK_LANES: usize = 8;

/// Coalesced foreign-arrival counts for the contiguous stream range
/// `[base, base + n)`: `counts[k]` arrivals on stream `base + k` were
/// routed to other shards since this shard's previous batch traffic.
#[derive(Clone, Copy, Debug)]
struct TickBlock {
    base: u8,
    n: u8,
    counts: [u32; TICK_LANES],
}

/// One message element on a worker channel.
enum Item {
    /// A tuple routed to this shard for processing — the arrival's one
    /// FULL delivery (probe + emit + `processed` credit).
    Tuple(Tuple),
    /// A replicated build-side copy (hot-key splitting): observe, expire
    /// and store, but do not probe and do not count as processed.
    Replica(Tuple),
    /// A broadcast-stream copy on a non-home shard: stores *and* probes
    /// (this shard holds dominant-stream partners no other shard has) but
    /// does not count as processed.
    ProbeReplica(Tuple),
    /// Arrivals other shards are processing (advances tuple-window expiry
    /// here). Always delivered before the tuples that follow them.
    Ticks(TickBlock),
}

struct WorkerOut {
    metrics: EngineMetrics,
    /// Result rows sorted by per-stream seq on the worker thread, so the
    /// coordinator's merge is a k-way interleave, not a global sort.
    rows: Option<Vec<Vec<Tuple>>>,
    end_time: VTime,
    /// Window occupancy at the end of the run.
    resident: usize,
}

/// One concurrently-hot key's routing state.
struct HotSlot {
    key: u64,
    active: bool,
    /// Round-robin cursor for probe placement once the fan-out gate opens
    /// (seeded with the slot index so concurrent hot keys start de-phased).
    rr: u64,
    /// Hash-home shard — the probe target while the gate is closed (it is
    /// the only shard holding the key's pre-promotion tuples).
    home: usize,
    /// Arrival timestamp at promotion (time-window gate anchor).
    promote_ts: VTime,
    /// Per-stream global arrival counts at promotion (tuple-window gate
    /// anchor); preallocated, length `n_streams`.
    snapshot: Vec<u64>,
    /// Once true, probes round-robin (sticky for the rest of the hot
    /// period: windows only ever shrink behind the gate condition).
    gate_open: bool,
}

/// Where one arrival's probing delivery goes.
enum Placement {
    /// Cold key: classic hash routing (ticks to the other shards).
    Cold { home: usize },
    /// Hot key: FULL to `probe`, store replicas to every other shard.
    Hot { probe: usize },
}

/// Minimum guaranteed observations before a key may be promoted: permille
/// thresholds alone are meaningless against the tiny totals of the first
/// decision epochs (one observation out of 64 is 15‰).
const MIN_PROMOTE_SUPPORT: u64 = 8;

/// Coordinator-side heavy-hitter detection and hot-key routing (key-
/// partitioned mode, S > 1). All state is preallocated at construction
/// and every decision iterates `Vec`s only, so routing stays
/// allocation-free and platform-deterministic.
struct SkewRouter {
    shards: usize,
    tracker: SpaceSaving,
    epoch_arrivals: u64,
    since_epoch: u64,
    promote_permille: u64,
    demote_permille: u64,
    /// key -> slot index; lookup-only (never iterated).
    hot_index: HashMap<u64, usize>,
    slots: Vec<HotSlot>,
    /// Global arrivals per stream seen by the coordinator (the oracle
    /// position every shard's expiry counter is synchronized to).
    stream_arrivals: Vec<u64>,
    /// Tuple-window sizes per stream (`None` for time windows).
    tuple_counts: Vec<Option<u64>>,
    /// Longest time window across streams, if any.
    max_time_window: Option<VDur>,
    /// Total promotions performed (diagnostic).
    promoted: u64,
}

impl SkewRouter {
    fn new(query: &JoinQuery, cfg: &HotKeyConfig, shards: usize) -> Self {
        let n = query.n_streams();
        let promote = if cfg.promote_permille == 0 {
            (1000 / (2 * shards as u64)).max(1)
        } else {
            u64::from(cfg.promote_permille)
        };
        let demote = if cfg.demote_permille == 0 {
            (promote / 2).max(1)
        } else {
            u64::from(cfg.demote_permille)
        };
        let tuple_counts: Vec<Option<u64>> = query
            .windows()
            .iter()
            .map(|w| match *w {
                WindowSpec::Tuples(c) => Some(c),
                WindowSpec::Time(_) => None,
            })
            .collect();
        let max_time_window = query
            .windows()
            .iter()
            .filter_map(|w| match *w {
                WindowSpec::Time(p) => Some(p),
                WindowSpec::Tuples(_) => None,
            })
            .max();
        let capacity = cfg.capacity.max(1);
        SkewRouter {
            shards,
            tracker: SpaceSaving::with_capacity(cfg.tracker_capacity.max(capacity)),
            epoch_arrivals: cfg.epoch_arrivals.max(1),
            since_epoch: 0,
            promote_permille: promote,
            demote_permille: demote,
            hot_index: HashMap::with_capacity(capacity * 2),
            slots: (0..capacity)
                .map(|i| HotSlot {
                    key: 0,
                    active: false,
                    rr: i as u64,
                    home: 0,
                    promote_ts: VTime::ZERO,
                    snapshot: vec![0; n],
                    gate_open: false,
                })
                .collect(),
            stream_arrivals: vec![0; n],
            tuple_counts,
            max_time_window,
            promoted: 0,
        }
    }

    /// Observes one routed arrival and places its probing delivery.
    fn place(&mut self, key: u64, stream: StreamId, now: VTime, home: usize) -> Placement {
        self.stream_arrivals[stream.index()] += 1;
        self.tracker.observe(key);
        self.since_epoch += 1;
        if self.since_epoch >= self.epoch_arrivals {
            self.epoch_end(now);
        }
        let Some(&i) = self.hot_index.get(&key) else {
            return Placement::Cold { home };
        };
        let slot = &mut self.slots[i];
        if !slot.gate_open {
            slot.gate_open = gate_opens(
                slot,
                &self.stream_arrivals,
                &self.tuple_counts,
                self.max_time_window,
                now,
            );
        }
        let probe = if slot.gate_open {
            let p = (slot.rr % self.shards as u64) as usize;
            slot.rr += 1;
            p
        } else {
            slot.home
        };
        Placement::Hot { probe }
    }

    /// Promote/demote decision point, run every `epoch_arrivals` arrivals.
    /// The tracker accumulates across epochs (cumulative shares), so
    /// detection resolution improves over the run while the decision
    /// cadence stays fixed.
    fn epoch_end(&mut self, now: VTime) {
        self.since_epoch = 0;
        let total = self.tracker.total();
        if total == 0 {
            return;
        }
        // Demote first (freeing slots for this epoch's promotions): a hot
        // key whose *upper-bound* share fell below the demote threshold is
        // returned to hash routing. Immediately safe — its home shard
        // received every replica during the hot period, so it has the
        // key's full window.
        for slot in &mut self.slots {
            if slot.active && self.tracker.estimate(slot.key) * 1000 < self.demote_permille * total
            {
                slot.active = false;
                self.hot_index.remove(&slot.key);
            }
        }
        // Promote keys whose *guaranteed* (lower-bound) share clears the
        // promote threshold — a key is only split when it provably earns
        // it — and that have minimum absolute support: in the first few
        // epochs the observed total is small enough that a key seen once
        // or twice clears any permille share test, and every such noise
        // promotion costs a home-pinned fan-out-gate window before its
        // eventual demotion. Slot-order iteration keeps this
        // deterministic.
        for (key, count, error) in self.tracker.iter() {
            let guaranteed = count - error;
            if guaranteed < MIN_PROMOTE_SUPPORT {
                continue;
            }
            if guaranteed * 1000 < self.promote_permille * total {
                continue;
            }
            if self.hot_index.contains_key(&key) {
                continue;
            }
            let Some(i) = self.slots.iter().position(|s| !s.active) else {
                break; // All slots busy; surplus keys stay hash-routed.
            };
            let slot = &mut self.slots[i];
            slot.key = key;
            slot.active = true;
            slot.home = (splitmix64(key) % self.shards as u64) as usize;
            slot.promote_ts = now;
            slot.snapshot.copy_from_slice(&self.stream_arrivals);
            slot.gate_open = false;
            self.hot_index.insert(key, i);
            self.promoted += 1;
        }
    }
}

/// Whether a hot key's fan-out gate opens: every pre-promotion tuple of
/// the key is provably expired on every shard, so all shards hold
/// identical windows for the key and probes may round-robin.
///
/// Time windows are exact (`expire_all(now)` runs before every probe and
/// expiry is `ts + p <= now`; pre-promotion tuples have `ts <=
/// promote_ts`). Tuple windows ask for `c + 1` further arrivals on the
/// stream since the promotion snapshot — one more than the window depth,
/// absorbing the arriving tuple's own not-yet-counted position.
fn gate_opens(
    slot: &HotSlot,
    arrivals: &[u64],
    tuple_counts: &[Option<u64>],
    max_time_window: Option<VDur>,
    now: VTime,
) -> bool {
    if let Some(p) = max_time_window {
        if now < slot.promote_ts + p {
            return false;
        }
    }
    for (s, c) in tuple_counts.iter().enumerate() {
        if let Some(c) = c {
            if arrivals[s] - slot.snapshot[s] < c + 1 {
                return false;
            }
        }
    }
    true
}

/// Broadcast-mode routing state: the dominant stream partitions
/// round-robin; every other stream replicates to all shards.
struct BroadcastPlan {
    /// The partitioned stream (most incident predicates; ties to the
    /// lowest index).
    dominant: usize,
    /// Round-robin cursor for dominant-stream placement.
    dominant_rr: u64,
    /// Round-robin cursor designating the FULL (accounting) shard for
    /// broadcast-stream arrivals.
    broadcast_rr: u64,
}

/// The stream with the most incident equi-predicates — partitioning it
/// removes the most probe work per shard; ties break to the lowest
/// stream index (deterministic and stable across runs).
fn dominant_stream(query: &JoinQuery) -> usize {
    let mut incident = vec![0usize; query.n_streams()];
    for p in query.predicates() {
        incident[p.left.stream.index()] += 1;
        incident[p.right.stream.index()] += 1;
    }
    let mut best = 0;
    for (s, &n) in incident.iter().enumerate() {
        if n > incident[best] {
            best = s;
        }
    }
    best
}

/// A shard-parallel front for [`ShedJoinEngine`]: route arrivals with
/// [`ShardedJoinEngine::ingest`], then collect the merged report with
/// [`ShardedJoinEngine::finish`].
pub struct ShardedJoinEngine {
    shards: usize,
    n_streams: usize,
    degraded: Option<String>,
    key_attrs: Option<Vec<usize>>,
    needs_ticks: bool,
    batch_size: usize,
    backpressure: Backpressure,
    collect_rows: bool,
    senders: Vec<Sender<Vec<Item>>>,
    /// Per-worker return path carrying drained batch allocations back for
    /// reuse (steady-state ingest then allocates no batch buffers).
    returns: Vec<Receiver<Vec<Item>>>,
    buffers: Vec<Vec<Item>>,
    /// Pending foreign-arrival ticks, flat-indexed `[shard * n_streams +
    /// stream]`; drained into an [`Item::Ticks`] summary right before the
    /// next tuple pushed to that shard.
    pending_ticks: Vec<u64>,
    /// Per-shard dirty flags for `pending_ticks`, keeping the hot-path
    /// check O(1).
    pending_any: Vec<bool>,
    routed: Vec<u64>,
    handles: Vec<JoinHandle<WorkerOut>>,
    next_seq: SeqNo,
    shed_channel: u64,
    /// Heavy-hitter detection and hot-key routing (key-partitioned mode,
    /// S > 1, hot keys enabled).
    skew: Option<SkewRouter>,
    /// Broadcast-mode routing (non-key-partitionable query, S > 1,
    /// broadcast enabled).
    broadcast: Option<BroadcastPlan>,
    /// Coordinator-side event-time front end: arrivals are reordered
    /// *before* minting and routing, so every worker — and the skew
    /// router's fan-out gate — observes a monotone (watermark-ordered)
    /// timestamp sequence. `None` without a disorder bound.
    front: Option<EventTimeFrontEnd>,
    /// Arrivals the coordinator dropped for exceeding the disorder bound
    /// (merged into the combined metrics at `finish`).
    late_dropped: u64,
    started: Instant,
}

impl ShardedJoinEngine {
    /// Spawns the worker threads for `query` with per-worker copies of
    /// `policy`. `config.memory` is the *total* budget; each worker gets
    /// `1/S` of it. Prefer [`crate::EngineBuilder::build_sharded`].
    pub fn new(
        query: JoinQuery,
        policy: Box<dyn ShedPolicy>,
        config: EngineConfig,
        shard: ShardConfig,
    ) -> Result<Self> {
        if shard.shards == 0 {
            return Err(Error::InvalidConfig("shard count must be >= 1".into()));
        }
        if shard.batch_size == 0 || shard.channel_capacity == 0 {
            return Err(Error::InvalidConfig(
                "shard batch size and channel capacity must be >= 1".into(),
            ));
        }
        let (shards, degraded, key_attrs, broadcast) =
            match (shard.shards, query.partitioning()) {
                (1, p) => (1, None, p.key_attrs().map(<[usize]>::to_vec), None),
                (s, Partitioning::ByKey { key_attrs }) => (s, None, Some(key_attrs), None),
                (s, Partitioning::Single { .. }) if shard.broadcast => (
                    s,
                    None,
                    None,
                    Some(BroadcastPlan {
                        dominant: dominant_stream(&query),
                        dominant_rr: 0,
                        broadcast_rr: 0,
                    }),
                ),
                (_, Partitioning::Single { reason }) => (1, Some(reason), None, None),
            };
        let n_streams = query.n_streams();
        let needs_ticks = shards > 1
            && query
                .windows()
                .iter()
                .any(|w| matches!(w, WindowSpec::Tuples(_)));
        let memory = match &broadcast {
            Some(plan) => broadcast_memory(&config.memory, shards, plan.dominant, n_streams),
            None => split_memory(&config.memory, shards),
        };
        // Broadcast shards each observe *every* broadcast-stream arrival
        // (replicated estimation state mirrors the replicated windows), so
        // they keep the full bank; key-partitioned shards estimate 1/S of
        // the key space and split it.
        let bank = if broadcast.is_some() {
            config.bank
        } else {
            split_bank(&config.bank, shards)
        };
        let skew = (shards > 1 && key_attrs.is_some() && shard.hot_keys.enabled)
            .then(|| SkewRouter::new(&query, &shard.hot_keys, shards));
        let mut senders = Vec::with_capacity(shards);
        let mut returns = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        // Reordering happens once, at the coordinator, before minting and
        // routing: workers then see timestamps in watermark order and run
        // with the legacy (trusting) front end.
        let front = config.disorder.map(|k| EventTimeFrontEnd::new(k, n_streams));
        for i in 0..shards {
            let mut worker_config = config.clone();
            worker_config.memory = memory.clone();
            worker_config.bank = bank;
            worker_config.disorder = None;
            // A 1-shard run keeps the master seed so it is bit-identical to
            // the single-threaded engine; multi-shard workers get
            // independent derived streams.
            if shards > 1 {
                worker_config.seed = splitmix64(config.seed ^ (i as u64 + 1));
            }
            let engine = ShedJoinEngine::new(query.clone(), policy.clone(), worker_config)?;
            let (tx, rx) = bounded(shard.channel_capacity);
            // The return channel holds every buffer that can be in flight
            // (channel depth + the one being drained + the one being
            // filled), so workers never block returning one.
            let (ret_tx, ret_rx) = bounded(shard.channel_capacity + 2);
            let mode = WorkerMode {
                collect_rows: shard.collect_rows,
                route_only: shard.route_only,
                batch_ingest: shard.batch_ingest,
            };
            handles.push(std::thread::spawn(move || {
                worker_loop(engine, rx, ret_tx, mode)
            }));
            senders.push(tx);
            returns.push(ret_rx);
        }
        let batch_size = shard.batch_size;
        Ok(ShardedJoinEngine {
            shards,
            n_streams,
            degraded,
            key_attrs,
            needs_ticks,
            batch_size,
            backpressure: shard.backpressure,
            collect_rows: shard.collect_rows,
            senders,
            returns,
            buffers: (0..shards).map(|_| Vec::with_capacity(batch_size)).collect(),
            pending_ticks: vec![0; shards * n_streams],
            pending_any: vec![false; shards],
            routed: vec![0; shards],
            handles,
            next_seq: SeqNo(0),
            shed_channel: 0,
            skew,
            broadcast,
            front,
            late_dropped: 0,
            started: Instant::now(),
        })
    }

    /// Workers the engine actually runs on (1 when the query degraded).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Why a multi-shard request fell back to one shard, if it did.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Routes one arrival. Key-partitioned arrivals go to their hash-home
    /// shard — unless the skew router has the key hot, in which case the
    /// store side replicates to every shard and the probe side goes to
    /// one. Broadcast-mode arrivals partition the dominant stream and
    /// replicate the rest. For tuple-based windows, arrivals a shard does
    /// not receive are recorded as pending expiry ticks, delivered as a
    /// coalesced summary ahead of that shard's next delivery. Channel
    /// errors surface at [`ShardedJoinEngine::finish`], where the worker's
    /// panic is reported.
    ///
    /// With a disorder bound configured, the coordinator's event-time
    /// front end runs *before* minting and routing: arrivals buffer until
    /// the watermark proves them safe, release in `(ts, admission)` order,
    /// and late-drop (counted, never routed, never a panic) once beyond
    /// the bound. Routing therefore always observes a monotone timestamp
    /// sequence — which also re-anchors the skew router's time-window
    /// fan-out gate (`now ≥ promote_ts + p`) on the watermark clock, where
    /// its expiry reasoning is sound even for disordered inputs.
    pub fn ingest(&mut self, arrival: Arrival) {
        let Some(front) = self.front.as_mut() else {
            self.route_arrival(arrival);
            return;
        };
        let k = arrival.stream.index();
        if arrival.ts > front.hwm[k] {
            front.hwm[k] = arrival.ts;
        }
        let wm = front.watermark();
        if arrival.ts < wm {
            self.late_dropped += 1;
            return;
        }
        let entry = front.admitted;
        front.admitted += 1;
        front.buffers[k].push(arrival.ts, entry, arrival);
        self.release_below(Some(wm));
    }

    /// Releases coordinator-buffered arrivals in merged `(ts, admission)`
    /// order while the head's timestamp is strictly below `wm` (`None`
    /// drains everything — the `finish` flush), routing each one.
    fn release_below(&mut self, wm: Option<VTime>) {
        loop {
            let front = self.front.as_mut().expect("event-time mode only");
            let mut head: Option<(VTime, u64, usize)> = None;
            for (k, buf) in front.buffers.iter().enumerate() {
                if let Some((ts, entry)) = buf.peek_key() {
                    if head.map_or(true, |(ht, he, _)| (ts, entry) < (ht, he)) {
                        head = Some((ts, entry, k));
                    }
                }
            }
            let Some((ts, _, k)) = head else { break };
            if let Some(wm) = wm {
                if ts >= wm {
                    break;
                }
            }
            let (_, _, arrival) = front.buffers[k].pop().expect("peeked entry exists");
            self.route_arrival(arrival);
        }
    }

    /// The current event-time watermark (`None` without a disorder bound).
    pub fn watermark(&self) -> Option<VTime> {
        self.front.as_ref().map(EventTimeFrontEnd::watermark)
    }

    /// Mints and routes one arrival (the pre-event-time `ingest` body).
    fn route_arrival(&mut self, arrival: Arrival) {
        let stream = arrival.stream;
        let seq = self.next_seq;
        self.next_seq = seq.next();
        let tuple = Tuple::new(stream, arrival.ts, seq, arrival.values);
        if self.broadcast.is_some() {
            self.ingest_broadcast(tuple);
            return;
        }
        if self.shards == 1 {
            self.routed[0] += 1;
            self.push(0, Item::Tuple(tuple));
            return;
        }
        let key_attrs = self.key_attrs.as_ref().expect("multi-shard implies keys");
        let key = tuple.values[key_attrs[stream.index()]].raw();
        let home = (splitmix64(key) % self.shards as u64) as usize;
        let placement = match self.skew.as_mut() {
            Some(skew) => skew.place(key, stream, tuple.ts, home),
            None => Placement::Cold { home },
        };
        match placement {
            Placement::Cold { home } => self.deliver_cold(home, tuple),
            Placement::Hot { probe } => self.deliver_hot(probe, tuple),
        }
    }

    /// Classic single-shard delivery: the tuple to `home`, pending expiry
    /// ticks to every other shard.
    fn deliver_cold(&mut self, home: usize, tuple: Tuple) {
        self.routed[home] += 1;
        if self.needs_ticks {
            let s = tuple.stream.index();
            for shard in 0..self.shards {
                if shard != home {
                    self.pending_ticks[shard * self.n_streams + s] += 1;
                    self.pending_any[shard] = true;
                }
            }
            if self.pending_any[home] {
                self.flush_pending_ticks(home);
            }
        }
        self.push(home, Item::Tuple(tuple));
    }

    /// Hot-key delivery: the one FULL (probing) delivery to `probe`, a
    /// store replica to every other shard. Each shard receives a delivery
    /// — storing advances its own expiry counters — so the arrival queues
    /// no ticks; but older pending ticks flush to *every* shard first so
    /// each copy lands at the arrival's global expiry position.
    fn deliver_hot(&mut self, probe: usize, tuple: Tuple) {
        self.routed[probe] += 1;
        if self.needs_ticks {
            for shard in 0..self.shards {
                if self.pending_any[shard] {
                    self.flush_pending_ticks(shard);
                }
            }
        }
        for shard in 0..self.shards {
            if shard != probe {
                self.push(shard, Item::Replica(tuple.clone()));
            }
        }
        self.push(probe, Item::Tuple(tuple));
    }

    /// Broadcast-mode delivery: dominant-stream arrivals partition
    /// round-robin (with expiry ticks to the shards that miss them, like
    /// hash mode); every other stream is stored *and probed* on all
    /// shards, with one round-robin-designated FULL delivery carrying the
    /// arrival's `processed` accounting.
    fn ingest_broadcast(&mut self, tuple: Tuple) {
        let shards = self.shards as u64;
        let plan = self.broadcast.as_mut().expect("broadcast mode");
        if tuple.stream.index() == plan.dominant {
            let home = (plan.dominant_rr % shards) as usize;
            plan.dominant_rr += 1;
            self.deliver_cold(home, tuple);
            return;
        }
        let full = (plan.broadcast_rr % shards) as usize;
        plan.broadcast_rr += 1;
        self.routed[full] += 1;
        if self.needs_ticks {
            for shard in 0..self.shards {
                if self.pending_any[shard] {
                    self.flush_pending_ticks(shard);
                }
            }
        }
        for shard in 0..self.shards {
            if shard != full {
                self.push(shard, Item::ProbeReplica(tuple.clone()));
            }
        }
        self.push(full, Item::Tuple(tuple));
    }

    /// Drains `shard`'s pending tick counters into [`Item::Ticks`]
    /// summaries on its batch buffer (chunked [`TICK_LANES`] streams at a
    /// time; counts above `u32::MAX` chain extra blocks).
    fn flush_pending_ticks(&mut self, shard: usize) {
        for base in (0..self.n_streams).step_by(TICK_LANES) {
            let n = TICK_LANES.min(self.n_streams - base);
            loop {
                let mut block = TickBlock {
                    base: base as u8,
                    n: n as u8,
                    counts: [0; TICK_LANES],
                };
                let mut any = false;
                for lane in 0..n {
                    let slot = &mut self.pending_ticks[shard * self.n_streams + base + lane];
                    let take = (*slot).min(u32::MAX as u64);
                    if take > 0 {
                        block.counts[lane] = take as u32;
                        *slot -= take;
                        any = true;
                    }
                }
                if !any {
                    break;
                }
                self.push(shard, Item::Ticks(block));
            }
        }
        self.pending_any[shard] = false;
    }

    fn push(&mut self, shard: usize, item: Item) {
        self.buffers[shard].push(item);
        if self.buffers[shard].len() >= self.batch_size {
            self.flush(shard);
        }
    }

    /// Takes a recycled batch buffer off `shard`'s return channel, falling
    /// back to a fresh allocation only when every buffer is still in
    /// flight (startup, or a worker busy draining).
    fn recycled_buffer(&mut self, shard: usize) -> Vec<Item> {
        self.returns[shard]
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.batch_size))
    }

    fn flush(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        // `Vec::new()` is allocation-free; the slot is refilled below with
        // either a recycled buffer or (under Shed) the rejected batch.
        let batch = std::mem::take(&mut self.buffers[shard]);
        match self.backpressure {
            Backpressure::Block => {
                if self.senders[shard].send(batch).is_err() {
                    // The worker died; its panic is reported by `finish`.
                }
                self.buffers[shard] = self.recycled_buffer(shard);
            }
            Backpressure::Shed => match self.senders[shard].try_send(batch) {
                Ok(()) => self.buffers[shard] = self.recycled_buffer(shard),
                Err(err) => {
                    let mut batch = err.into_inner();
                    self.account_rejected(shard, &batch);
                    // The rejected batch's allocation becomes the shard's
                    // next buffer — shedding allocates nothing either.
                    batch.clear();
                    self.buffers[shard] = batch;
                }
            },
        }
    }

    /// Books a batch the full channel rejected: tuples count as
    /// channel-shed, but tick summaries are pure counters and are
    /// re-queued as pending so a full channel never silently skews
    /// tuple-window expiry. A shed tuple also re-queues as a tick for its
    /// own shard — `ingest` already ticked every *other* shard for that
    /// arrival, so the home shard must count it too or its tuple windows
    /// would expire late and emit rows no unshedded run produces. The
    /// rejected batch is the newest traffic for this shard, so the counts
    /// re-merge in order.
    fn account_rejected(&mut self, shard: usize, batch: &[Item]) {
        for item in batch {
            match item {
                Item::Tuple(tuple) => {
                    self.shed_channel += 1;
                    if self.needs_ticks {
                        self.pending_ticks[shard * self.n_streams + tuple.stream.index()] += 1;
                        self.pending_any[shard] = true;
                    }
                }
                // A dropped replica is not channel shedding — the arrival
                // is still fully processed by its FULL delivery elsewhere.
                // But this shard missed a counter-advancing store, so the
                // arrival re-queues as a tick to keep its expiry exact.
                Item::Replica(tuple) | Item::ProbeReplica(tuple) => {
                    if self.needs_ticks {
                        self.pending_ticks[shard * self.n_streams + tuple.stream.index()] += 1;
                        self.pending_any[shard] = true;
                    }
                }
                Item::Ticks(block) => {
                    for lane in 0..block.n as usize {
                        let count = block.counts[lane];
                        if count > 0 {
                            let stream = block.base as usize + lane;
                            self.pending_ticks[shard * self.n_streams + stream] += count as u64;
                            self.pending_any[shard] = true;
                        }
                    }
                }
            }
        }
    }

    /// Flushes the remaining batches, waits for every worker, and merges
    /// their metrics (and rows, when collected) into one report.
    ///
    /// Fails with [`Error::Shard`] if any worker panicked — under the
    /// `audit` feature workers check engine invariants after every tuple.
    pub fn finish(mut self) -> Result<ShardedRunReport> {
        // Drain the event-time reorder buffers first: end of trace, so
        // every still-buffered arrival releases regardless of the
        // watermark (no-op without a disorder bound).
        if self.front.is_some() {
            self.release_below(None);
        }
        for shard in 0..self.shards {
            // Trailing ticks (arrivals after a shard's last tuple) cannot
            // change its output, but delivering them keeps the final
            // arrival counters exact on every shard.
            if self.needs_ticks && self.pending_any[shard] {
                self.flush_pending_ticks(shard);
            }
            self.flush(shard);
        }
        self.senders.clear(); // Dropping the senders ends the worker loops.
        let handles = std::mem::take(&mut self.handles);
        let mut combined = EngineMetrics::default();
        let mut per_shard = Vec::with_capacity(self.shards);
        let mut resident = Vec::with_capacity(self.shards);
        let mut worker_rows = self.collect_rows.then(Vec::new);
        let mut end_time = VTime::ZERO;
        let mut failure: Option<Error> = None;
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(out) => {
                    combined.merge(&out.metrics);
                    per_shard.push(out.metrics);
                    resident.push(out.resident);
                    if let (Some(all), Some(r)) = (worker_rows.as_mut(), out.rows) {
                        all.push(r);
                    }
                    end_time = end_time.max(out.end_time);
                }
                Err(panic) => {
                    failure.get_or_insert(Error::Shard(format!(
                        "worker {i} panicked: {}",
                        panic_message(&panic)
                    )));
                }
            }
        }
        if let Some(err) = failure {
            return Err(err);
        }
        // Coordinator-side late drops happen before routing, so no worker
        // ever saw them; fold them into the combined counters here.
        combined.late_dropped += self.late_dropped;
        // Seq-stamped merge: per-stream arrival sequence numbers are
        // global (coordinator-minted), so this canonical order is directly
        // comparable across shard counts and to the single-engine oracle.
        // Each worker pre-sorted its rows, so this is a k-way interleave.
        let rows = worker_rows.map(merge_sorted_rows);
        let combined = RunReport {
            metrics: combined,
            end_time,
            wall_time: self.started.elapsed(),
            shards: self.shards,
            degraded: self.degraded.clone(),
            ..Default::default()
        };
        Ok(ShardedRunReport {
            combined,
            per_shard,
            shed_channel: self.shed_channel,
            routed: self.routed,
            resident,
            hot_promoted: self.skew.as_ref().map_or(0, |s| s.promoted),
            broadcast: self.broadcast.is_some(),
            rows,
        })
    }

    /// Convenience driver: feeds `trace` at `arrival_rate` tuples/second
    /// on the same virtual-time schedule as [`crate::sim::run_trace`],
    /// then finishes. Cloning `item.values` is a plain copy for inline
    /// arities (≤ [`mstream_types::ROW_INLINE`]), so replaying a trace
    /// allocates nothing per arrival.
    pub fn run_trace(mut self, trace: &Trace, arrival_rate: f64) -> Result<ShardedRunReport> {
        let dt = VDur::from_rate(arrival_rate);
        for (i, item) in trace.items.iter().enumerate() {
            let now = VTime::ZERO + dt.mul(i as u64);
            self.ingest(Arrival::new(item.stream, item.values.clone(), now));
        }
        self.finish()
    }
}

/// Compares result rows by their per-stream sequence numbers, the
/// canonical output order. Keys are unique (each join combination is
/// emitted exactly once, on exactly one shard), so unstable sorting and
/// arbitrary merge tie-breaks reproduce one well-defined order.
fn row_seq_cmp(a: &[Tuple], b: &[Tuple]) -> Ordering {
    a.iter().map(|t| t.seq).cmp(b.iter().map(|t| t.seq))
}

/// K-way merges per-worker row lists, each already sorted by
/// [`row_seq_cmp`], into one sorted list without per-row key allocation.
fn merge_sorted_rows(mut per_worker: Vec<Vec<Vec<Tuple>>>) -> Vec<Vec<Tuple>> {
    per_worker.retain(|rows| !rows.is_empty());
    if per_worker.len() <= 1 {
        return per_worker.pop().unwrap_or_default();
    }
    let total = per_worker.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for rows in &mut per_worker {
        rows.reverse(); // Next-smallest row is now an O(1) pop from the back.
    }
    while !per_worker.is_empty() {
        let mut best = 0;
        for i in 1..per_worker.len() {
            let candidate = per_worker[i].last().expect("empty lists are removed");
            let current = per_worker[best].last().expect("empty lists are removed");
            if row_seq_cmp(candidate, current) == Ordering::Less {
                best = i;
            }
        }
        out.push(per_worker[best].pop().expect("best list is non-empty"));
        if per_worker[best].is_empty() {
            per_worker.swap_remove(best);
        }
    }
    out
}

#[derive(Clone, Copy)]
struct WorkerMode {
    collect_rows: bool,
    route_only: bool,
    batch_ingest: bool,
}

/// Runs the accumulated tuple run through the engine's batch-amortized
/// path (no-op on an empty run). Tick blocks and batch boundaries bound
/// each run, so delivery order is exactly the per-item loop's; the batched
/// path itself replays per-arrival bit-identically.
fn flush_pending(
    engine: &mut ShedJoinEngine,
    pending: &mut Vec<BatchItem>,
    mode: WorkerMode,
    vec_sink: &mut VecSink,
    count_sink: &mut CountSink,
) {
    if pending.is_empty() {
        return;
    }
    if mode.collect_rows {
        engine.ingest_tuple_batch(pending, vec_sink);
    } else {
        engine.ingest_tuple_batch(pending, count_sink);
    }
    #[cfg(feature = "audit")]
    engine.check_invariants();
}

fn worker_loop(
    mut engine: ShedJoinEngine,
    rx: Receiver<Vec<Item>>,
    ret_tx: Sender<Vec<Item>>,
    mode: WorkerMode,
) -> WorkerOut {
    let mut vec_sink = VecSink::default();
    let mut count_sink = CountSink::default();
    let mut end_time = VTime::ZERO;
    // Reused run buffer of the batch-amortized path: consecutive
    // tuple-bearing items of one routed batch, flushed at tick blocks and
    // batch end.
    let mut pending: Vec<BatchItem> = Vec::new();
    while let Ok(mut batch) = rx.recv() {
        if mode.route_only {
            batch.clear();
        } else {
            for item in batch.drain(..) {
                match item {
                    Item::Ticks(block) => {
                        // A tick block summarizes foreign arrivals that
                        // precede the items after it: land the tuple run
                        // gathered so far first to keep delivery order.
                        flush_pending(
                            &mut engine,
                            &mut pending,
                            mode,
                            &mut vec_sink,
                            &mut count_sink,
                        );
                        for lane in 0..block.n as usize {
                            let count = block.counts[lane];
                            if count > 0 {
                                let stream = StreamId(block.base as usize + lane);
                                engine.note_foreign_arrivals(stream, count as u64);
                            }
                        }
                    }
                    item => {
                        let (tuple, role) = match item {
                            Item::Tuple(t) => (t, IngestRole::FULL),
                            Item::Replica(t) => (t, IngestRole::STORE_REPLICA),
                            Item::ProbeReplica(t) => (t, IngestRole::PROBE_REPLICA),
                            Item::Ticks(_) => unreachable!("handled above"),
                        };
                        let now = tuple.ts;
                        end_time = end_time.max(now);
                        if mode.batch_ingest {
                            pending.push(BatchItem { tuple, now, role });
                        } else {
                            if mode.collect_rows {
                                engine.ingest_tuple_as(tuple, now, &mut vec_sink, role);
                            } else {
                                engine.ingest_tuple_as(tuple, now, &mut count_sink, role);
                            }
                            #[cfg(feature = "audit")]
                            engine.check_invariants();
                        }
                    }
                }
            }
            flush_pending(&mut engine, &mut pending, mode, &mut vec_sink, &mut count_sink);
        }
        // Hand the drained allocation back for reuse. The return channel
        // is sized to hold every in-flight buffer, so a failure only
        // means the coordinator is gone — then the buffer just drops.
        let _ = ret_tx.try_send(batch);
    }
    let rows = mode.collect_rows.then(|| {
        let mut rows = vec_sink.rows;
        rows.sort_unstable_by(|a, b| row_seq_cmp(a, b));
        rows
    });
    WorkerOut {
        resident: engine.total_resident(),
        metrics: engine.metrics().clone(),
        rows,
        end_time,
    }
}

/// Splits a total memory budget evenly across `shards` workers (each
/// window keeps at least one slot).
pub(crate) fn split_memory(memory: &MemoryMode, shards: usize) -> MemoryMode {
    if shards <= 1 {
        return memory.clone();
    }
    match memory {
        MemoryMode::PerWindow(c) => MemoryMode::PerWindow((c / shards).max(1)),
        MemoryMode::PerWindowEach(cs) => {
            MemoryMode::PerWindowEach(cs.iter().map(|c| (c / shards).max(1)).collect())
        }
        MemoryMode::GlobalPool(total) => MemoryMode::GlobalPool((total / shards).max(1)),
    }
}

/// Per-shard memory for broadcast mode: broadcast streams keep their
/// *full* window allocation on every shard (their windows are replicated
/// — total memory for those streams is window memory × S, the documented
/// price of sharing the build side), while the dominant stream's window
/// divides by S (each shard holds one partition of it). A global pool
/// stays whole per shard for the same reason: most of its occupancy is
/// replicated broadcast state.
fn broadcast_memory(
    memory: &MemoryMode,
    shards: usize,
    dominant: usize,
    n_streams: usize,
) -> MemoryMode {
    if shards <= 1 {
        return memory.clone();
    }
    let split = |c: usize, s: usize| {
        if s == dominant {
            (c / shards).max(1)
        } else {
            c
        }
    };
    match memory {
        MemoryMode::PerWindow(c) => {
            MemoryMode::PerWindowEach((0..n_streams).map(|s| split(*c, s)).collect())
        }
        MemoryMode::PerWindowEach(cs) => {
            MemoryMode::PerWindowEach(cs.iter().enumerate().map(|(s, c)| split(*c, s)).collect())
        }
        MemoryMode::GlobalPool(total) => MemoryMode::GlobalPool(*total),
    }
}

/// Splits the estimation budget the way [`split_memory`] splits the
/// window budget: per-shard banks keep the full median structure (`s2`
/// groups) but average `s1/S` copies per group (floor 1), so the total
/// sketch memory stays constant as shards are added. Each shard estimates
/// only its own key partition — a strictly smaller join — so the divided
/// budget funds `S` independent, narrower estimators instead of `S`
/// replicas of the full-width one. A 1-shard run keeps the master bank
/// untouched (bit-identical to the single engine).
pub(crate) fn split_bank(bank: &BankConfig, shards: usize) -> BankConfig {
    if shards <= 1 {
        return *bank;
    }
    BankConfig {
        s1: (bank.s1 / shards).max(1),
        ..*bank
    }
}

/// SplitMix64: the fixed avalanche hash used for both shard routing and
/// per-worker seed derivation (stable across platforms and runs, unlike
/// `std`'s `RandomState`).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_bank_divides_means_keeps_median_groups() {
        let bank = BankConfig {
            s1: 1000,
            s2: 3,
            seed: 9,
        };
        assert_eq!(split_bank(&bank, 1), bank, "S=1 keeps the master bank");
        let quarter = split_bank(&bank, 4);
        assert_eq!(quarter.s1, 250);
        assert_eq!(quarter.s2, 3, "median robustness is not divided");
        assert_eq!(quarter.seed, 9, "sign families stay seed-stable");
        assert_eq!(split_bank(&bank, 4000).s1, 1, "floor of one copy");
    }

    #[test]
    fn split_memory_is_even_with_floor_of_one() {
        assert_eq!(
            split_memory(&MemoryMode::PerWindow(64), 4),
            MemoryMode::PerWindow(16)
        );
        assert_eq!(
            split_memory(&MemoryMode::PerWindow(2), 8),
            MemoryMode::PerWindow(1)
        );
        assert_eq!(
            split_memory(&MemoryMode::PerWindowEach(vec![8, 4]), 2),
            MemoryMode::PerWindowEach(vec![4, 2])
        );
        assert_eq!(
            split_memory(&MemoryMode::GlobalPool(100), 3),
            MemoryMode::GlobalPool(33)
        );
        // A single shard keeps the budget untouched.
        assert_eq!(
            split_memory(&MemoryMode::GlobalPool(100), 1),
            MemoryMode::GlobalPool(100)
        );
    }

    #[test]
    fn splitmix_spreads_small_domains() {
        // Join keys live in tiny discretized domains; the router must not
        // collapse them onto one shard.
        let shards = 4u64;
        let hit: std::collections::HashSet<u64> =
            (0..16u64).map(|v| splitmix64(v) % shards).collect();
        assert!(hit.len() >= 3, "16 keys should reach >= 3 of 4 shards");
    }

    #[test]
    fn splitmix_is_stable() {
        // Routing (and thus sharded replay) depends on these exact values.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    fn row(seqs: &[u64]) -> Vec<Tuple> {
        seqs.iter()
            .enumerate()
            .map(|(k, &s)| Tuple::new(StreamId(k), VTime::ZERO, SeqNo(s), mstream_types::Row::new()))
            .collect()
    }

    fn seqs(rows: &[Vec<Tuple>]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| r.iter().map(|t| t.seq.0).collect())
            .collect()
    }

    #[test]
    fn merge_interleaves_sorted_worker_lists() {
        let a = vec![row(&[0, 1]), row(&[2, 5]), row(&[9, 0])];
        let b = vec![row(&[1, 7]), row(&[3, 3])];
        let c = vec![];
        let merged = merge_sorted_rows(vec![a, b, c]);
        assert_eq!(
            seqs(&merged),
            vec![
                vec![0, 1],
                vec![1, 7],
                vec![2, 5],
                vec![3, 3],
                vec![9, 0]
            ]
        );
    }

    #[test]
    fn merge_matches_global_sort_on_shuffled_input() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Unique 2-seq keys split across 4 "workers", each locally sorted.
        let mut keys: Vec<[u64; 2]> = (0..200u64).map(|i| [i / 20, i % 20]).collect();
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.gen_range(0..=i));
        }
        let mut workers: Vec<Vec<Vec<Tuple>>> = (0..4).map(|_| Vec::new()).collect();
        for (i, k) in keys.iter().enumerate() {
            workers[i % 4].push(row(&k[..]));
        }
        for w in &mut workers {
            w.sort_unstable_by(|a, b| row_seq_cmp(a, b));
        }
        let mut expect: Vec<Vec<Tuple>> = workers.iter().flatten().cloned().collect();
        expect.sort_by_key(|r| r.iter().map(|t| t.seq).collect::<Vec<_>>());
        let merged = merge_sorted_rows(workers);
        assert_eq!(seqs(&merged), seqs(&expect));
    }

    #[test]
    fn tick_blocks_chunk_wide_schemas() {
        // 10 streams -> lanes split across two blocks at the chunk size.
        assert_eq!(TICK_LANES, 8, "chunking tests assume 8 lanes");
        let bases: Vec<usize> = (0..10).step_by(TICK_LANES).collect();
        assert_eq!(bases, vec![0, 8]);
    }

    /// A full channel must count rejected tuples as channel-shed but give
    /// rejected tick summaries back to the pending counters — dropping
    /// them would silently skew tuple-window expiry on the starved shard.
    #[test]
    fn rejected_batches_requeue_tick_summaries() {
        use mstream_types::{Catalog, JoinQuery, WindowSpec};
        let mut c = Catalog::new();
        c.add_stream(mstream_types::StreamSchema::new("R1", &["A1"]));
        c.add_stream(mstream_types::StreamSchema::new("R2", &["A1"]));
        let query = JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1")],
            WindowSpec::Tuples(4),
        )
        .unwrap();
        let mut engine = ShardedJoinEngine::new(
            query,
            mstream_shed_policies::Fifo.clone_box(),
            EngineConfig::default(),
            ShardConfig {
                shards: 2,
                backpressure: Backpressure::Shed,
                ..ShardConfig::default()
            },
        )
        .unwrap();
        let batch = vec![
            Item::Ticks(TickBlock {
                base: 0,
                n: 2,
                counts: {
                    let mut c = [0u32; TICK_LANES];
                    c[0] = 3;
                    c[1] = 1;
                    c
                },
            }),
            Item::Tuple(Tuple::new(
                StreamId(0),
                VTime::ZERO,
                SeqNo(0),
                mstream_types::Row::new(),
            )),
            Item::Tuple(Tuple::new(
                StreamId(1),
                VTime::ZERO,
                SeqNo(1),
                mstream_types::Row::new(),
            )),
        ];
        engine.account_rejected(1, &batch);
        assert_eq!(engine.shed_channel, 2, "only tuples count as shed");
        // Tick summary counts re-merge, and each shed tuple ticks its own
        // shard (the other shards were already ticked at ingest).
        assert_eq!(engine.pending_ticks[1 * 2 + 0], 3 + 1, "stream 0 re-queued");
        assert_eq!(engine.pending_ticks[1 * 2 + 1], 1 + 1, "stream 1 re-queued");
        assert_eq!(engine.pending_ticks[0], 0, "other shard untouched");
        assert!(engine.pending_any[1], "re-queued counts marked dirty");
        assert!(!engine.pending_any[0]);
        // Re-queued counts drain into the next summary for that shard.
        engine.flush_pending_ticks(1);
        assert_eq!(engine.pending_ticks[1 * 2 + 0], 0);
        assert!(!engine.pending_any[1]);
        engine.finish().unwrap();
    }

    fn two_stream_query(window: WindowSpec) -> mstream_types::JoinQuery {
        use mstream_types::{Catalog, JoinQuery, StreamSchema};
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1"]));
        c.add_stream(StreamSchema::new("R2", &["A1"]));
        JoinQuery::from_names(c, &[("R1.A1", "R2.A1")], window).unwrap()
    }

    /// A cumulative 60%-share key must promote at the first epoch
    /// boundary; its probes stay pinned to the hash home until the
    /// tuple-window gate opens, then round-robin across shards; and once
    /// the key's share decays below the demote threshold it returns to
    /// hash routing.
    #[test]
    fn skew_router_promotes_gates_round_robins_and_demotes() {
        let query = two_stream_query(WindowSpec::Tuples(4));
        let cfg = HotKeyConfig {
            enabled: true,
            capacity: 4,
            tracker_capacity: 64,
            epoch_arrivals: 8,
            promote_permille: 300,
            demote_permille: 150,
        };
        let shards = 4;
        let mut router = SkewRouter::new(&query, &cfg, shards);
        let home = |k: u64| (splitmix64(k) % shards as u64) as usize;

        // First epoch: key 7 on every arrival, alternating streams. The
        // epoch boundary fires inside the 8th `place` call, before that
        // arrival's own routing decision.
        for i in 0..7u64 {
            let p = router.place(7, StreamId((i % 2) as usize), VTime::from_secs(i), home(7));
            assert!(
                matches!(p, Placement::Cold { .. }),
                "not yet promoted mid-epoch"
            );
        }
        let p = router.place(7, StreamId(1), VTime::from_secs(7), home(7));
        assert!(matches!(p, Placement::Hot { .. }), "promoted at the epoch");
        assert_eq!(router.promoted, 1, "epoch boundary promotes the 100% key");

        // Gate: tuple windows need c + 1 = 5 further arrivals per stream
        // since the snapshot; until then probes pin to the hash home.
        let mut placements = Vec::new();
        for i in 8..28u64 {
            match router.place(7, StreamId((i % 2) as usize), VTime::from_secs(i), home(7)) {
                Placement::Hot { probe } => placements.push(probe),
                Placement::Cold { .. } => panic!("hot key must place as Hot"),
            }
        }
        assert!(
            placements[..8].iter().all(|&p| p == home(7)),
            "gate must pin early probes to the home shard: {placements:?}"
        );
        let spread: std::collections::HashSet<usize> = placements[10..].iter().copied().collect();
        assert_eq!(spread.len(), shards, "open gate round-robins all shards");

        // Decay: flood with cold keys until key 7's share falls under the
        // demote threshold, then check it hash-routes again.
        for i in 0..400u64 {
            router.place(1000 + i, StreamId(0), VTime::from_secs(40), home(1000 + i));
        }
        assert!(
            matches!(
                router.place(7, StreamId(0), VTime::from_secs(41), home(7)),
                Placement::Cold { .. }
            ),
            "decayed key must demote back to hash routing"
        );
        assert!(router.slots.iter().all(|s| !s.active || s.key != 7));
    }

    /// Same-seed replay determinism of the router itself: identical
    /// arrival sequences must yield identical placement sequences.
    #[test]
    fn skew_router_is_deterministic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let query = two_stream_query(WindowSpec::Tuples(6));
        let cfg = HotKeyConfig {
            enabled: true,
            capacity: 4,
            tracker_capacity: 32,
            epoch_arrivals: 16,
            promote_permille: 250,
            demote_permille: 125,
        };
        let run = || {
            let mut router = SkewRouter::new(&query, &cfg, 4);
            let mut rng = StdRng::seed_from_u64(3);
            let mut out = Vec::new();
            for i in 0..600u64 {
                let key = if rng.gen_bool(0.5) { 0 } else { rng.gen_range(1..20) };
                let home = (splitmix64(key) % 4) as usize;
                let p = router.place(key, StreamId((i % 2) as usize), VTime::from_secs(i / 4), home);
                out.push(match p {
                    Placement::Cold { home } => (0, home),
                    Placement::Hot { probe } => (1, probe),
                });
            }
            (out, router.promoted)
        };
        assert_eq!(run(), run());
    }

    /// The time-window gate anchors on the promotion timestamp: closed
    /// strictly before `promote_ts + p`, open at it.
    #[test]
    fn time_window_gate_opens_exactly_at_promote_ts_plus_window() {
        let slot = HotSlot {
            key: 1,
            active: true,
            rr: 0,
            home: 0,
            promote_ts: VTime::from_secs(10),
            snapshot: vec![0, 0],
            gate_open: false,
        };
        let p = VDur::from_secs(30);
        let counts = [None, None];
        assert!(!gate_opens(&slot, &[9, 9], &counts, Some(p), VTime::from_secs(39)));
        assert!(gate_opens(&slot, &[0, 0], &counts, Some(p), VTime::from_secs(40)));
    }

    /// The tuple-window gate demands `c + 1` arrivals past the snapshot on
    /// every tuple-windowed stream (the extra one absorbs the arriving
    /// tuple's own not-yet-counted position).
    #[test]
    fn tuple_window_gate_needs_full_window_turnover_per_stream() {
        let slot = HotSlot {
            key: 1,
            active: true,
            rr: 0,
            home: 0,
            promote_ts: VTime::ZERO,
            snapshot: vec![10, 20],
            gate_open: false,
        };
        let counts = [Some(4), Some(4)];
        assert!(!gate_opens(&slot, &[15, 24], &counts, None, VTime::ZERO));
        assert!(!gate_opens(&slot, &[14, 25], &counts, None, VTime::ZERO));
        assert!(gate_opens(&slot, &[15, 25], &counts, None, VTime::ZERO));
    }

    /// The dominant stream is the one with the most incident predicates
    /// (it is partitioned; everything else broadcasts), ties to the
    /// lowest index.
    #[test]
    fn dominant_stream_picks_most_incident_predicates() {
        use mstream_types::{Catalog, JoinQuery, StreamSchema};
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1"]));
        // Chain through R2: R2 has two incident predicates, R1/R3 one.
        let chain = JoinQuery::from_names(
            c.clone(),
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(10),
        )
        .unwrap();
        assert_eq!(dominant_stream(&chain), 1);
        // A symmetric pair ties; the lowest stream index wins.
        let mut c2 = Catalog::new();
        c2.add_stream(StreamSchema::new("L", &["k"]));
        c2.add_stream(StreamSchema::new("R", &["k"]));
        let pair =
            JoinQuery::from_names(c2, &[("L.k", "R.k")], WindowSpec::secs(10)).unwrap();
        assert_eq!(dominant_stream(&pair), 0);
    }

    /// Broadcast memory: broadcast streams keep their full window on every
    /// shard (replicated build sides), the dominant stream divides by S,
    /// and a global pool stays whole per shard.
    #[test]
    fn broadcast_memory_replicates_broadcast_windows() {
        assert_eq!(
            broadcast_memory(&MemoryMode::PerWindow(64), 4, 1, 3),
            MemoryMode::PerWindowEach(vec![64, 16, 64])
        );
        assert_eq!(
            broadcast_memory(&MemoryMode::PerWindowEach(vec![8, 12, 6]), 2, 0, 3),
            MemoryMode::PerWindowEach(vec![4, 12, 6])
        );
        assert_eq!(
            broadcast_memory(&MemoryMode::GlobalPool(100), 4, 0, 2),
            MemoryMode::GlobalPool(100)
        );
        // A single shard keeps the budget untouched.
        assert_eq!(
            broadcast_memory(&MemoryMode::PerWindow(64), 1, 0, 2),
            MemoryMode::PerWindow(64)
        );
    }
}
