//! The unified ingest API: arrivals in, join results out through a sink.
//!
//! Every way of feeding the engine reduces to one verb:
//!
//! ```text
//! engine.ingest(arrival, &mut sink) -> IngestOutcome
//! ```
//!
//! An [`Arrival`] is the raw event a source produces — stream, values,
//! timestamp. The engine mints it into a sequence-numbered tuple and runs
//! it through the operator, invoking the [`EmitSink`] for every join
//! result combination it completes. The returned [`IngestOutcome`] reports
//! what the operator did with it.
//!
//! Three sink adapters cover the common shapes:
//!
//! * [`CountSink`] — counts results (the cheapest; equals
//!   [`IngestOutcome::produced`]).
//! * [`VecSink`] — collects every result as owned tuples in stream order
//!   (what the audit harness and the sharded merge consume).
//! * [`FnSink`] — wraps any `FnMut(&Bindings)` closure (streaming
//!   aggregation, forwarding, printing); [`QueryFnSink`] is the
//!   query-aware variant for multi-query engines.
//!
//! Every emission is tagged with the [`QueryId`] of the standing query
//! that produced it. Single-query engines always emit under
//! [`QueryId::SOLO`]; the multi-query engine fans one arrival out to every
//! registered query and tags each result with its owner.

use mstream_join::Bindings;
use mstream_types::{QueryId, Row, StreamId, Tuple, VTime};

/// One raw stream event, before the engine assigns it a sequence number.
///
/// `ts` is the arrival timestamp in virtual time. In the common case the
/// tuple is also *processed* at `ts` ([`crate::ShedJoinEngine::ingest`]);
/// when an input queue delays it, processing happens later at the service
/// instant ([`crate::ShedJoinEngine::ingest_tuple`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Source stream.
    pub stream: StreamId,
    /// Attribute values, matching the stream's schema arity (stored
    /// inline for arities up to [`mstream_types::ROW_INLINE`]).
    pub values: Row,
    /// Arrival instant in virtual time.
    pub ts: VTime,
}

impl Arrival {
    /// Convenience constructor.
    pub fn new(stream: StreamId, values: impl Into<Row>, ts: VTime) -> Self {
        Arrival {
            stream,
            values: values.into(),
            ts,
        }
    }
}

/// How a delivered tuple participates in the join operator.
///
/// The sharded engine may deliver one logical arrival to several shards
/// (replicated build sides for hot keys, broadcast streams). Exactly one
/// delivery is [`IngestRole::FULL`]; the rest are replicas that keep the
/// shard's window/estimation state identical without double-emitting
/// results or double-counting the arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestRole {
    /// Probe the partner windows and emit join results.
    pub probe: bool,
    /// Count toward `processed` (an arrival's unique accounting delivery);
    /// otherwise the delivery counts as `replicated`.
    pub count_processed: bool,
}

impl IngestRole {
    /// The classic single-engine path: probe, emit, and account.
    pub const FULL: IngestRole = IngestRole {
        probe: true,
        count_processed: true,
    };
    /// Build-side copy: store only (no probe, no `processed` credit).
    pub const STORE_REPLICA: IngestRole = IngestRole {
        probe: false,
        count_processed: false,
    };
    /// Probing copy that is not the arrival's accounting delivery — a
    /// broadcast-stream tuple probing a shard that does not own its FULL
    /// delivery (it still stores and probes there, since that shard holds
    /// partner tuples no other shard has).
    pub const PROBE_REPLICA: IngestRole = IngestRole {
        probe: true,
        count_processed: false,
    };
}

/// What the operator did with one ingested arrival.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Join result combinations this arrival completed (each was passed to
    /// the sink).
    pub produced: u64,
    /// Whether the arriving tuple is resident in its window afterwards
    /// (`false` means it was itself the lowest-priority tuple and was shed
    /// on arrival).
    pub stored: bool,
    /// Window-resident tuples evicted to make room, counting the arriving
    /// tuple itself if it was dismissed immediately.
    pub shed: u64,
}

/// A consumer of join results.
///
/// The engine calls [`EmitSink::emit`] once per result combination, with
/// the emitting query's [`QueryId`] and a zero-copy [`Bindings`] view
/// valid only for the duration of the call — sinks that keep results must
/// copy what they need. Single-query engines always pass
/// [`QueryId::SOLO`]; sinks that serve one query may ignore the id.
pub trait EmitSink {
    /// Receives one join result emitted by query `query`.
    fn emit(&mut self, query: QueryId, bindings: &Bindings<'_>);
}

/// Counts results and otherwise discards them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountSink {
    /// Results received so far.
    pub produced: u64,
}

impl EmitSink for CountSink {
    fn emit(&mut self, _query: QueryId, _bindings: &Bindings<'_>) {
        self.produced += 1;
    }
}

/// Collects every result as owned tuples, one row per result, tuples in
/// stream order (`row[k]` is the participating tuple of stream `k`).
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// Collected result rows.
    pub rows: Vec<Vec<Tuple>>,
}

impl EmitSink for VecSink {
    fn emit(&mut self, _query: QueryId, bindings: &Bindings<'_>) {
        let n = bindings.n_streams();
        let row = (0..n)
            .map(|k| bindings.tuple(StreamId(k)).clone())
            .collect();
        self.rows.push(row);
    }
}

/// Adapts any `FnMut(&Bindings)` closure into a sink, discarding the
/// emitting query id (the right shape for single-query consumers).
pub struct FnSink<F: FnMut(&Bindings<'_>)>(pub F);

impl<F: FnMut(&Bindings<'_>)> EmitSink for FnSink<F> {
    fn emit(&mut self, _query: QueryId, bindings: &Bindings<'_>) {
        (self.0)(bindings);
    }
}

/// Adapts any `FnMut(QueryId, &Bindings)` closure into a query-aware sink
/// for multi-query engines.
pub struct QueryFnSink<F: FnMut(QueryId, &Bindings<'_>)>(pub F);

impl<F: FnMut(QueryId, &Bindings<'_>)> EmitSink for QueryFnSink<F> {
    fn emit(&mut self, query: QueryId, bindings: &Bindings<'_>) {
        (self.0)(query, bindings);
    }
}

/// Collects result rows per query: `rows[q]` holds query `q`'s results in
/// emission order, each row being the participating tuples in the query's
/// local stream order. The engine's query-id space is dense, so a `Vec`
/// indexed by [`QueryId::index`] suffices (removed queries leave an empty
/// slot).
#[derive(Clone, Debug, Default)]
pub struct QueryRowsSink {
    /// Collected rows, indexed by query id.
    pub rows: Vec<Vec<Vec<Tuple>>>,
}

impl EmitSink for QueryRowsSink {
    fn emit(&mut self, query: QueryId, bindings: &Bindings<'_>) {
        if self.rows.len() <= query.index() {
            self.rows.resize_with(query.index() + 1, Vec::new);
        }
        let n = bindings.n_streams();
        let row = (0..n)
            .map(|k| bindings.tuple(StreamId(k)).clone())
            .collect();
        self.rows[query.index()].push(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::Value;

    #[test]
    fn arrival_constructor_round_trips() {
        let a = Arrival::new(StreamId(1), vec![Value(3)], VTime::from_secs(2));
        assert_eq!(a.stream, StreamId(1));
        assert_eq!(a.values, vec![Value(3)]);
        assert_eq!(a.ts, VTime::from_secs(2));
    }

    #[test]
    fn outcome_defaults_are_empty() {
        let o = IngestOutcome::default();
        assert_eq!(o.produced, 0);
        assert!(!o.stored);
        assert_eq!(o.shed, 0);
    }
}
