//! Sharded execution of the multi-query data plane.
//!
//! [`ShardedMultiEngine`] runs one [`MultiQueryEngine`] per worker thread
//! and routes each arrival **once**, by its partitioning key, to the shard
//! owning that key slice — every query interested in the arrival is then
//! served on that shard from the shared stores, so routing cost does not
//! grow with the number of registered queries.
//!
//! # Partitioning across a query set
//!
//! A multi-shard run needs every query to be key-partitionable
//! ([`Partitioning::ByKey`]) *and* all queries to agree on the partitioning
//! attribute of every global stream they share (otherwise a tuple would
//! have to live on two different shards for two different queries). When
//! either condition fails, the engine degrades to one shard and reports
//! why ([`ShardedMultiEngine::degraded`]) — the result is still exact,
//! just not parallel. Hot-key splitting and broadcast mode are
//! single-query affordances and are not applied here.
//!
//! # Runtime registration across shards
//!
//! [`ShardedMultiEngine::add_query`] / [`remove_query`] broadcast the
//! registration to every worker over the same FIFO channels that carry
//! tuples, so each worker observes the registration at exactly the same
//! point of its routed sub-trace — a query added mid-run sees, on every
//! shard, precisely the tuples routed after the broadcast. Pending expiry
//! ticks are flushed to **all** shards first, so tuple-based windows of
//! the new query never count pre-registration arrivals.

use crate::builder::BuildError;
use crate::engine::EngineConfig;
use crate::ingest::{Arrival, QueryRowsSink};
use crate::multi::{merge_into_catalog, MultiQueryEngine, QueryStats};
use crate::report::EngineMetrics;
use crate::shard::{split_bank, split_memory, splitmix64, Backpressure, ShardConfig};
use crossbeam::channel::{bounded, Receiver, Sender};
use mstream_shed_policies::ShedPolicy;
use mstream_types::{
    Catalog, Error, JoinQuery, Partitioning, QueryId, SeqNo, StreamId, Tuple, VTime, WindowSpec,
};
use std::cmp::Ordering;
use std::thread::JoinHandle;
use std::time::Instant;

/// One coordinator→worker message. Registration changes ride the same
/// FIFO channel as data, which is what makes their position in each
/// shard's sub-trace deterministic.
enum MultiMsg {
    /// A routed arrival (globally minted; processed at its own timestamp).
    Tuple(Tuple),
    /// Coalesced foreign-arrival counts per global stream, keeping
    /// tuple-based window expiry exact on shards that did not receive the
    /// arrivals.
    Ticks(Vec<(StreamId, u64)>),
    /// Register a new standing query (broadcast; workers assign the same
    /// dense id because they process the same registration sequence).
    Add(JoinQuery),
    /// Deregister a query (broadcast).
    Remove(QueryId),
}

/// What one worker hands back at the end of the run.
struct MultiWorkerOut {
    metrics: EngineMetrics,
    /// Per registered query id: produced/shed counters (`None` for
    /// removed queries).
    stats: Vec<Option<QueryStats>>,
    rows: Option<Vec<Vec<Vec<Tuple>>>>,
    resident: usize,
}

/// The merged outcome of a sharded multi-query run.
#[derive(Clone, Debug)]
pub struct MultiRunReport {
    /// Per registered query id: produced/shed counters summed across
    /// shards (removed queries report zeros).
    pub stats: Vec<QueryStats>,
    /// Combined engine counters across all workers.
    pub metrics: EngineMetrics,
    /// Per query id, every result row (tuples in the query's local stream
    /// order), merged across shards into canonical per-stream-seq order —
    /// only when [`ShardConfig::collect_rows`] was set.
    pub rows: Option<Vec<Vec<Vec<Tuple>>>>,
    /// Final resident tuples summed over all shards.
    pub resident: usize,
    /// Arrivals dropped at full worker channels under
    /// [`Backpressure::Shed`].
    pub shed_channel: u64,
    /// Workers the run actually used.
    pub shards: usize,
    /// Why a multi-shard request fell back to one shard, if it did.
    pub degraded: Option<String>,
    /// Coordinator wall-clock for the whole run.
    pub wall_time: std::time::Duration,
}

/// Computes the per-global-stream partitioning attribute the whole query
/// set agrees on, or the reason it cannot ([`Err`] degrades to one shard).
/// `key_of` is indexed by global stream id; streams no query partitions on
/// stay `None` (unreachable for arrivals, since every registered stream
/// belongs to some query).
fn key_plan(
    catalog_len: usize,
    sets: &[(Vec<StreamId>, &JoinQuery)],
) -> Result<Vec<Option<usize>>, String> {
    let mut key_of: Vec<Option<usize>> = vec![None; catalog_len];
    for (gstream_of, query) in sets {
        match query.partitioning() {
            Partitioning::ByKey { key_attrs } => {
                for (k, &g) in gstream_of.iter().enumerate() {
                    let attr = key_attrs[k];
                    match key_of[g.index()] {
                        None => key_of[g.index()] = Some(attr),
                        Some(prev) if prev == attr => {}
                        Some(prev) => {
                            return Err(format!(
                                "stream {g} is partitioned on attr {prev} by one query \
                                 and attr {attr} by another"
                            ));
                        }
                    }
                }
            }
            Partitioning::Single { reason } => {
                return Err(format!("a registered query is not partitionable: {reason}"));
            }
        }
    }
    Ok(key_of)
}

/// N standing queries over worker-sharded shared state. Construction goes
/// through [`crate::EngineBuilder::build_multi_sharded`]; see the module
/// docs for the partitioning and registration model.
pub struct ShardedMultiEngine {
    shards: usize,
    degraded: Option<String>,
    /// The coordinator's mirror of every worker's merged catalog (they
    /// evolve in lockstep through [`ShardedMultiEngine::add_query`]).
    catalog: Catalog,
    /// Global stream → partitioning attribute (multi-shard runs only).
    key_of: Vec<Option<usize>>,
    /// Whether any registered query uses tuple-based windows (and S > 1),
    /// requiring foreign-arrival ticks.
    needs_ticks: bool,
    backpressure: Backpressure,
    senders: Vec<Sender<MultiMsg>>,
    handles: Vec<JoinHandle<MultiWorkerOut>>,
    /// `pending[shard][gstream]`: arrivals routed elsewhere since that
    /// shard's last delivery (flushed ahead of its next message).
    pending: Vec<Vec<u64>>,
    /// Dense query ids handed out so far (mirrors every worker).
    n_registered: usize,
    next_seq: SeqNo,
    shed_channel: u64,
    started: Instant,
}

impl ShardedMultiEngine {
    /// Spawns the workers, each owning a full [`MultiQueryEngine`] over
    /// `1/S` of the key space (and `1/S` of the memory and sketch
    /// budgets). Prefer [`crate::EngineBuilder::build_multi_sharded`].
    pub(crate) fn new(
        queries: Vec<JoinQuery>,
        policy: Box<dyn ShedPolicy>,
        config: EngineConfig,
        shard: ShardConfig,
    ) -> Result<Self, BuildError> {
        if queries.is_empty() {
            return Err(BuildError::NoQueries);
        }
        if shard.shards == 0 {
            return Err(BuildError::ZeroShards);
        }
        if shard.channel_capacity == 0 {
            return Err(BuildError::Engine(Error::InvalidConfig(
                "shard channel capacity must be >= 1".into(),
            )));
        }
        let mut catalog = Catalog::new();
        let mut sets = Vec::with_capacity(queries.len());
        for q in &queries {
            let gstream_of = merge_into_catalog(&mut catalog, q)?;
            sets.push((gstream_of, q));
        }
        let (shards, degraded, key_of) = if shard.shards == 1 {
            (1, None, vec![None; catalog.len()])
        } else {
            match key_plan(catalog.len(), &sets) {
                Ok(key_of) => (shard.shards, None, key_of),
                Err(reason) => (1, Some(reason), vec![None; catalog.len()]),
            }
        };
        drop(sets);
        let needs_ticks = shards > 1
            && queries
                .iter()
                .any(|q| q.windows().iter().any(|w| matches!(w, WindowSpec::Tuples(_))));
        let memory = split_memory(&config.memory, shards);
        let bank = split_bank(&config.bank, shards);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut worker_config = config.clone();
            worker_config.memory = memory.clone();
            worker_config.bank = bank;
            worker_config.disorder = None;
            // A 1-shard run keeps the master seed so it is bit-identical
            // to the in-process multi engine; multi-shard workers get
            // independent derived streams.
            if shards > 1 {
                worker_config.seed = splitmix64(config.seed ^ (i as u64 + 1));
            }
            let engine = MultiQueryEngine::new(queries.clone(), policy.clone(), worker_config)?;
            let (tx, rx) = bounded(shard.channel_capacity);
            let collect_rows = shard.collect_rows;
            let batch_ingest = shard.batch_ingest;
            handles.push(std::thread::spawn(move || {
                multi_worker_loop(engine, rx, collect_rows, batch_ingest)
            }));
            senders.push(tx);
        }
        let n_registered = queries.len();
        Ok(ShardedMultiEngine {
            shards,
            degraded,
            catalog,
            key_of,
            needs_ticks,
            backpressure: shard.backpressure,
            senders,
            handles,
            pending: vec![Vec::new(); shards],
            n_registered,
            next_seq: SeqNo(0),
            shed_channel: 0,
            started: Instant::now(),
        })
    }

    /// Workers the engine actually runs on (1 when the query set
    /// degraded).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Why a multi-shard request fell back to one shard, if it did.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// The merged global catalog arrivals are addressed against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The global id of the stream named `name`.
    pub fn stream_id(&self, name: &str) -> Option<StreamId> {
        self.catalog
            .iter()
            .find(|(_, s)| s.name == name)
            .map(|(g, _)| g)
    }

    /// Query ids handed out so far (dense; includes removed queries).
    pub fn n_registered(&self) -> usize {
        self.n_registered
    }

    /// Registers a new standing query on every shard and returns its id
    /// (the same id each worker assigns, since registrations ride the
    /// same FIFO order everywhere).
    ///
    /// On a multi-shard run the query must be key-partitionable and agree
    /// with the running set on every shared stream's partitioning
    /// attribute — there is no online re-partitioning, so an incompatible
    /// query is rejected rather than degraded.
    pub fn add_query(&mut self, query: JoinQuery) -> Result<QueryId, BuildError> {
        let snapshot = self.catalog.clone();
        let gstream_of = merge_into_catalog(&mut self.catalog, &query)?;
        if self.shards > 1 {
            let sets = [(gstream_of.clone(), &query)];
            let mut grown = self.key_of.clone();
            grown.resize(self.catalog.len(), None);
            match key_plan(self.catalog.len(), &sets) {
                Ok(new_keys) => {
                    for (g, attr) in new_keys.into_iter().enumerate() {
                        match (grown[g], attr) {
                            (Some(prev), Some(a)) if prev != a => {
                                self.catalog = snapshot;
                                return Err(BuildError::Engine(Error::InvalidConfig(format!(
                                    "added query partitions stream {} on attr {a}, \
                                     running set uses attr {prev}",
                                    StreamId(g)
                                ))));
                            }
                            (None, Some(a)) => grown[g] = Some(a),
                            _ => {}
                        }
                    }
                }
                Err(reason) => {
                    self.catalog = snapshot;
                    return Err(BuildError::Engine(Error::InvalidConfig(format!(
                        "cannot add to a {}-shard run: {reason}",
                        self.shards
                    ))));
                }
            }
            self.key_of = grown;
        } else {
            self.key_of.resize(self.catalog.len(), None);
        }
        self.needs_ticks |= self.shards > 1
            && query
                .windows()
                .iter()
                .any(|w| matches!(w, WindowSpec::Tuples(_)));
        // New-stream pending lanes default to zero on demand (Vec grows in
        // `note_pending`), nothing to do here.
        let qid = QueryId(self.n_registered as u32);
        self.n_registered += 1;
        self.broadcast(|| MultiMsg::Add(query.clone()));
        Ok(qid)
    }

    /// Deregisters `id` on every shard. Unknown ids are a worker-side
    /// no-op, so this never fails at the coordinator.
    pub fn remove_query(&mut self, id: QueryId) {
        self.broadcast(|| MultiMsg::Remove(id));
    }

    /// Routes one arrival (addressed by **global** stream id) to the
    /// shard owning its key, flushing that shard's pending expiry ticks
    /// first. Single-shard runs (including degraded ones) route
    /// everything to worker 0.
    pub fn ingest(&mut self, arrival: Arrival) {
        let g = arrival.stream;
        assert!(
            g.index() < self.catalog.len(),
            "arrival stream {g} is not in the engine catalog"
        );
        let seq = self.next_seq;
        self.next_seq = seq.next();
        let tuple = Tuple::new(g, arrival.ts, seq, arrival.values);
        let target = match self.key_of[g.index()] {
            Some(attr) if self.shards > 1 => {
                (splitmix64(tuple.values[attr].0) % self.shards as u64) as usize
            }
            _ => 0,
        };
        if self.needs_ticks {
            for shard in 0..self.shards {
                if shard != target {
                    self.note_pending(shard, g);
                }
            }
            self.flush_pending(target);
        }
        if !self.send(target, MultiMsg::Tuple(tuple)) {
            // Channel-shed arrival: no shard processed it, but the shards
            // still tick so tuple-window expiry stays exact.
            self.shed_channel += 1;
            if self.needs_ticks {
                self.note_pending(target, g);
            }
        }
    }

    /// Ends the run: flushes trailing ticks, joins every worker, and
    /// merges their reports (rows per query in canonical per-stream-seq
    /// order when collected).
    pub fn finish(mut self) -> Result<MultiRunReport, Error> {
        for shard in 0..self.shards {
            self.flush_pending(shard);
        }
        self.senders.clear(); // Dropping the senders ends the worker loops.
        let handles = std::mem::take(&mut self.handles);
        let mut metrics = EngineMetrics::default();
        let mut stats = vec![QueryStats::default(); self.n_registered];
        let mut resident = 0usize;
        let mut per_worker_rows: Option<Vec<Vec<Vec<Vec<Tuple>>>>> = None;
        let mut failure: Option<Error> = None;
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(out) => {
                    metrics.merge(&out.metrics);
                    resident += out.resident;
                    for (q, s) in out.stats.iter().enumerate() {
                        if let Some(s) = s {
                            stats[q].produced += s.produced;
                            stats[q].shed += s.shed;
                        }
                    }
                    if let Some(rows) = out.rows {
                        per_worker_rows.get_or_insert_with(Vec::new).push(rows);
                    }
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&'static str>().copied())
                        .unwrap_or("non-string panic payload");
                    failure.get_or_insert(Error::Shard(format!("worker {i} panicked: {msg}")));
                }
            }
        }
        if let Some(err) = failure {
            return Err(err);
        }
        let rows = per_worker_rows.map(|per_worker| {
            let mut merged: Vec<Vec<Vec<Tuple>>> = vec![Vec::new(); self.n_registered];
            for worker in per_worker {
                for (q, mut rows) in worker.into_iter().enumerate() {
                    if q < merged.len() {
                        merged[q].append(&mut rows);
                    }
                }
            }
            // Each join combination is produced on exactly one shard, so
            // per-stream seq vectors are unique keys and this canonical
            // order is identical across shard counts.
            for rows in &mut merged {
                rows.sort_unstable_by(|a, b| row_seq_cmp(a, b));
            }
            merged
        });
        Ok(MultiRunReport {
            stats,
            metrics,
            rows,
            resident,
            shed_channel: self.shed_channel,
            shards: self.shards,
            degraded: self.degraded.clone(),
            wall_time: self.started.elapsed(),
        })
    }

    /// Records one foreign arrival of `g` for `shard`.
    fn note_pending(&mut self, shard: usize, g: StreamId) {
        let lanes = &mut self.pending[shard];
        if lanes.len() <= g.index() {
            lanes.resize(g.index() + 1, 0);
        }
        lanes[g.index()] += 1;
    }

    /// Sends `shard`'s pending tick summary, if any.
    fn flush_pending(&mut self, shard: usize) {
        if self.pending[shard].iter().all(|&c| c == 0) {
            return;
        }
        let ticks: Vec<(StreamId, u64)> = self.pending[shard]
            .iter_mut()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(g, c)| (StreamId(g), std::mem::take(c)))
            .collect();
        // Tick loss under Shed backpressure re-queues, keeping counters
        // exact whenever the channel drains again.
        if !self.send(shard, MultiMsg::Ticks(ticks.clone())) {
            for (g, n) in ticks {
                let lanes = &mut self.pending[shard];
                if lanes.len() <= g.index() {
                    lanes.resize(g.index() + 1, 0);
                }
                lanes[g.index()] += n;
            }
        }
    }

    /// Sends registration traffic to every shard, after flushing all
    /// pending ticks (so tuple-window state on each shard is exact at the
    /// registration point). Registration is never shed, even under
    /// [`Backpressure::Shed`] — it blocks.
    fn broadcast(&mut self, mut msg: impl FnMut() -> MultiMsg) {
        for shard in 0..self.shards {
            self.flush_pending(shard);
        }
        for shard in 0..self.shards {
            let _ = self.senders[shard].send(msg());
        }
    }

    /// Sends one message, honoring the backpressure mode. Returns whether
    /// the message was delivered (send errors only occur when a worker
    /// died; its panic is reported at [`ShardedMultiEngine::finish`]).
    fn send(&mut self, shard: usize, msg: MultiMsg) -> bool {
        match self.backpressure {
            Backpressure::Block => self.senders[shard].send(msg).is_ok(),
            Backpressure::Shed => self.senders[shard].try_send(msg).is_ok(),
        }
    }
}

/// Canonical result-row order: per-stream sequence numbers.
fn row_seq_cmp(a: &[Tuple], b: &[Tuple]) -> Ordering {
    a.iter().map(|t| t.seq).cmp(b.iter().map(|t| t.seq))
}

fn multi_worker_loop(
    mut engine: MultiQueryEngine,
    rx: Receiver<MultiMsg>,
    collect_rows: bool,
    batch_ingest: bool,
) -> MultiWorkerOut {
    /// Upper bound on one coalesced tuple run, so a saturated channel
    /// cannot starve the sink-clearing step or grow the scratch unbounded.
    const MAX_BATCH: usize = 64;
    let mut sink = QueryRowsSink::default();
    let mut pending: Vec<(Tuple, VTime)> = Vec::new();
    while let Ok(msg) = rx.recv() {
        // One received message may expand into two processing units: a
        // coalesced tuple run plus the control message that ended it.
        let mut next = Some(msg);
        while let Some(m) = next.take() {
            match m {
                MultiMsg::Tuple(tuple) => {
                    if batch_ingest {
                        let now = tuple.ts;
                        pending.push((tuple, now));
                        // Greedily drain consecutive routed tuples already
                        // queued in the channel. A control message ends the
                        // run and is processed after the flush — exactly
                        // its FIFO position in the sub-trace.
                        while pending.len() < MAX_BATCH {
                            match rx.try_recv() {
                                Ok(MultiMsg::Tuple(t)) => {
                                    let now = t.ts;
                                    pending.push((t, now));
                                }
                                Ok(other) => {
                                    next = Some(other);
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                        engine.ingest_tuple_batch(&mut pending, &mut sink);
                        #[cfg(feature = "audit")]
                        engine.check_invariants();
                    } else {
                        let now = tuple.ts;
                        engine.ingest_tuple(tuple, now, &mut sink);
                        #[cfg(feature = "audit")]
                        engine.check_invariants();
                    }
                }
                MultiMsg::Ticks(ticks) => {
                    for (g, n) in ticks {
                        engine.note_foreign_arrivals(g, n);
                    }
                }
                MultiMsg::Add(query) => {
                    engine
                        .add_query(query)
                        .expect("coordinator-validated registration");
                }
                MultiMsg::Remove(id) => {
                    engine.remove_query(id);
                }
            }
            if !collect_rows {
                for rows in &mut sink.rows {
                    rows.clear();
                }
            }
        }
    }
    let stats = (0..engine.n_registered())
        .map(|q| engine.query_stats(QueryId(q as u32)))
        .collect();
    let rows = collect_rows.then(|| {
        let mut rows = sink.rows;
        rows.resize_with(engine.n_registered(), Vec::new);
        rows
    });
    MultiWorkerOut {
        resident: engine.total_resident(),
        metrics: engine.metrics().clone(),
        stats,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use mstream_shed_policies::Fifo;
    use mstream_types::{Row, StreamSchema, VTime, Value};

    fn pair_query(l: &str, r: &str, secs: u64) -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new(l, &["k", "v"]));
        c.add_stream(StreamSchema::new(r, &["k", "v"]));
        JoinQuery::from_names(
            c,
            &[(&format!("{l}.k"), &format!("{r}.k"))],
            mstream_types::WindowSpec::secs(secs),
        )
        .unwrap()
    }

    fn build(queries: Vec<JoinQuery>, shards: usize) -> ShardedMultiEngine {
        let mut b = EngineBuilder::new_multi()
            .policy(Fifo)
            .capacity_per_window(1 << 16)
            .shards(shards)
            .shard_config(ShardConfig {
                shards,
                collect_rows: true,
                ..ShardConfig::default()
            });
        for q in queries {
            b.register(q).unwrap();
        }
        b.build_multi_sharded().unwrap()
    }

    fn trace(names: &[&str], len: u64) -> Vec<(String, Row, VTime)> {
        (0..len)
            .map(|i| {
                let s = names[(i % names.len() as u64) as usize];
                let row: Row = vec![Value(i % 3), Value(i % 5)].into();
                (s.to_string(), row, VTime::from_secs(i))
            })
            .collect()
    }

    fn run(mut e: ShardedMultiEngine, t: &[(String, Row, VTime)]) -> MultiRunReport {
        for (name, row, ts) in t {
            let g = e.stream_id(name).unwrap();
            e.ingest(Arrival::new(g, row.clone(), *ts));
        }
        e.finish().unwrap()
    }

    fn keys(rows: &[Vec<Tuple>]) -> Vec<Vec<(VTime, Row)>> {
        rows.iter()
            .map(|r| r.iter().map(|t| (t.ts, t.values.clone())).collect())
            .collect()
    }

    #[test]
    fn sharded_matches_single_shard_per_query() {
        let queries = vec![pair_query("L", "R", 600), pair_query("A", "B", 600)];
        let t = trace(&["L", "R", "A", "B"], 200);
        let r1 = run(build(queries.clone(), 1), &t);
        let r2 = run(build(queries, 2), &t);
        assert_eq!(r2.shards, 2);
        assert!(r2.degraded.is_none());
        let (rows1, rows2) = (r1.rows.unwrap(), r2.rows.unwrap());
        for q in 0..2 {
            assert!(!rows1[q].is_empty());
            assert_eq!(keys(&rows1[q]), keys(&rows2[q]), "query {q} diverged");
        }
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn runtime_add_and_remove_propagate_to_all_shards() {
        let mut e = build(vec![pair_query("L", "R", 600)], 2);
        let t = trace(&["L", "R"], 120);
        let (head, tail) = t.split_at(60);
        for (name, row, ts) in head {
            let g = e.stream_id(name).unwrap();
            e.ingest(Arrival::new(g, row.clone(), *ts));
        }
        let q1 = e.add_query(pair_query("L", "R", 600)).unwrap();
        assert_eq!(q1, QueryId(1));
        for (name, row, ts) in tail {
            let g = e.stream_id(name).unwrap();
            e.ingest(Arrival::new(g, row.clone(), *ts));
        }
        e.remove_query(QueryId(0));
        let report = e.finish().unwrap();
        let rows = report.rows.unwrap();
        // The suffix-only query matches a 1-shard run over the suffix.
        let solo = run(build(vec![pair_query("L", "R", 600)], 1), tail);
        assert_eq!(keys(&rows[1]), keys(&solo.rows.unwrap()[0]));
        // Removed queries drop their counters (stats report zeros), but
        // the rows they emitted before removal were already delivered.
        assert_eq!(report.stats[0], QueryStats::default());
        assert!(!rows[0].is_empty(), "removed query ran until removal");
    }

    #[test]
    fn conflicting_partitioning_degrades_to_one_shard() {
        // Q0 partitions L on attr 0; Q1 joins L.v (attr 1) with Z.k.
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k", "v"]));
        c.add_stream(StreamSchema::new("Z", &["k", "v"]));
        let clash =
            JoinQuery::from_names(c, &[("L.v", "Z.k")], mstream_types::WindowSpec::secs(600))
                .unwrap();
        let e = build(vec![pair_query("L", "R", 600), clash], 4);
        assert_eq!(e.shards(), 1);
        assert!(e.degraded().is_some());
    }

    #[test]
    fn incompatible_runtime_add_is_rejected_on_multi_shard() {
        let mut e = build(vec![pair_query("L", "R", 600)], 2);
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k", "v"]));
        c.add_stream(StreamSchema::new("Z", &["k", "v"]));
        let clash =
            JoinQuery::from_names(c, &[("L.v", "Z.k")], mstream_types::WindowSpec::secs(600))
                .unwrap();
        assert!(e.add_query(clash).is_err());
        assert_eq!(e.n_registered(), 1, "failed add leaves the id space alone");
        let t = trace(&["L", "R"], 40);
        let report = run(e, &t);
        assert!(report.stats[0].produced > 0);
    }
}
