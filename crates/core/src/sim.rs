//! The discrete-event simulation driver (paper §2, Figure 1).
//!
//! The model has two rates: tuples arrive at `k` per second (globally,
//! interleaved across streams by the trace) and the join operator services
//! `l` per second. When `k ≤ l` the queue never forms and every tuple is
//! processed at its arrival instant; when `k > l` (Figure 6 uses `k = 5l`)
//! a bounded queue builds up in front of the operator and sheds by the
//! active policy's queue priority.
//!
//! Everything runs on virtual time, so runs are exactly reproducible; the
//! wall-clock time the engine spends processing is measured separately
//! (Figure 3).

use crate::engine::ShedJoinEngine;
use crate::ingest::{Arrival, FnSink};
use crate::report::RunReport;
use mstream_agg::{BucketSeries, HistBuckets};
use mstream_join::ExactJoin;
use mstream_types::{JoinQuery, StreamId, VDur, VTime};
use mstream_window::ShedQueue;
use mstream_workload::Trace;
use std::time::Instant;

/// Arrival / service model for one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Global arrival rate `k` in tuples per second (the trace's streams
    /// share it in their interleaved order).
    pub arrival_rate: f64,
    /// Join service rate `l` in tuples per second; `None` models an
    /// operator fast enough that the queue never forms.
    pub service_rate: Option<f64>,
    /// Input-queue capacity in tuples (only used when `service_rate` is
    /// set; the paper's overload experiment keeps 100).
    pub queue_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            arrival_rate: 10.0,
            service_rate: None,
            queue_capacity: 100,
        }
    }
}

/// What to collect during a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunOptions {
    /// The arrival/service model.
    pub sim: SimConfig,
    /// Record output counts per bucket of this width (Figure 5).
    pub output_bucket: Option<VDur>,
    /// Collect the value of this `(stream, attribute)` from every emitted
    /// result tuple (Figure 7's aggregation input).
    pub agg_attr: Option<(StreamId, usize)>,
    /// Bucket width for the collected aggregate values.
    pub agg_bucket: VDur,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            sim: SimConfig::default(),
            output_bucket: None,
            agg_attr: None,
            agg_bucket: VDur::from_secs(500),
        }
    }
}

/// Runs `trace` through a shedding engine under the given model.
///
/// Each arrival clones `item.values`, which for inline arities (≤
/// [`mstream_types::ROW_INLINE`]) is a plain [`mstream_types::Row`] copy —
/// replaying a trace allocates nothing per item.
pub fn run_trace(engine: &mut ShedJoinEngine, trace: &Trace, opts: &RunOptions) -> RunReport {
    let dt = VDur::from_rate(opts.sim.arrival_rate);
    let mut series = opts.output_bucket.map(BucketSeries::new);
    let mut aggs = opts.agg_attr.map(|_| HistBuckets::new(opts.agg_bucket));
    let agg_attr = opts.agg_attr;
    let mut end_time = VTime::ZERO;
    let started = Instant::now();
    match opts.sim.service_rate {
        None => {
            // Underload: process at arrival instants.
            for (i, item) in trace.items.iter().enumerate() {
                let now = VTime::ZERO + dt.mul(i as u64);
                let aggs_ref = &mut aggs;
                let outcome = engine.ingest(
                    Arrival::new(item.stream, item.values.clone(), now),
                    &mut FnSink(|b: &mstream_join::Bindings<'_>| {
                        if let (Some(buckets), Some((s, a))) = (aggs_ref.as_mut(), agg_attr) {
                            buckets.add(now, b.value(s, a).raw());
                        }
                    }),
                );
                if let Some(series) = series.as_mut() {
                    series.add(now, outcome.produced);
                }
                end_time = now;
            }
            // End of trace: drain the event-time reorder buffers (no-op
            // without a disorder bound). Flushed results land in the bucket
            // of the last arrival instant.
            let aggs_ref = &mut aggs;
            let outcome = engine.flush(&mut FnSink(|b: &mstream_join::Bindings<'_>| {
                if let (Some(buckets), Some((s, a))) = (aggs_ref.as_mut(), agg_attr) {
                    buckets.add(end_time, b.value(s, a).raw());
                }
            }));
            if let Some(series) = series.as_mut() {
                if outcome.produced > 0 {
                    series.add(end_time, outcome.produced);
                }
            }
        }
        Some(l) => {
            let svc = VDur::from_rate(l);
            let mut queue = ShedQueue::new(opts.sim.queue_capacity);
            let mut server_free = VTime::ZERO;
            let mut last_arrival = VTime::ZERO;
            for (i, item) in trace.items.iter().enumerate() {
                let t_arr = VTime::ZERO + dt.mul(i as u64);
                last_arrival = t_arr;
                drain_queue(
                    engine,
                    &mut queue,
                    &mut server_free,
                    svc,
                    Some(t_arr),
                    &mut series,
                    &mut aggs,
                    agg_attr,
                    &mut end_time,
                );
                let tuple = engine.mint(Arrival::new(item.stream, item.values.clone(), t_arr));
                let score = engine.queue_score(&tuple, t_arr);
                let victim_mode = engine.queue_victim();
                let dropped = queue.offer(tuple, score, victim_mode, engine.rng_mut());
                if dropped.is_some() {
                    engine.note_queue_shed();
                }
            }
            // Drain whatever survived the arrival phase.
            let _ = last_arrival;
            drain_queue(
                engine,
                &mut queue,
                &mut server_free,
                svc,
                None,
                &mut series,
                &mut aggs,
                agg_attr,
                &mut end_time,
            );
        }
    }
    RunReport {
        metrics: engine.metrics().clone(),
        series,
        agg_values: aggs,
        end_time,
        wall_time: started.elapsed(),
        ..Default::default()
    }
}

/// Services queued tuples until `until` (or until empty when `None`).
#[allow(clippy::too_many_arguments)]
fn drain_queue(
    engine: &mut ShedJoinEngine,
    queue: &mut ShedQueue,
    server_free: &mut VTime,
    svc: VDur,
    until: Option<VTime>,
    series: &mut Option<BucketSeries>,
    aggs: &mut Option<HistBuckets>,
    agg_attr: Option<(StreamId, usize)>,
    end_time: &mut VTime,
) {
    while let Some(head) = queue.peek_front() {
        // Service can start once the server is free and the tuple exists.
        let start = (*server_free).max(head.ts);
        if let Some(limit) = until {
            if start >= limit {
                break;
            }
        }
        let tuple = queue.pop_front().expect("peeked tuple present");
        let outcome = engine.ingest_tuple(
            tuple,
            start,
            &mut FnSink(|b: &mstream_join::Bindings<'_>| {
                if let (Some(buckets), Some((s, a))) = (aggs.as_mut(), agg_attr) {
                    buckets.add(start, b.value(s, a).raw());
                }
            }),
        );
        if let Some(series) = series.as_mut() {
            series.add(start, outcome.produced);
        }
        *server_free = start + svc;
        *end_time = start;
    }
}

/// Runs `trace` through the exact (unbounded, unshedded) reference join on
/// the same arrival timeline, collecting the same observables. This is the
/// ground truth against which shedding runs are compared; service-rate
/// limits do not apply (the true answer is defined by arrivals alone).
pub fn run_exact_trace(query: &JoinQuery, trace: &Trace, opts: &RunOptions) -> RunReport {
    let dt = VDur::from_rate(opts.sim.arrival_rate);
    let mut join = ExactJoin::new(query.clone());
    let mut series = opts.output_bucket.map(BucketSeries::new);
    let mut aggs = opts.agg_attr.map(|_| HistBuckets::new(opts.agg_bucket));
    let agg_attr = opts.agg_attr;
    let mut end_time = VTime::ZERO;
    let started = Instant::now();
    for (i, item) in trace.items.iter().enumerate() {
        let now = VTime::ZERO + dt.mul(i as u64);
        let aggs_ref = &mut aggs;
        let produced = join.process_each(item.stream, item.values.clone(), now, |b| {
            if let (Some(buckets), Some((s, a))) = (aggs_ref.as_mut(), agg_attr) {
                buckets.add(now, b.value(s, a).raw());
            }
        });
        if let Some(series) = series.as_mut() {
            series.add(now, produced);
        }
        end_time = now;
    }
    let mut report = RunReport {
        series,
        agg_values: aggs,
        end_time,
        wall_time: started.elapsed(),
        ..Default::default()
    };
    report.metrics.total_output = join.total_output();
    report.metrics.processed = trace.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, MemoryMode};
    use mstream_shed_policies::{Fifo, MSketch};
    use mstream_sketch::BankConfig;
    use mstream_types::{Catalog, StreamSchema, WindowSpec};
    use mstream_workload::{RegionsConfig, RegionsGenerator};

    fn chain3(window_secs: u64) -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(window_secs),
        )
        .unwrap()
    }

    fn small_trace() -> Trace {
        RegionsGenerator::new(RegionsConfig {
            n_relations: 3,
            arity: 2,
            domain: 30,
            n_regions: 3,
            volume: 60,
            z_inter: 1.0,
            z_intra: (1.0, 1.5),
            center_jitter: 0,
            anchor_grid: Some(5),
            tuples_per_relation: 300,
            feed: mstream_workload::FeedOrder::Stationary,
            // Seed chosen so the generated regions overlap on BOTH chain
            // predicates under the vendored deterministic RNG (seed 21's
            // layout left R2.A2 and R3.A1 disjoint, a zero-output join).
            seed: 7,
        })
        .unwrap()
        .generate()
    }

    fn engine(query: JoinQuery, capacity: usize) -> ShedJoinEngine {
        ShedJoinEngine::new(
            query,
            Box::new(MSketch),
            EngineConfig {
                memory: MemoryMode::PerWindow(capacity),
                bank: BankConfig {
                    s1: 30,
                    s2: 1,
                    seed: 1,
                },
                epoch: None,
                seed: 2,
                disorder: None,
                score_cache: None,
            },
        )
        .unwrap()
    }

    #[test]
    fn underload_run_matches_exact_with_big_memory() {
        let query = chain3(100);
        let trace = small_trace();
        let opts = RunOptions {
            sim: SimConfig {
                arrival_rate: 10.0,
                service_rate: None,
                queue_capacity: 100,
            },
            ..Default::default()
        };
        let mut e = engine(query.clone(), 100_000);
        let shed = run_trace(&mut e, &trace, &opts);
        let exact = run_exact_trace(&query, &trace, &opts);
        assert_eq!(shed.total_output(), exact.total_output());
        assert!(exact.total_output() > 0);
        assert_eq!(shed.metrics.shed_window, 0);
        assert_eq!(shed.metrics.shed_queue, 0);
    }

    #[test]
    fn series_totals_agree_with_metrics() {
        let query = chain3(100);
        let trace = small_trace();
        let opts = RunOptions {
            output_bucket: Some(VDur::from_secs(10)),
            ..Default::default()
        };
        let mut e = engine(query, 64);
        let report = run_trace(&mut e, &trace, &opts);
        let series = report.series.as_ref().unwrap();
        assert_eq!(series.total(), report.total_output());
        assert!(report.end_time > VTime::ZERO);
    }

    #[test]
    fn overload_forms_queue_and_sheds() {
        let query = chain3(100);
        let trace = small_trace();
        // Service 5x slower than arrivals with a tiny queue: the queue must
        // shed most of the input.
        let opts = RunOptions {
            sim: SimConfig {
                arrival_rate: 10.0,
                service_rate: Some(2.0),
                queue_capacity: 20,
            },
            ..Default::default()
        };
        let mut e = engine(query, 1_000);
        let report = run_trace(&mut e, &trace, &opts);
        assert!(report.metrics.shed_queue > 0, "queue must shed");
        let admitted = report.metrics.processed;
        assert_eq!(
            admitted + report.metrics.shed_queue,
            trace.len() as u64,
            "every arrival is processed or shed"
        );
        // The server finishes after the last arrival (it lags behind).
        let arrival_span = trace.len() as f64 / 10.0;
        assert!(report.end_time.as_secs_f64() > arrival_span);
    }

    #[test]
    fn underload_service_rate_keeps_queue_empty() {
        let query = chain3(100);
        let trace = small_trace();
        // Service much faster than arrivals: nothing is shed even with a
        // tiny queue.
        let opts = RunOptions {
            sim: SimConfig {
                arrival_rate: 5.0,
                service_rate: Some(1000.0),
                queue_capacity: 4,
            },
            ..Default::default()
        };
        let mut e = engine(query.clone(), 100_000);
        let report = run_trace(&mut e, &trace, &opts);
        assert_eq!(report.metrics.shed_queue, 0);
        // And output equals the exact result on the same arrival timeline
        // (service delay is < one arrival gap, so window contents match).
        let exact = run_exact_trace(&query, &trace, &opts);
        assert_eq!(report.total_output(), exact.total_output());
    }

    #[test]
    fn agg_values_collected_per_bucket() {
        let query = chain3(100);
        let trace = small_trace();
        let opts = RunOptions {
            agg_attr: Some((StreamId(0), 1)),
            agg_bucket: VDur::from_secs(20),
            ..Default::default()
        };
        let mut e = engine(query.clone(), 100_000);
        let report = run_trace(&mut e, &trace, &opts);
        let vals = report.agg_values.as_ref().unwrap();
        assert_eq!(
            vals.total_samples(),
            report.total_output(),
            "one sample per result tuple"
        );
        // The exact run collects the same number.
        let exact = run_exact_trace(&query, &trace, &opts);
        assert_eq!(
            exact.agg_values.as_ref().unwrap().total_samples(),
            exact.total_output()
        );
    }

    #[test]
    fn shed_run_is_subset_of_exact_for_max_subset_policy() {
        let query = chain3(100);
        let trace = small_trace();
        let opts = RunOptions::default();
        let mut e = engine(query.clone(), 24);
        let shed = run_trace(&mut e, &trace, &opts);
        let exact = run_exact_trace(&query, &trace, &opts);
        assert!(shed.total_output() <= exact.total_output());
        assert!(shed.total_output() > 0, "shedding should not starve output");
        assert!(shed.metrics.shed_window > 0);
    }

    #[test]
    fn fifo_baseline_runs_in_overload() {
        let query = chain3(50);
        let trace = small_trace();
        let opts = RunOptions {
            sim: SimConfig {
                arrival_rate: 20.0,
                service_rate: Some(4.0),
                queue_capacity: 10,
            },
            ..Default::default()
        };
        let mut e = ShedJoinEngine::new(
            query,
            Box::new(Fifo),
            EngineConfig {
                memory: MemoryMode::PerWindow(64),
                ..Default::default()
            },
        )
        .unwrap();
        let report = run_trace(&mut e, &trace, &opts);
        assert!(report.metrics.shed_queue > 0);
        assert!(report.metrics.processed > 0);
    }
}
