//! The shedding multi-way join engine (paper §4, Algorithm 1).

use crate::ingest::{Arrival, EmitSink, IngestOutcome, IngestRole};
use crate::report::EngineMetrics;
use mstream_join::{probe_each, ProbePlan};
use mstream_shed_policies::{clamp_score, PriorityCtx, Requirements, ShedPolicy};
use mstream_sketch::{BankConfig, EpochSpec, TumblingFreq, TumblingSketches};
use mstream_types::{
    JoinQuery, QueryId, Result, SeqNo, StreamId, Tuple, VDur, VTime, WindowSpec,
};
use mstream_window::{QueueVictim, ReorderBuffer, Slot, WindowStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// How window memory is allocated across streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemoryMode {
    /// The same fixed number of tuples for every window (the allocation
    /// used in all of the paper's reported experiments).
    PerWindow(usize),
    /// An explicit per-stream allocation.
    PerWindowEach(Vec<usize>),
    /// One shared pool: windows grow freely but when the total exceeds the
    /// pool, the globally least-priority tuple (across all windows) is
    /// evicted — the variable-allocation variant the paper tried and found
    /// "not so significant" (§5.1.1); reproduced as an ablation.
    GlobalPool(usize),
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Window memory allocation.
    pub memory: MemoryMode,
    /// AGMS sketch sizing (only materialized if the policy needs sketches).
    pub bank: BankConfig,
    /// Tumbling-epoch discipline; `None` derives the paper's default
    /// (epoch length = join-window length `p`, or per-stream tuple counts
    /// for tuple-based windows).
    pub epoch: Option<EpochSpec>,
    /// Seed for all engine-internal randomness.
    pub seed: u64,
    /// Bounded-disorder event-time front end (DESIGN.md §13). `None` (the
    /// default) keeps the legacy arrival-time semantics: timestamps are
    /// trusted as given, monotone or not, and processing happens at each
    /// arrival's own timestamp. `Some(k)` arms per-stream reorder buffers:
    /// arrivals are admitted while `ts >= watermark` (the cross-stream
    /// minimum high-water mark minus `k`), released to the operator in
    /// `(ts, admission)` order as the watermark advances, and dropped with
    /// [`EngineMetrics::late_dropped`] accounting once later than the
    /// bound. `Some(VDur::ZERO)` is valid: no lateness tolerance, but
    /// cross-stream timestamp alignment still applies.
    pub disorder: Option<VDur>,
    /// Epoch-memoized productivity scoring (DESIGN.md §16). `None` (the
    /// default) defers to the process-wide `MSTREAM_SCORE_CACHE`
    /// environment pin; `Some(on)` overrides it for this engine instance
    /// (the audit harness A/B-compares cached and uncached runs in one
    /// process). Cached and uncached runs are bit-identical by
    /// construction — the memo stores the exact `f64` under an exact key.
    pub score_cache: Option<bool>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            memory: MemoryMode::PerWindow(1024),
            bank: BankConfig::default(),
            epoch: None,
            seed: 0xEA51,
            disorder: None,
            score_cache: None,
        }
    }
}

/// The event-time ingest front end: per-stream reorder buffers, per-stream
/// high-water marks, and the admission counter that keeps same-timestamp
/// arrivals replaying in arrival order.
pub(crate) struct EventTimeFrontEnd {
    /// The disorder bound `K`.
    pub(crate) bound: VDur,
    /// One reorder buffer per stream.
    pub(crate) buffers: Vec<ReorderBuffer<Arrival>>,
    /// Per-stream maximum timestamp seen (streams with no arrivals yet
    /// hold `VTime::ZERO`, pinning the watermark at the origin until every
    /// stream has spoken).
    pub(crate) hwm: Vec<VTime>,
    /// Admission counter: the tiebreak that orders same-timestamp releases.
    pub(crate) admitted: u64,
}

impl EventTimeFrontEnd {
    pub(crate) fn new(bound: VDur, n_streams: usize) -> Self {
        EventTimeFrontEnd {
            bound,
            buffers: (0..n_streams).map(|_| ReorderBuffer::new()).collect(),
            hwm: vec![VTime::ZERO; n_streams],
            admitted: 0,
        }
    }

    /// `wm = min_s(hwm_s) - K`, saturating at the origin. No accepted
    /// arrival can carry a timestamp below this (lateness is bounded by
    /// `K` relative to the slowest stream's high-water mark), so buffered
    /// tuples strictly below it are safe to release.
    pub(crate) fn watermark(&self) -> VTime {
        let min_hwm = self
            .hwm
            .iter()
            .copied()
            .min()
            .expect("a join has at least one stream");
        min_hwm - self.bound
    }
}

/// A multi-way sliding-window join that sheds load by priority.
///
/// Per arriving tuple (Algorithm 1): update the current tumbling sketch,
/// expire stale tuples from every window, emit the join results the tuple
/// produces against all other windows, score it with the active policy's
/// priority measure, and store it — evicting the least-priority resident if
/// its window (or the global pool) is full. Tumbling-epoch rollovers
/// rebuild all priorities ("reset all the priority queues").
pub struct ShedJoinEngine {
    query: JoinQuery,
    policy: Box<dyn ShedPolicy>,
    reqs: Requirements,
    memory: MemoryMode,
    stores: Vec<WindowStore>,
    plans: Vec<ProbePlan>,
    sketches: Option<TumblingSketches>,
    partner_freq: Option<TumblingFreq>,
    rng: StdRng,
    next_seq: SeqNo,
    metrics: EngineMetrics,
    /// Per-stream scratch reused across arrivals for per-slot produced
    /// counting (coalesced heap rescoring).
    produced_scratch: Vec<ProducedScratch>,
    /// Bounded-disorder reorder buffers; `None` runs the legacy
    /// arrival-time path untouched.
    front: Option<EventTimeFrontEnd>,
    /// Recycled buffer behind [`ShedJoinEngine::ingest_batch`] (no
    /// per-batch allocation at steady state).
    batch_scratch: Vec<BatchItem>,
}

/// One pre-minted tuple of a batched ingest: the unit consumed by
/// [`ShedJoinEngine::ingest_tuple_batch`]. `now` is the processing
/// timestamp (the arrival timestamp unless the tuple waited in a shard
/// channel), `role` the replica discipline of sharded delivery.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The minted tuple.
    pub tuple: Tuple,
    /// Processing time, forwarded to the per-arrival pipeline unchanged.
    pub now: VTime,
    /// Probe/accounting role (see [`IngestRole`]).
    pub role: IngestRole,
}

/// A sparse per-stream accumulator for produced-output deltas gathered
/// during probes and applied as **one** coalesced heap update per touched
/// slot per flush. `delta` is indexed by the dense arena slot index and is
/// all-zeros between flushes; `touched` records each credited slot in
/// first-match order. Replaces a `HashMap<(stream, Slot), u64>` scratch:
/// no SipHash in the match callback and no `drain().collect()` allocation
/// per arrival.
///
/// On the per-arrival path a flush follows every probe, so an index maps
/// to at most one live slot while credits are pending. On the batched path
/// credits stay pending across arrivals, and a window expiry may free an
/// index that a later insert reuses for a *different* tuple before the
/// flush — `owner` (the full generational [`Slot`]) detects that: a credit
/// for a new owner supersedes the stale delta, whose tuple is dead and
/// whose pending credits are unobservable (produced counters and
/// priorities die with their tuple; evictions never see pending credits
/// because the engine flushes before any eviction-capable insert).
#[derive(Default)]
pub(crate) struct ProducedScratch {
    delta: Vec<u64>,
    owner: Vec<Option<Slot>>,
    pub(crate) touched: Vec<Slot>,
}

impl ProducedScratch {
    #[inline]
    pub(crate) fn add(&mut self, slot: Slot, n: u64) {
        let i = slot.index();
        if i >= self.delta.len() {
            self.delta.resize(i + 1, 0);
            self.owner.resize(i + 1, None);
        }
        if self.delta[i] == 0 {
            self.owner[i] = Some(slot);
            self.touched.push(slot);
        } else if self.owner[i] != Some(slot) {
            // The index was freed (expiry) and reallocated to a new tuple
            // while the old delta was pending: drop the dead tuple's
            // credits, start counting for the live one. The stale
            // `touched` entry is skipped at flush by the owner check.
            self.delta[i] = 0;
            self.owner[i] = Some(slot);
            self.touched.push(slot);
        }
        self.delta[i] += n;
    }

    /// Drains the pending credits, invoking `apply(slot, count)` once per
    /// live owner in first-credit order. Leaves the scratch all-zero.
    #[inline]
    pub(crate) fn drain_credits(&mut self, mut apply: impl FnMut(Slot, u64)) {
        let mut touched = std::mem::take(&mut self.touched);
        for slot in touched.drain(..) {
            let i = slot.index();
            if self.owner[i] != Some(slot) {
                continue; // superseded by a later generation at this index
            }
            let cnt = std::mem::take(&mut self.delta[i]);
            self.owner[i] = None;
            if cnt > 0 {
                apply(slot, cnt);
            }
        }
        self.touched = touched;
    }
}

impl ShedJoinEngine {
    /// Builds an engine for `query` shedding with `policy`.
    pub fn new(
        query: JoinQuery,
        policy: Box<dyn ShedPolicy>,
        config: EngineConfig,
    ) -> Result<Self> {
        let n = query.n_streams();
        let capacities = resolve_capacities(&config.memory, n)?;
        let stores = (0..n)
            .map(|s| {
                let sid = StreamId(s);
                WindowStore::new(query.window(sid), query.join_attrs(sid), capacities[s])
            })
            .collect();
        let reqs = policy.requirements();
        let epoch = if reqs.sketches || reqs.partner_freq {
            Some(match config.epoch {
                Some(e) => e,
                None => default_epoch(&query)?,
            })
        } else {
            None
        };
        let mut sketches = reqs
            .sketches
            .then(|| TumblingSketches::new(&query, config.bank, epoch.expect("resolved above")));
        if let (Some(on), Some(s)) = (config.score_cache, sketches.as_mut()) {
            s.set_score_cache(on);
        }
        let partner_freq = reqs
            .partner_freq
            .then(|| TumblingFreq::new(&query, epoch.expect("resolved above")));
        Ok(ShedJoinEngine {
            plans: ProbePlan::all(&query),
            query,
            policy,
            reqs,
            memory: config.memory,
            stores,
            sketches,
            partner_freq,
            rng: StdRng::seed_from_u64(config.seed),
            next_seq: SeqNo(0),
            metrics: EngineMetrics::default(),
            produced_scratch: (0..n).map(|_| ProducedScratch::default()).collect(),
            front: config.disorder.map(|k| EventTimeFrontEnd::new(k, n)),
            batch_scratch: Vec::new(),
        })
    }

    /// The query being executed.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The active policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Accumulated counters. Sketch-side cache statistics (packed-sign and
    /// productivity-score memos) are snapshotted here, at read time — not
    /// on every arrival, which put two counter copies on the per-ingest
    /// hot path for values nobody reads mid-run.
    pub fn metrics(&mut self) -> &EngineMetrics {
        if let Some(sketches) = self.sketches.as_ref() {
            let signs = sketches.sign_cache_stats();
            self.metrics.sign_cache_hits = signs.hits;
            self.metrics.sign_cache_misses = signs.misses;
            let scores = sketches.score_cache_stats();
            self.metrics.score_cache_hits = scores.hits;
            self.metrics.score_cache_misses = scores.misses;
        }
        &self.metrics
    }

    /// Resident tuples in `stream`'s window, or `None` if `stream` is not
    /// one of this query's streams.
    pub fn window_len(&self, stream: StreamId) -> Option<usize> {
        self.stores.get(stream.index()).map(WindowStore::len)
    }

    /// Total resident tuples across every window (per-shard occupancy in a
    /// sharded run).
    pub fn total_resident(&self) -> usize {
        self.stores.iter().map(WindowStore::len).sum()
    }

    /// Structural audit of the whole operator: every window store's
    /// arena/index/heap/expiry agreement, the tumbling sketches' epoch and
    /// frozen-cross-product coherence, and the mode-aware memory bound
    /// (per-window capacities, or the pooled total in
    /// [`MemoryMode::GlobalPool`], where individual stores are unbounded
    /// but the sum must respect the pool).
    ///
    /// O(resident tuples) and worse; compiled only under the `audit`
    /// feature, where the differential harness calls it after every
    /// arrival.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(feature = "audit")]
    pub fn check_invariants(&self) {
        for store in &self.stores {
            store.check_invariants();
        }
        if let Some(sketches) = self.sketches.as_ref() {
            sketches.check_invariants();
        }
        match &self.memory {
            // Store-local capacity bounds are asserted inside
            // `WindowStore::check_invariants`; nothing extra to add.
            MemoryMode::PerWindow(_) | MemoryMode::PerWindowEach(_) => {}
            MemoryMode::GlobalPool(total) => {
                let resident: usize = self.stores.iter().map(|s| s.len()).sum();
                assert!(
                    resident <= *total,
                    "pool overrun: {resident} resident > {total} budget"
                );
            }
        }
        if let Some(front) = self.front.as_ref() {
            // Everything still buffered must be at or ahead of the
            // watermark: earlier entries were either released or late-dropped.
            let wm = front.watermark();
            for (k, buf) in front.buffers.iter().enumerate() {
                if let Some((ts, _)) = buf.peek_key() {
                    assert!(
                        ts >= wm,
                        "stream {k} holds a releasable arrival: {ts:?} < watermark {wm:?}"
                    );
                }
            }
        }
    }

    /// Mints an [`Arrival`] into a sequence-numbered tuple without
    /// processing it.
    ///
    /// Use this when the tuple will be processed *later* (queued input,
    /// sharded dispatch): sequence numbers are assigned in arrival order,
    /// independent of service order.
    pub fn mint(&mut self, arrival: Arrival) -> Tuple {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        Tuple::new(arrival.stream, arrival.ts, seq, arrival.values)
    }

    /// The single entry point for feeding the engine: mints `arrival` and
    /// runs it through the operator at its arrival timestamp, passing every
    /// join result it completes to `sink`.
    ///
    /// # Timestamp contract
    /// Without a disorder bound ([`EngineConfig::disorder`] = `None`),
    /// timestamps are trusted as given — monotone or not — and the arrival
    /// is processed immediately at its own timestamp. With a bound `K`, the
    /// event-time front end takes over: the arrival is buffered and later
    /// replayed in timestamp order, unless its timestamp has already fallen
    /// behind the watermark (`min` cross-stream high-water mark minus `K`),
    /// in which case it is dropped — counted in
    /// [`EngineMetrics::late_dropped`], never joined, and **never a
    /// panic**. Regressions within the bound are therefore absorbed;
    /// regressions beyond it are accounted, not amplified.
    pub fn ingest(&mut self, arrival: Arrival, sink: &mut impl EmitSink) -> IngestOutcome {
        if self.front.is_some() {
            return self.ingest_event_time(arrival, sink);
        }
        let now = arrival.ts;
        let tuple = self.mint(arrival);
        self.ingest_tuple(tuple, now, sink)
    }

    /// Event-time ingest: advance this stream's high-water mark, admit or
    /// late-drop the arrival against the watermark, then release every
    /// buffered arrival the new watermark proves safe.
    fn ingest_event_time(&mut self, arrival: Arrival, sink: &mut impl EmitSink) -> IngestOutcome {
        let front = self.front.as_mut().expect("caller checked");
        let k = arrival.stream.index();
        if arrival.ts > front.hwm[k] {
            front.hwm[k] = arrival.ts;
        }
        let wm = front.watermark();
        if arrival.ts < wm {
            // Later than the disorder bound: the reorder guarantee no
            // longer covers it (its window contemporaries may already have
            // been released and expired), so joining it would produce
            // results an in-order run never would. Count and drop.
            self.metrics.late_dropped += 1;
            return IngestOutcome {
                produced: 0,
                stored: false,
                shed: 0,
            };
        }
        let entry = front.admitted;
        front.admitted += 1;
        front.buffers[k].push(arrival.ts, entry, arrival);
        self.release_below(Some(wm), sink)
    }

    /// Releases buffered arrivals in merged `(ts, admission)` order while
    /// the head's timestamp is strictly below `wm` (`None` releases
    /// everything — end-of-trace flush). Strictness matters: a future
    /// accepted arrival carries `ts >= wm`, so nothing released here can
    /// ever be preceded by one still to come. Each release is processed at
    /// its **own** timestamp through the unchanged pipeline — a covered
    /// disorder run is literally a replay of the in-order run.
    fn release_below(&mut self, wm: Option<VTime>, sink: &mut impl EmitSink) -> IngestOutcome {
        let mut total = IngestOutcome {
            produced: 0,
            stored: true,
            shed: 0,
        };
        loop {
            let front = self.front.as_mut().expect("event-time engines only");
            let mut head: Option<(VTime, u64, usize)> = None;
            for (k, buf) in front.buffers.iter().enumerate() {
                if let Some((ts, entry)) = buf.peek_key() {
                    if head.map_or(true, |(ht, he, _)| (ts, entry) < (ht, he)) {
                        head = Some((ts, entry, k));
                    }
                }
            }
            let Some((ts, _, k)) = head else { break };
            if let Some(wm) = wm {
                if ts >= wm {
                    break;
                }
            }
            let (_, _, arrival) = front.buffers[k].pop().expect("peeked entry exists");
            let now = arrival.ts;
            let tuple = self.mint(arrival);
            let out = self.ingest_tuple(tuple, now, sink);
            total.produced += out.produced;
            total.shed += out.shed;
        }
        total
    }

    /// Drains the event-time reorder buffers at end of trace, releasing
    /// every still-buffered arrival in `(ts, admission)` order regardless
    /// of the watermark. No-op (and all-zero outcome) without a disorder
    /// bound.
    pub fn flush(&mut self, sink: &mut impl EmitSink) -> IngestOutcome {
        if self.front.is_none() {
            return IngestOutcome {
                produced: 0,
                stored: true,
                shed: 0,
            };
        }
        self.release_below(None, sink)
    }

    /// The current event-time watermark (`None` without a disorder bound).
    pub fn watermark(&self) -> Option<VTime> {
        self.front.as_ref().map(EventTimeFrontEnd::watermark)
    }

    /// The configured disorder bound (`None` = legacy arrival-time path).
    pub fn disorder_bound(&self) -> Option<VDur> {
        self.front.as_ref().map(|f| f.bound)
    }

    /// Arrivals currently held in the reorder buffers (0 without a bound).
    pub fn buffered(&self) -> usize {
        self.front
            .as_ref()
            .map_or(0, |f| f.buffers.iter().map(ReorderBuffer::len).sum())
    }

    /// Runs one already-minted tuple through the join operator at time
    /// `now` (its arrival timestamp may be earlier if it waited in an input
    /// queue or a shard channel), passing every result combination to
    /// `sink`.
    pub fn ingest_tuple(
        &mut self,
        tuple: Tuple,
        now: VTime,
        sink: &mut impl EmitSink,
    ) -> IngestOutcome {
        self.ingest_tuple_as(tuple, now, sink, IngestRole::FULL)
    }

    /// Role-parameterized form of [`ShedJoinEngine::ingest_tuple`], the
    /// primitive behind replicated delivery in the sharded engine.
    ///
    /// Every role observes sketches, expires windows, scores and stores the
    /// tuple — so replicated copies keep estimation state and tuple-window
    /// expiry counters advancing identically on every shard. The role only
    /// gates the *probe* (whether this delivery emits join results) and the
    /// *accounting* (whether it counts as the arrival's one `processed`
    /// delivery or as a `replicated` copy). `IngestRole::FULL` is exactly
    /// the classic path: `ingest_tuple` delegates here unconditionally, so
    /// an unsharded engine and an S=1 sharded engine execute the same code.
    pub fn ingest_tuple_as(
        &mut self,
        tuple: Tuple,
        now: VTime,
        sink: &mut impl EmitSink,
        role: IngestRole,
    ) -> IngestOutcome {
        self.ingest_tuple_inner(tuple, now, sink, role, false)
    }

    /// Runs a pre-minted batch through the operator, replaying the
    /// per-arrival path bit-identically (same emissions in the same order,
    /// same shed decisions, same metrics up to wall-clock timings) while
    /// amortizing the fixed costs across the batch:
    ///
    /// * an upfront pass software-prefetches each arrival's first index
    ///   probe (prefetching is semantically invisible, so this cannot
    ///   affect results);
    /// * produced-credit heap rescoring is **deferred** and coalesced — a
    ///   slot matched by many arrivals of the batch gets one
    ///   `add_produced`/`update_priority` instead of one per arrival.
    ///   Deferral is safe because a pending credit is only *observable*
    ///   through a priority read, and the engine flushes at every point
    ///   one can happen: before an epoch-rollover rebuild, before any
    ///   insert that may evict, and at batch end (DESIGN.md §15).
    ///
    /// Items are consumed (the vector is drained and its capacity
    /// retained, so callers can recycle it). The aggregate outcome sums
    /// `produced`/`shed`; `stored` reports the final item's disposition
    /// like the event-time release loop reports its last.
    pub fn ingest_tuple_batch(
        &mut self,
        items: &mut Vec<BatchItem>,
        sink: &mut impl EmitSink,
    ) -> IngestOutcome {
        for item in items.iter() {
            if item.role.probe {
                let origin = item.tuple.stream.index();
                if let Some(step) = self.plans[origin].steps().first() {
                    self.stores[step.stream.index()]
                        .prefetch(step.probe_attr, item.tuple.values[step.drive_attr]);
                }
            }
        }
        let mut total = IngestOutcome {
            produced: 0,
            stored: true,
            shed: 0,
        };
        for item in items.drain(..) {
            let out = self.ingest_tuple_inner(item.tuple, item.now, sink, item.role, true);
            total.produced += out.produced;
            total.shed += out.shed;
            total.stored = out.stored;
        }
        self.flush_produced();
        total
    }

    /// Batch counterpart of [`ShedJoinEngine::ingest`]: mints every
    /// arrival and runs them through [`ShedJoinEngine::ingest_tuple_batch`]
    /// at their own timestamps. With an event-time front end configured,
    /// arrivals fall back to the per-arrival path (the reorder buffers
    /// re-sequence them individually anyway).
    pub fn ingest_batch(
        &mut self,
        arrivals: impl IntoIterator<Item = Arrival>,
        sink: &mut impl EmitSink,
    ) -> IngestOutcome {
        if self.front.is_some() {
            let mut total = IngestOutcome {
                produced: 0,
                stored: true,
                shed: 0,
            };
            for arrival in arrivals {
                let out = self.ingest(arrival, sink);
                total.produced += out.produced;
                total.shed += out.shed;
                total.stored = out.stored;
            }
            return total;
        }
        let mut items = std::mem::take(&mut self.batch_scratch);
        items.clear();
        for arrival in arrivals {
            let now = arrival.ts;
            let tuple = self.mint(arrival);
            items.push(BatchItem {
                tuple,
                now,
                role: IngestRole::FULL,
            });
        }
        let out = self.ingest_tuple_batch(&mut items, sink);
        self.batch_scratch = items;
        out
    }

    /// Applies every pending produced-output credit: one coalesced
    /// `add_produced` + priority refresh per touched live slot, in
    /// first-credit order. Refreshes use the per-tuple state cached at the
    /// last full scoring, keeping the paper's "productivity computed at
    /// most twice per lifetime" discipline. Heap updates commute —
    /// (score, seq-tie) is a total order — so credit application order
    /// yields the same observable results as any other; only *when* the
    /// flush happens relative to priority reads is load-bearing.
    fn flush_produced(&mut self) {
        let Self {
            policy,
            stores,
            produced_scratch,
            ..
        } = self;
        for (k, scratch) in produced_scratch.iter_mut().enumerate() {
            scratch.drain_credits(|slot, cnt| {
                let Some(total) = stores[k].add_produced(slot, cnt) else {
                    return;
                };
                let state = stores[k].state(slot).expect("counted slot is live");
                let score = clamp_score(policy.refresh_priority(state, total));
                stores[k].update_priority(slot, score);
            });
        }
    }

    /// Whether storing one more tuple on `stream` can trigger an eviction
    /// — the deferred-credit flush gate for batched ingest (evictions read
    /// priorities, so every pending refresh must land first).
    fn eviction_possible(&self, stream: usize) -> bool {
        match self.memory {
            MemoryMode::PerWindow(_) | MemoryMode::PerWindowEach(_) => {
                self.stores[stream].len() >= self.stores[stream].capacity()
            }
            MemoryMode::GlobalPool(total) => self.total_resident() >= total,
        }
    }

    fn ingest_tuple_inner(
        &mut self,
        tuple: Tuple,
        now: VTime,
        sink: &mut impl EmitSink,
        role: IngestRole,
        defer_credits: bool,
    ) -> IngestOutcome {
        let stream = tuple.stream;
        // 1. Fold into the current tumbling estimation state (AGMS sketches
        //    and/or exact arrival-frequency tables); on epoch rollover,
        //    rebuild every window's priorities against the fresh snapshot.
        let mut rolled = false;
        if self.sketches.is_some() || self.partner_freq.is_some() {
            let t0 = Instant::now();
            if let Some(sketches) = self.sketches.as_mut() {
                rolled |= sketches.observe(stream, &tuple.values, now);
            }
            if let Some(freq) = self.partner_freq.as_mut() {
                rolled |= freq.observe(stream, &tuple.values, now);
            }
            self.metrics.sketch_observe_ns += t0.elapsed().as_nanos() as u64;
        }
        if rolled {
            self.metrics.epoch_rollovers += 1;
            if self.reqs.recompute_on_epoch {
                // The rebuild reads produced counts: land any credits still
                // pending from earlier arrivals of a batch first (no-op on
                // the per-arrival path, whose scratch is always drained).
                self.flush_produced();
                let t0 = Instant::now();
                self.rebuild_all_priorities(now);
                self.metrics.priority_rebuild_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        // 2. Delete expired tuples from every window.
        self.expire_all(now);
        // 3. Emit the join results produced by this tuple. Store-only
        //    replicas skip the probe entirely: their arrival's results are
        //    emitted by the one shard that received the FULL delivery.
        let track = self.reqs.produced_counters;
        let origin = stream.index();
        let produced = if role.probe {
            let scratch = &mut self.produced_scratch;
            probe_each(&self.plans[origin], &tuple, &self.stores, |b| {
                if track {
                    for (k, s) in scratch.iter_mut().enumerate() {
                        if k != origin {
                            let slot = b.slot(StreamId(k)).expect("bound in match");
                            s.add(slot, 1);
                        }
                    }
                }
                sink.emit(QueryId::SOLO, b);
            })
        } else {
            0
        };
        self.metrics.total_output += produced;
        if role.count_processed {
            self.metrics.processed += 1;
        } else {
            self.metrics.replicated += 1;
        }
        // 4. Credit output to the participating window tuples and refresh
        //    their priorities (the RS measure depends on produced counts).
        //    Per-arrival: applied right here, one coalesced heap update per
        //    touched slot. Batched: left pending so a slot matched by many
        //    arrivals still costs one update — flushed before anything
        //    reads a priority (rollover rebuild above, eviction gate below,
        //    batch end).
        if track && produced > 0 && !defer_credits {
            self.flush_produced();
        }
        // 5. Score and store the arriving tuple, shedding if full. An
        //    insert into a full window evicts by priority, so the batched
        //    path must land pending refreshes first to pick the same
        //    victim the per-arrival replay would.
        if defer_credits && self.eviction_possible(stream.index()) {
            self.flush_produced();
        }
        let t0 = Instant::now();
        let (score, state) = self.score_window_with_state(&tuple, 0, now);
        self.metrics.score_ns += t0.elapsed().as_nanos() as u64;
        let (stored, shed) = self.insert_with_shedding(tuple, score, state);
        IngestOutcome {
            produced,
            stored,
            shed,
        }
    }

    /// Notes an arrival on `stream` that is being processed *elsewhere*
    /// (another shard of a partitioned execution), so tuple-based window
    /// expiration here still counts every operator-reaching arrival of the
    /// stream, not just the ones routed to this engine.
    pub fn note_foreign_arrival(&mut self, stream: StreamId) {
        self.stores[stream.index()].note_arrival();
    }

    /// Bulk form of [`ShedJoinEngine::note_foreign_arrival`]: notes `n`
    /// foreign arrivals on `stream` in one call (a coalesced tick summary
    /// from the shard coordinator).
    pub fn note_foreign_arrivals(&mut self, stream: StreamId, n: u64) {
        self.stores[stream.index()].note_arrivals(n);
    }

    /// Priority a policy assigns `tuple` if it were queued right now.
    pub fn queue_score(&mut self, tuple: &Tuple, now: VTime) -> f64 {
        let event_time = self.front.is_some();
        let Self {
            query,
            policy,
            sketches,
            partner_freq,
            rng,
            ..
        } = self;
        let mut ctx = PriorityCtx {
            query,
            sketches: sketches.as_mut(),
            partner_freq: partner_freq.as_ref(),
            now,
            rng,
            event_time,
        };
        clamp_score(policy.queue_priority(&mut ctx, tuple))
    }

    /// The queue-victim mode of the active policy.
    pub fn queue_victim(&self) -> QueueVictim {
        self.policy.queue_victim()
    }

    /// The engine's seeded rng (shared with the queue for victim draws so a
    /// whole run remains a single deterministic random sequence).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Records that the input queue shed a tuple before it reached the
    /// operator.
    pub fn note_queue_shed(&mut self) {
        self.metrics.shed_queue += 1;
    }

    /// Estimated size of the full multi-way join over the current epoch
    /// (diagnostics; `None` when the policy runs sketch-free).
    pub fn estimate_join_count(&self) -> Option<f64> {
        self.sketches.as_ref().map(|s| s.estimate_join_count())
    }

    fn score_window_with_state(
        &mut self,
        tuple: &Tuple,
        produced: u64,
        now: VTime,
    ) -> (f64, f64) {
        let event_time = self.front.is_some();
        let Self {
            query,
            policy,
            sketches,
            partner_freq,
            rng,
            ..
        } = self;
        let mut ctx = PriorityCtx {
            query,
            sketches: sketches.as_mut(),
            partner_freq: partner_freq.as_ref(),
            now,
            rng,
            event_time,
        };
        // All scores funnel through the finite clamp before they reach a
        // priority heap — third-party policies included.
        let (score, state) = policy.window_priority_with_state(&mut ctx, tuple, produced);
        (clamp_score(score), state)
    }

    fn rebuild_all_priorities(&mut self, now: VTime) {
        let Self {
            query,
            policy,
            stores,
            sketches,
            partner_freq,
            rng,
            ..
        } = self;
        // Residents are rescored against the *current* epoch snapshot even
        // in event-time mode: the paper's rollover rescoring asks "how
        // productive will this tuple be from now on", not "which epoch did
        // it arrive in" — and the trusting engine does exactly this, which
        // the K = 0 bit-identity contract (DESIGN.md §13) pins. Event-time
        // epoch targeting applies only where a tuple's own timestamp is the
        // scoring instant: admission scoring and queue admission.
        let grouped = policy.groupable_estimate();
        for store in stores.iter_mut() {
            if grouped {
                // Walk residents grouped by distinct join key: one
                // estimation-kernel run per key, fanned out to every slot
                // holding that key through the cheap produced-count
                // combiner (DESIGN.md §16).
                store.rebuild_priorities_grouped(|tuple, produced, shared| {
                    let mut ctx = PriorityCtx {
                        query,
                        sketches: sketches.as_mut(),
                        partner_freq: partner_freq.as_ref(),
                        now,
                        rng,
                        event_time: false,
                    };
                    let estimate =
                        shared.unwrap_or_else(|| policy.window_estimate(&mut ctx, tuple));
                    let (score, state) =
                        policy.window_priority_from_estimate(&mut ctx, tuple, produced, estimate);
                    (clamp_score(score), state, estimate)
                });
            } else {
                store.rebuild_priorities(|tuple, produced| {
                    let mut ctx = PriorityCtx {
                        query,
                        sketches: sketches.as_mut(),
                        partner_freq: partner_freq.as_ref(),
                        now,
                        rng,
                        event_time: false,
                    };
                    let (score, state) =
                        policy.window_priority_with_state(&mut ctx, tuple, produced);
                    (clamp_score(score), state)
                });
            }
        }
    }

    fn expire_all(&mut self, now: VTime) {
        for store in &mut self.stores {
            self.metrics.expired += store.expire(now).len() as u64;
        }
    }

    /// Returns `(stored, shed)`: whether the arriving tuple remained
    /// resident, and how many tuples (possibly itself) were evicted.
    fn insert_with_shedding(&mut self, tuple: Tuple, score: f64, state: f64) -> (bool, u64) {
        let stream = tuple.stream.index();
        match self.memory {
            MemoryMode::PerWindow(_) | MemoryMode::PerWindowEach(_) => {
                let outcome = self.stores[stream].insert_scored(tuple, score, state);
                let stored = outcome.slot.is_some();
                if let mstream_window::Eviction::Evicted(_) = outcome.eviction {
                    self.metrics.shed_window += 1;
                    (stored, 1)
                } else {
                    (stored, 0)
                }
            }
            MemoryMode::GlobalPool(total) => {
                let seq = tuple.seq;
                let outcome = self.stores[stream].insert_scored(tuple, score, state);
                debug_assert_eq!(
                    outcome.eviction,
                    mstream_window::Eviction::None,
                    "pool-mode stores are unbounded; only the engine evicts"
                );
                let mut stored = true;
                let mut shed = 0u64;
                while self.stores.iter().map(WindowStore::len).sum::<usize>() > total {
                    // Global minimum under the same (score, seq) order the
                    // per-store heaps use, so cross-window ties still evict
                    // the oldest tuple first — never the just-inserted one
                    // ahead of an equally-scored elder.
                    let victim_store = self
                        .stores
                        .iter()
                        .enumerate()
                        .filter_map(|(i, st)| {
                            st.peek_min().map(|(slot, p)| {
                                let seq = st.tuple(slot).expect("heap slot is live").seq;
                                (i, p, seq)
                            })
                        })
                        .min_by(|a, b| {
                            a.1.partial_cmp(&b.1)
                                .expect("finite priorities")
                                .then(a.2.cmp(&b.2))
                        })
                        .map(|(i, _, _)| i)
                        .expect("pool over limit implies a resident tuple");
                    let (victim, _) = self.stores[victim_store]
                        .evict_min()
                        .expect("store has a minimum");
                    if victim.seq == seq {
                        stored = false;
                    }
                    self.metrics.shed_window += 1;
                    shed += 1;
                }
                (stored, shed)
            }
        }
    }
}

/// Resolves a [`MemoryMode`] into per-store capacities for an `n`-stream
/// query, validating it in the process (shared by the engine, the builder
/// and the sharded coordinator).
///
/// Pool mode yields effectively-unbounded stores: ALL enforcement happens
/// in the engine's post-insert loop, which evicts the global (cross-window)
/// minimum. Giving a store a finite capacity would let it self-evict its
/// *local* minimum when it alone exceeds the pool — the wrong victim
/// (possibly the just-inserted tuple out of tie order), and one the
/// metrics would never see.
pub(crate) fn resolve_capacities(
    memory: &MemoryMode,
    n: usize,
) -> core::result::Result<Vec<usize>, crate::builder::BuildError> {
    use crate::builder::BuildError;
    let capacities: Vec<usize> = match memory {
        MemoryMode::PerWindow(c) => vec![*c; n],
        MemoryMode::PerWindowEach(cs) => {
            if cs.len() != n {
                return Err(BuildError::CapacityCountMismatch {
                    got: cs.len(),
                    expected: n,
                });
            }
            cs.clone()
        }
        MemoryMode::GlobalPool(total) => {
            if *total == 0 {
                return Err(BuildError::ZeroWindowCapacity);
            }
            vec![usize::MAX / 2; n]
        }
    };
    if capacities.contains(&0) {
        return Err(BuildError::ZeroWindowCapacity);
    }
    Ok(capacities)
}

/// The paper's default epoch: `n = p` for time windows; per-stream tuple
/// counts for tuple-based windows (§4.1). Mixed window kinds require an
/// explicit epoch choice.
pub(crate) fn default_epoch(
    query: &JoinQuery,
) -> core::result::Result<EpochSpec, crate::builder::BuildError> {
    if query.all_tuple_based() {
        let count = query
            .windows()
            .iter()
            .map(|w| match w {
                WindowSpec::Tuples(c) => *c,
                WindowSpec::Time(_) => unreachable!("all_tuple_based checked"),
            })
            .max()
            .expect("queries have >= 2 streams");
        return Ok(EpochSpec::PerStreamTuples(count));
    }
    match query.max_time_window() {
        Some(p) if query.windows().iter().all(|w| matches!(w, WindowSpec::Time(_))) => {
            Ok(EpochSpec::Time(p))
        }
        _ => Err(crate::builder::BuildError::EpochUnderivable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::CountSink;
    use mstream_shed_policies::{Bjoin, Fifo, MSketch, MSketchRs, RandomLoad};
    use mstream_types::{Catalog, Error, StreamSchema, VDur, Value};

    fn chain3(window_secs: u64) -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(window_secs),
        )
        .unwrap()
    }

    fn cfg(capacity: usize) -> EngineConfig {
        EngineConfig {
            memory: MemoryMode::PerWindow(capacity),
            bank: BankConfig {
                s1: 50,
                s2: 1,
                seed: 7,
            },
            epoch: None,
            seed: 3,
            disorder: None,
            score_cache: None,
        }
    }

    fn v(a: u64, b: u64) -> Vec<Value> {
        vec![Value(a), Value(b)]
    }

    /// Test shorthand for the ingest path; returns the produced count.
    fn arrive(engine: &mut ShedJoinEngine, s: StreamId, vals: Vec<Value>, now: VTime) -> u64 {
        engine
            .ingest(Arrival::new(s, vals, now), &mut CountSink::default())
            .produced
    }

    #[test]
    fn unshedded_engine_matches_exact_join() {
        // With capacity >= arrivals the engine must be exact regardless of
        // policy.
        use mstream_join::ExactJoin;
        use rand::Rng;
        let mut engine =
            ShedJoinEngine::new(chain3(50), Box::new(MSketch), cfg(10_000)).unwrap();
        let mut exact = ExactJoin::new(chain3(50));
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..500u64 {
            let now = VTime::from_secs(i / 5);
            let s = StreamId(rng.gen_range(0..3));
            let vals = v(rng.gen_range(0..6), rng.gen_range(0..6));
            let a = arrive(&mut engine, s, vals.clone(), now);
            let b = exact.process(s, vals, now);
            assert_eq!(a, b, "arrival {i}");
        }
        assert_eq!(engine.metrics().total_output, exact.total_output());
        assert!(engine.metrics().total_output > 0);
        assert_eq!(engine.metrics().shed_window, 0);
    }

    #[test]
    fn all_policies_run_and_respect_capacity() {
        use rand::Rng;
        let policies: Vec<Box<dyn ShedPolicy>> = vec![
            Box::new(MSketch),
            Box::new(MSketchRs),
            Box::new(mstream_shed_policies::Age),
            Box::new(mstream_shed_policies::Life),
            Box::new(Bjoin),
            Box::new(RandomLoad),
            Box::new(Fifo),
        ];
        for policy in policies {
            let name = policy.name();
            let mut engine = ShedJoinEngine::new(chain3(100), policy, cfg(16)).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            for i in 0..600u64 {
                let now = VTime::from_secs(i / 3);
                let s = StreamId(rng.gen_range(0..3));
                arrive(&mut engine, s, v(rng.gen_range(0..5), rng.gen_range(0..5)), now);
                for k in 0..3 {
                    assert!(
                        engine.window_len(StreamId(k)).unwrap() <= 16,
                        "{name}: window over capacity"
                    );
                }
            }
            assert!(
                engine.metrics().shed_window > 0,
                "{name}: tight memory must shed"
            );
        }
    }

    #[test]
    fn score_cache_on_and_off_runs_are_bit_identical() {
        // The epoch memo stores the exact f64 under an exact key, so a
        // cached run must replay the uncached run bit for bit: same
        // emissions in the same order, same shed decisions, same counters
        // — up to the cache statistics themselves (a score-cache hit skips
        // the packed-sign path, so sign-cache traffic legitimately
        // differs) and wall-clock ns.
        use crate::ingest::VecSink;
        use rand::Rng;
        let policies: &[fn() -> Box<dyn ShedPolicy>] = &[
            || Box::new(MSketch),
            || Box::new(MSketchRs),
            || Box::new(mstream_shed_policies::Age),
        ];
        for mk in policies {
            let run = |cached: bool| {
                let config = EngineConfig {
                    score_cache: Some(cached),
                    ..cfg(16)
                };
                let mut engine = ShedJoinEngine::new(chain3(40), mk(), config).unwrap();
                let mut sink = VecSink::default();
                let mut rng = StdRng::seed_from_u64(9);
                for i in 0..600u64 {
                    let now = VTime::from_secs(i / 3);
                    let s = StreamId(rng.gen_range(0..3));
                    let vals = v(rng.gen_range(0..4), rng.gen_range(0..4));
                    engine.ingest(Arrival::new(s, vals, now), &mut sink);
                }
                let mut metrics = engine.metrics().clone();
                let cache = (metrics.score_cache_hits, metrics.score_cache_misses);
                metrics.sketch_observe_ns = 0;
                metrics.priority_rebuild_ns = 0;
                metrics.score_ns = 0;
                metrics.sign_cache_hits = 0;
                metrics.sign_cache_misses = 0;
                metrics.score_cache_hits = 0;
                metrics.score_cache_misses = 0;
                (sink.rows, metrics, cache)
            };
            let name = mk().name();
            let (rows_on, metrics_on, cache_on) = run(true);
            let (rows_off, metrics_off, cache_off) = run(false);
            assert_eq!(rows_on, rows_off, "{name}: emissions diverged");
            assert_eq!(metrics_on, metrics_off, "{name}: metrics diverged");
            assert_eq!(cache_off, (0, 0), "{name}: disabled cache counts nothing");
            assert!(
                cache_on.0 + cache_on.1 > 0,
                "{name}: a groupable sketch policy must exercise the cache"
            );
        }
    }

    #[test]
    fn msketch_keeps_productive_tuples_under_pressure() {
        // Stream R1 sees two kinds of tuples: A1=1 (productive: R2/R3 are
        // full of partners) and A1=0 (dead weight). With a tiny window,
        // MSketch should retain the productive kind and out-produce FIFO.
        let run = |policy: Box<dyn ShedPolicy>| {
            let mut engine = ShedJoinEngine::new(chain3(1000), policy, cfg(8)).unwrap();
            for i in 0..200u64 {
                let now = VTime::from_secs(i);
                arrive(&mut engine, StreamId(1), v(1, 2), now);
                arrive(&mut engine, StreamId(2), v(2, 0), now);
                // Alternate productive / dead R1 tuples: FIFO retains the
                // last 8 (half dead), MSketch retains 8 productive ones, so
                // the R2/R3 arrivals that probe W1 find twice the partners.
                let a = if i % 2 == 0 { 1 } else { 0 };
                arrive(&mut engine, StreamId(0), v(a, 0), now);
            }
            engine.metrics().total_output
        };
        let msketch = run(Box::new(MSketch));
        let fifo = run(Box::new(Fifo));
        assert!(
            msketch > fifo,
            "MSketch ({msketch}) should beat FIFO ({fifo}) on skewed data"
        );
    }

    #[test]
    fn global_pool_respects_total_budget() {
        use rand::Rng;
        let mut config = cfg(0);
        config.memory = MemoryMode::GlobalPool(30);
        let mut engine = ShedJoinEngine::new(chain3(1000), Box::new(MSketch), config).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..300u64 {
            let s = StreamId(rng.gen_range(0..3));
            arrive(&mut engine, s, v(rng.gen_range(0..4), 0), VTime::from_secs(i));
            let total: usize = (0..3).map(|k| engine.window_len(StreamId(k)).unwrap()).sum();
            assert!(total <= 30, "pool bound violated: {total}");
        }
        assert!(engine.metrics().shed_window > 0);
    }

    #[test]
    fn global_pool_ties_evict_oldest_across_windows() {
        // Empty sketches give every MSketch arrival score 0, so pool
        // eviction order is decided purely by the (score, seq) tie-break:
        // the globally oldest tuple goes first, never the one that was just
        // inserted. Values are chosen to never join (no produced updates).
        // Arrive in DESCENDING stream order so the oldest tied tuple lives
        // in the highest-indexed store: a score-only comparison that
        // resolves ties by store order would evict the fresh tuple instead.
        let mut config = cfg(0);
        config.memory = MemoryMode::GlobalPool(2);
        let mut engine = ShedJoinEngine::new(chain3(1000), Box::new(MSketch), config).unwrap();
        arrive(&mut engine, StreamId(2), v(1, 1), VTime::ZERO);
        arrive(&mut engine, StreamId(1), v(2, 2), VTime::ZERO);
        // Third arrival overflows the pool; seq 0 (window 2) must go, even
        // though the arrival landed in window 0.
        arrive(&mut engine, StreamId(0), v(3, 3), VTime::ZERO);
        assert_eq!(engine.window_len(StreamId(2)).unwrap(), 0, "oldest evicted");
        assert_eq!(engine.window_len(StreamId(1)).unwrap(), 1);
        assert_eq!(engine.window_len(StreamId(0)).unwrap(), 1, "fresh tuple survives the tie");
        assert_eq!(engine.metrics().shed_window, 1);
    }

    #[test]
    fn global_pool_counts_single_window_overflow() {
        // All arrivals land in ONE window. Before pool enforcement moved
        // entirely into the engine, the store (sized to the whole pool)
        // would silently self-evict its local minimum here: the pool stayed
        // within budget but `shed_window` never saw those evictions.
        let mut config = cfg(0);
        config.memory = MemoryMode::GlobalPool(2);
        let mut engine = ShedJoinEngine::new(chain3(1000), Box::new(Fifo), config).unwrap();
        for i in 0..5u64 {
            arrive(&mut engine, StreamId(0), v(i, i), VTime::ZERO);
        }
        assert_eq!(engine.window_len(StreamId(0)).unwrap(), 2, "pool bound enforced");
        assert_eq!(
            engine.metrics().shed_window,
            3,
            "every pool eviction is counted exactly once"
        );
    }

    #[test]
    fn global_pool_zero_budget_rejected() {
        let mut config = cfg(1);
        config.memory = MemoryMode::GlobalPool(0);
        let err = ShedJoinEngine::new(chain3(10), Box::new(Fifo), config)
            .err()
            .expect("zero pool must be rejected");
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn bjoin_runs_through_shedding_and_epoch_rollovers() {
        use rand::Rng;
        // Exercise the tumbling frequency tables across inserts, evictions,
        // expirations and epoch rollovers.
        let mut engine = ShedJoinEngine::new(chain3(20), Box::new(Bjoin), cfg(8)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..1500u64 {
            let s = StreamId(rng.gen_range(0..3));
            arrive(&mut engine, 
                s,
                v(rng.gen_range(0..4), rng.gen_range(0..4)),
                // ~0.7 arrivals/s/stream against 20s windows of 8 slots:
                // slow enough that hot tuples can outlive the window
                // (expirations), fast enough to overflow it (evictions).
                VTime::from_secs(i / 2),
            );
        }
        assert!(engine.metrics().expired > 0, "expirations exercised");
        assert!(engine.metrics().shed_window > 0, "evictions exercised");
    }

    #[test]
    fn produced_counters_feed_rs_priorities() {
        let mut engine = ShedJoinEngine::new(chain3(1000), Box::new(MSketchRs), cfg(64)).unwrap();
        // A hot R2 tuple that produces on every R1/R3 arrival.
        arrive(&mut engine, StreamId(1), v(1, 1), VTime::ZERO);
        arrive(&mut engine, StreamId(2), v(1, 0), VTime::ZERO);
        let mut produced = 0;
        for i in 0..10u64 {
            produced += arrive(&mut engine, StreamId(0), v(1, 0), VTime::from_secs(i));
        }
        assert_eq!(produced, 10);
        assert_eq!(engine.metrics().total_output, 10);
    }

    #[test]
    fn epoch_rollover_rebuilds_priorities() {
        let mut config = cfg(32);
        config.epoch = Some(EpochSpec::Time(VDur::from_secs(10)));
        let mut engine = ShedJoinEngine::new(chain3(100), Box::new(MSketch), config).unwrap();
        for i in 0..50u64 {
            arrive(&mut engine, StreamId(i as usize % 3), v(1, 1), VTime::from_secs(i));
        }
        assert!(engine.metrics().epoch_rollovers >= 4);
    }

    #[test]
    fn stage_timings_and_cache_stats_accumulate() {
        let mut config = cfg(32);
        config.epoch = Some(EpochSpec::Time(VDur::from_secs(10)));
        let mut engine = ShedJoinEngine::new(chain3(100), Box::new(MSketch), config).unwrap();
        for i in 0..60u64 {
            // Heavy value repetition: the packed-sign cache must hit.
            arrive(&mut engine, StreamId(i as usize % 3), v(i % 4, i % 3), VTime::from_secs(i));
        }
        let m = engine.metrics();
        assert!(m.sketch_observe_ns > 0, "observe stage timed");
        assert!(m.score_ns > 0, "scoring stage timed");
        assert!(m.priority_rebuild_ns > 0, "rollover rebuilds timed");
        assert!(m.sign_cache_misses > 0);
        assert!(
            m.sign_cache_hits > m.sign_cache_misses,
            "repeated values must be served from the sign cache \
             (hits={}, misses={})",
            m.sign_cache_hits,
            m.sign_cache_misses
        );
        // Sketch-free policies leave the sketch counters untouched.
        let mut plain = ShedJoinEngine::new(chain3(100), Box::new(Fifo), cfg(32)).unwrap();
        arrive(&mut plain, StreamId(0), v(1, 1), VTime::ZERO);
        assert_eq!(plain.metrics().sign_cache_hits, 0);
        assert_eq!(plain.metrics().sketch_observe_ns, 0);
    }

    #[test]
    fn invalid_capacity_rejected() {
        let err = ShedJoinEngine::new(chain3(10), Box::new(Fifo), {
            let mut c = cfg(0);
            c.memory = MemoryMode::PerWindow(0);
            c
        })
        .err()
        .expect("zero capacity must be rejected");
        assert!(matches!(err, Error::InvalidConfig(_)));
        let err = ShedJoinEngine::new(chain3(10), Box::new(Fifo), {
            let mut c = cfg(1);
            c.memory = MemoryMode::PerWindowEach(vec![1, 2]);
            c
        })
        .err()
        .expect("capacity count mismatch must be rejected");
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn tuple_based_windows_get_tuple_epochs() {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1"]));
        c.add_stream(StreamSchema::new("R2", &["A1"]));
        let q = JoinQuery::from_names(c, &[("R1.A1", "R2.A1")], WindowSpec::Tuples(20)).unwrap();
        let engine = ShedJoinEngine::new(q, Box::new(MSketch), cfg(8)).unwrap();
        // Constructed without error: the default epoch resolved to
        // PerStreamTuples(20).
        assert_eq!(engine.policy_name(), "MSketch");
    }

    #[test]
    fn deterministic_runs_per_seed() {
        use rand::Rng;
        let run = |seed: u64| {
            let mut config = cfg(16);
            config.seed = seed;
            let mut engine =
                ShedJoinEngine::new(chain3(100), Box::new(RandomLoad), config).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            for i in 0..400u64 {
                let s = StreamId(rng.gen_range(0..3));
                arrive(&mut engine, 
                    s,
                    v(rng.gen_range(0..5), rng.gen_range(0..5)),
                    VTime::from_secs(i / 4),
                );
            }
            engine.metrics().total_output
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds shed differently");
    }
}
