//! Banks of `s1 × s2` independent sketch copies with median-of-means
//! combination, for multi-way COUNT and per-tuple productivity estimation.

use crate::atomic::AtomicSketch;
use crate::hash::FourWiseHash;
use mstream_types::{JoinQuery, StreamId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sizing of a [`SketchBank`].
///
/// The final estimate is the **median** over `s2` groups of the **mean**
/// over `s1` independent atomic-sketch copies (Dobra et al. §3.1). Larger
/// `s1` shrinks variance; larger `s2` boosts the confidence of the median.
/// The paper's experiments construct 1000 copies and return their average,
/// i.e. `s1 = 1000, s2 = 1` (see DESIGN.md, parameter reconstruction —
/// per-tuple productivities in skewed windows are unusable below several
/// hundred copies, which pins down the OCR-damaged count).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankConfig {
    /// Copies averaged within a group.
    pub s1: usize,
    /// Groups whose means are median-combined.
    pub s2: usize,
    /// Seed for drawing the hash families (full-run determinism).
    pub seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            s1: 1000,
            s2: 1,
            seed: 0x5EED_5EED,
        }
    }
}

impl BankConfig {
    /// Total number of independent copies.
    pub fn copies(&self) -> usize {
        self.s1 * self.s2
    }
}

/// One independent copy: a ±1 family per predicate plus one atomic sketch
/// per stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Copy_ {
    /// `families[j]` is the ξ family of predicate `j ∈ θ`.
    families: Vec<FourWiseHash>,
    /// `sketches[k]` is `X_k` for stream `k`.
    sketches: Vec<AtomicSketch>,
}

/// A bank of `s1 × s2` sketch copies over the streams of one [`JoinQuery`].
///
/// A `SketchBank` covers **one window's worth** of each stream (one
/// tumbling epoch). The epoch discipline — current vs. last bank, rollover
/// every `n` seconds — lives in [`crate::TumblingSketches`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchBank {
    config: BankConfig,
    n_streams: usize,
    /// `incidence[k]` = `(predicate index, attr index)` pairs of stream `k`.
    incidence: Vec<Vec<(usize, usize)>>,
    copies: Vec<Copy_>,
}

impl SketchBank {
    /// Builds a zeroed bank for `query`, drawing hash families from
    /// `config.seed`.
    pub fn new(query: &JoinQuery, config: BankConfig) -> Self {
        assert!(config.s1 >= 1 && config.s2 >= 1, "s1 and s2 must be >= 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_streams = query.n_streams();
        let n_preds = query.predicates().len();
        let copies = (0..config.copies())
            .map(|_| Copy_ {
                families: (0..n_preds).map(|_| FourWiseHash::random(&mut rng)).collect(),
                sketches: vec![AtomicSketch::new(); n_streams],
            })
            .collect();
        let incidence = (0..n_streams)
            .map(|s| query.incident(StreamId(s)).to_vec())
            .collect();
        SketchBank {
            config,
            n_streams,
            incidence,
            copies,
        }
    }

    /// The bank's sizing.
    pub fn config(&self) -> BankConfig {
        self.config
    }

    /// Number of streams covered.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Folds a tuple of `stream` (given its full value row) into every copy.
    ///
    /// Cost: `s1·s2` products of `|incident(stream)|` signs — constant per
    /// tuple, as the paper's complexity argument requires.
    pub fn update(&mut self, stream: StreamId, values: &[Value]) {
        let k = stream.index();
        debug_assert!(k < self.n_streams);
        let incidence = &self.incidence[k];
        for copy in &mut self.copies {
            let mut sign = 1i64;
            for &(pred, attr) in incidence {
                sign *= copy.families[pred].sign(values[attr].raw());
            }
            copy.sketches[k].add(sign);
        }
    }

    /// The ξ-sign product of a tuple of `stream` in copy `c`
    /// (`Π_{j ∈ attrs(R_i)} ξ_{j, t[j]}`). Exposed for the tumbling-epoch
    /// layer, which combines current-epoch signs with last-epoch sketches.
    #[inline]
    pub fn sign_in_copy(&self, c: usize, stream: StreamId, values: &[Value]) -> i64 {
        let mut sign = 1i64;
        for &(pred, attr) in &self.incidence[stream.index()] {
            sign *= self.copies[c].families[pred].sign(values[attr].raw());
        }
        sign
    }

    /// The raw atomic-sketch counter `X_k` of `stream` in copy `c`.
    #[inline]
    pub fn sketch_value(&self, c: usize, stream: StreamId) -> i64 {
        self.copies[c].sketches[stream.index()].value()
    }

    /// Takes a snapshot of `stream`'s per-copy counters and resets them
    /// (per-stream epoch rollover for tuple-based windows, paper §4.1).
    pub fn take_stream_snapshot(&mut self, stream: StreamId) -> Vec<i64> {
        let k = stream.index();
        self.copies
            .iter_mut()
            .map(|copy| {
                let v = copy.sketches[k].value();
                copy.sketches[k].reset();
                v
            })
            .collect()
    }

    /// Resets every atomic sketch (epoch rollover); hash families persist.
    pub fn reset(&mut self) {
        for copy in &mut self.copies {
            for s in &mut copy.sketches {
                s.reset();
            }
        }
    }

    /// Number of tuples folded into stream `k` this epoch.
    pub fn tuples_seen(&self, stream: StreamId) -> u64 {
        self.copies[0].sketches[stream.index()].tuples()
    }

    /// Median-of-means estimate of the full multi-way COUNT
    /// `|W_1 ⋈ … ⋈ W_n|` from this bank's sketches.
    pub fn estimate_join_count(&self) -> f64 {
        self.median_of_means(|copy: &Copy_| {
            copy.sketches.iter().map(|s| s.value() as f64).product()
        })
    }

    /// Median-of-means estimate of `prod(t)` for a tuple of `stream` —
    /// the COUNT of the join in which `W_stream = {t}`:
    /// `prod(t) = Π_{j ∈ attrs(R_i)} ξ_{j, t[j]} · Π_{k ≠ i} X_k`.
    ///
    /// The estimate is unbiased but can come out negative for unproductive
    /// tuples; callers that need a priority should clamp at zero (true
    /// productivity is a count, hence non-negative).
    pub fn productivity(&self, stream: StreamId, values: &[Value]) -> f64 {
        let i = stream.index();
        self.median_of_means(|copy: &Copy_| {
            let mut est = 1.0f64;
            for (k, s) in copy.sketches.iter().enumerate() {
                if k != i {
                    est *= s.value() as f64;
                }
            }
            let mut sign = 1i64;
            for &(pred, attr) in &self.incidence[i] {
                sign *= copy.families[pred].sign(values[attr].raw());
            }
            est * sign as f64
        })
    }

    /// Median over `s2` groups of means over `s1` per-copy statistics.
    fn median_of_means<F: FnMut(&Copy_) -> f64>(&self, mut per_copy: F) -> f64 {
        let s1 = self.config.s1;
        let s2 = self.config.s2;
        let mut group_means = Vec::with_capacity(s2);
        for g in 0..s2 {
            let sum: f64 = self.copies[g * s1..(g + 1) * s1].iter().map(&mut per_copy).sum();
            group_means.push(sum / s1 as f64);
        }
        median_in_place(&mut group_means)
    }
}

/// Median-of-means over per-copy statistics laid out as `s1 × s2` values
/// (group-major). Shared by [`SketchBank`] and the tumbling-epoch layer.
pub fn median_of_means_slice(s1: usize, s2: usize, per_copy: &[f64]) -> f64 {
    assert_eq!(per_copy.len(), s1 * s2, "copy count must be s1*s2");
    let mut group_means = Vec::with_capacity(s2);
    for g in 0..s2 {
        let sum: f64 = per_copy[g * s1..(g + 1) * s1].iter().sum();
        group_means.push(sum / s1 as f64);
    }
    median_in_place(&mut group_means)
}

/// The median of a non-empty slice (averaging the two central elements for
/// even lengths).
fn median_in_place(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("sketch statistics are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{Catalog, StreamSchema, WindowSpec};

    /// The paper's 3-way chain query: R1.A1 = R2.A1 ∧ R2.A2 = R3.A1.
    fn chain_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    fn v(a: u64, b: u64) -> Vec<Value> {
        vec![Value(a), Value(b)]
    }

    /// Exact chain-join count on explicit relations, used as ground truth.
    fn exact_chain_count(r1: &[Vec<Value>], r2: &[Vec<Value>], r3: &[Vec<Value>]) -> u64 {
        let mut count = 0;
        for t1 in r1 {
            for t2 in r2 {
                if t1[0] == t2[0] {
                    for t3 in r3 {
                        if t2[1] == t3[0] {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    #[test]
    fn median_helper() {
        assert_eq!(median_in_place(&mut [3.0]), 3.0);
        assert_eq!(median_in_place(&mut [3.0, 1.0]), 2.0);
        assert_eq!(median_in_place(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn deterministic_under_seed() {
        let q = chain_query();
        let cfg = BankConfig {
            s1: 8,
            s2: 1,
            seed: 99,
        };
        let mut b1 = SketchBank::new(&q, cfg);
        let mut b2 = SketchBank::new(&q, cfg);
        for (s, vals) in [(0, v(1, 2)), (1, v(1, 5)), (2, v(5, 0))] {
            b1.update(StreamId(s), &vals);
            b2.update(StreamId(s), &vals);
        }
        assert_eq!(b1.estimate_join_count(), b2.estimate_join_count());
        assert_eq!(
            b1.productivity(StreamId(1), &v(1, 5)),
            b2.productivity(StreamId(1), &v(1, 5))
        );
    }

    #[test]
    fn count_estimate_is_close_on_structured_data() {
        // A join with a strong signal: value 7 chains through all streams.
        let q = chain_query();
        let mut bank = SketchBank::new(
            &q,
            BankConfig {
                s1: 600,
                s2: 5,
                seed: 7,
            },
        );
        let r1: Vec<_> = (0..30).map(|i| v(7, i)).collect();
        let r2: Vec<_> = (0..20).map(|_| v(7, 3)).collect();
        let r3: Vec<_> = (0..10).map(|i| v(3, i)).collect();
        for t in &r1 {
            bank.update(StreamId(0), t);
        }
        for t in &r2 {
            bank.update(StreamId(1), t);
        }
        for t in &r3 {
            bank.update(StreamId(2), t);
        }
        let exact = exact_chain_count(&r1, &r2, &r3) as f64; // 30*20*10 = 6000
        assert_eq!(exact, 6000.0);
        let est = bank.estimate_join_count();
        let rel_err = (est - exact).abs() / exact;
        assert!(rel_err < 0.35, "est={est} exact={exact} rel_err={rel_err}");
    }

    #[test]
    fn count_estimate_unbiased_over_seeds() {
        // Average the estimator over many independent banks: the mean must
        // converge to the exact count (unbiasedness), much tighter than any
        // single estimate.
        let q = chain_query();
        let r1: Vec<_> = (0..8).flat_map(|a| (0..2).map(move |b| v(a % 4, b))).collect();
        let r2: Vec<_> = (0..10).map(|i| v(i % 4, i % 3)).collect();
        let r3: Vec<_> = (0..9).map(|i| v(i % 3, i)).collect();
        let exact = exact_chain_count(&r1, &r2, &r3) as f64;
        assert!(exact > 0.0);
        let seeds = 300;
        let mut sum = 0.0;
        for seed in 0..seeds {
            let mut bank = SketchBank::new(
                &q,
                BankConfig {
                    s1: 4,
                    s2: 1,
                    seed,
                },
            );
            for t in &r1 {
                bank.update(StreamId(0), t);
            }
            for t in &r2 {
                bank.update(StreamId(1), t);
            }
            for t in &r3 {
                bank.update(StreamId(2), t);
            }
            sum += bank.estimate_join_count();
        }
        let mean = sum / seeds as f64;
        let rel_err = (mean - exact).abs() / exact;
        assert!(rel_err < 0.25, "mean={mean} exact={exact}");
    }

    #[test]
    fn productivity_separates_hot_from_cold_tuples() {
        // R2/R3 heavily favour value 9; a fresh R1 tuple with A1=9 must get
        // a much larger productivity estimate than one with A1=0 (absent).
        let q = chain_query();
        let mut bank = SketchBank::new(
            &q,
            BankConfig {
                s1: 400,
                s2: 3,
                seed: 21,
            },
        );
        for i in 0..50 {
            bank.update(StreamId(1), &v(9, i % 4));
        }
        for i in 0..40 {
            bank.update(StreamId(2), &v(i % 4, 0));
        }
        let hot = bank.productivity(StreamId(0), &v(9, 0));
        let cold = bank.productivity(StreamId(0), &v(0, 0));
        // Exact productivities: hot joins 50 R2-tuples × 10 matching R3 each
        // = 500; cold joins nothing.
        assert!(
            hot > 10.0 * cold.max(1.0),
            "hot={hot} cold={cold} should be separated"
        );
        let exact_hot = 500.0;
        assert!((hot - exact_hot).abs() / exact_hot < 0.5, "hot={hot}");
    }

    #[test]
    fn productivity_for_middle_stream_uses_both_neighbours() {
        let q = chain_query();
        let mut bank = SketchBank::new(
            &q,
            BankConfig {
                s1: 400,
                s2: 3,
                seed: 5,
            },
        );
        for _ in 0..20 {
            bank.update(StreamId(0), &v(1, 0));
        }
        for _ in 0..30 {
            bank.update(StreamId(2), &v(2, 0));
        }
        // t = (1, 2) matches 20 left-side and 30 right-side tuples -> 600.
        let p = bank.productivity(StreamId(1), &v(1, 2));
        assert!((p - 600.0).abs() / 600.0 < 0.4, "p={p}");
        // t = (1, 5): no right-side partner -> ~0.
        let dead = bank.productivity(StreamId(1), &v(1, 5));
        assert!(dead.abs() < 150.0, "dead={dead}");
    }

    #[test]
    fn reset_zeroes_counts_but_keeps_families() {
        let q = chain_query();
        let cfg = BankConfig {
            s1: 4,
            s2: 1,
            seed: 3,
        };
        let mut bank = SketchBank::new(&q, cfg);
        bank.update(StreamId(0), &v(1, 1));
        assert_eq!(bank.tuples_seen(StreamId(0)), 1);
        bank.reset();
        assert_eq!(bank.tuples_seen(StreamId(0)), 0);
        assert_eq!(bank.estimate_join_count(), 0.0);
        // Families survive reset: updating again gives the same state as a
        // fresh bank updated once.
        bank.update(StreamId(0), &v(1, 1));
        let mut fresh = SketchBank::new(&q, cfg);
        fresh.update(StreamId(0), &v(1, 1));
        assert_eq!(bank.estimate_join_count(), fresh.estimate_join_count());
    }

    #[test]
    fn empty_bank_estimates_zero() {
        let q = chain_query();
        let bank = SketchBank::new(&q, BankConfig::default());
        assert_eq!(bank.estimate_join_count(), 0.0);
        assert_eq!(bank.productivity(StreamId(0), &v(1, 1)), 0.0);
    }

}
