//! Banks of `s1 × s2` independent sketch copies with median-of-means
//! combination, for multi-way COUNT and per-tuple productivity estimation.
//!
//! Since the flat-kernel rework the bank is laid out structure-of-arrays:
//! hash coefficients live copy-major per predicate in [`SignFamilies`],
//! and the per-copy counters of all streams share one contiguous `Vec<i64>`
//! indexed `[stream × copies + copy]`. Updates and estimates stream
//! linearly through those arrays (see [`crate::kernel`]) instead of
//! chasing per-copy allocations, and per-tuple sign vectors are evaluated
//! once, bit-packed, and memoized in a [`SignCache`]. All estimates are
//! bit-identical to the legacy AoS layout under the same seed (enforced by
//! `tests/equivalence.rs`).

use crate::kernel;
use crate::signs::{combine_packed_signs, SignCache, SignCacheStats, SignFamilies};
use mstream_types::{JoinQuery, StreamId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Sizing of a [`SketchBank`].
///
/// The final estimate is the **median** over `s2` groups of the **mean**
/// over `s1` independent atomic-sketch copies (Dobra et al. §3.1). Larger
/// `s1` shrinks variance; larger `s2` boosts the confidence of the median.
/// The paper's experiments construct 1000 copies and return their average,
/// i.e. `s1 = 1000, s2 = 1` (see DESIGN.md, parameter reconstruction —
/// per-tuple productivities in skewed windows are unusable below several
/// hundred copies, which pins down the OCR-damaged count).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankConfig {
    /// Copies averaged within a group.
    pub s1: usize,
    /// Groups whose means are median-combined.
    pub s2: usize,
    /// Seed for drawing the hash families (full-run determinism).
    pub seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            s1: 1000,
            s2: 1,
            seed: 0x5EED_5EED,
        }
    }
}

impl BankConfig {
    /// Total number of independent copies.
    pub fn copies(&self) -> usize {
        self.s1 * self.s2
    }
}

/// Reusable query-path buffers (packed sign words, per-copy statistics,
/// group means) plus the packed-sign memo. Kept behind a `RefCell` so the
/// read-only estimation API (`estimate_join_count`, `productivity`) stays
/// `&self` while never allocating per call.
#[derive(Clone, Debug, Default)]
struct BankScratch {
    cache: SignCache,
    words: Vec<u64>,
    per_copy: Vec<f64>,
    groups: Vec<f64>,
}

/// A bank of `s1 × s2` sketch copies over the streams of one [`JoinQuery`].
///
/// A `SketchBank` covers **one window's worth** of each stream (one
/// tumbling epoch). The epoch discipline — current vs. last bank, rollover
/// every `n` seconds — lives in [`crate::TumblingSketches`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SketchBank {
    config: BankConfig,
    n_streams: usize,
    /// `incidence[k]` = `(predicate index, attr index)` pairs of stream `k`.
    incidence: Vec<Vec<(usize, usize)>>,
    /// SoA hash coefficient banks, one polynomial per (predicate, copy).
    families: SignFamilies,
    /// `counters[k * copies + c]` = atomic sketch `X_k` in copy `c`.
    counters: Vec<i64>,
    /// Tuples folded per stream this epoch.
    tuples: Vec<u64>,
    /// Query scratch + packed-sign memo (not part of the logical state).
    #[serde(skip)]
    scratch: RefCell<BankScratch>,
}

impl SketchBank {
    /// Builds a zeroed bank for `query`, drawing hash families from
    /// `config.seed`.
    pub fn new(query: &JoinQuery, config: BankConfig) -> Self {
        assert!(config.s1 >= 1 && config.s2 >= 1, "s1 and s2 must be >= 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_streams = query.n_streams();
        let n_preds = query.predicates().len();
        let copies = config.copies();
        let families = SignFamilies::draw(&mut rng, n_preds, copies);
        let incidence = (0..n_streams)
            .map(|s| query.incident(StreamId(s)).to_vec())
            .collect();
        SketchBank {
            config,
            n_streams,
            incidence,
            families,
            counters: vec![0; n_streams * copies],
            tuples: vec![0; n_streams],
            scratch: RefCell::new(BankScratch::default()),
        }
    }

    /// The bank's sizing.
    pub fn config(&self) -> BankConfig {
        self.config
    }

    /// Number of streams covered.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// The `(predicate index, attribute index)` pairs incident to `stream`
    /// — the attribute positions whose values determine the tuple's sign
    /// product (and therefore its productivity estimate, once the partner
    /// snapshots are frozen).
    pub fn incidence(&self, stream: StreamId) -> &[(usize, usize)] {
        &self.incidence[stream.index()]
    }

    /// Folds a tuple of `stream` (given its full value row) into every copy.
    ///
    /// Cost: one packed-sign lookup per incident predicate (a polynomial
    /// sweep on cache miss, a memcpy-sized fetch on hit), one XOR combine,
    /// and `s1·s2` counter adds — no per-copy pointer chasing.
    pub fn update(&mut self, stream: StreamId, values: &[Value]) {
        let k = stream.index();
        debug_assert!(k < self.n_streams);
        let copies = self.config.copies();
        let scratch = self.scratch.get_mut();
        combine_packed_signs(
            &self.families,
            &mut scratch.cache,
            &self.incidence[k],
            values,
            &mut scratch.words,
        );
        let row = &mut self.counters[k * copies..(k + 1) * copies];
        kernel::fold_packed_signs(&scratch.words, row);
        self.tuples[k] += 1;
    }

    /// The ξ-sign product of a tuple of `stream` in copy `c`
    /// (`Π_{j ∈ attrs(R_i)} ξ_{j, t[j]}`). Scalar path, exposed for
    /// diagnostics and the equivalence suite.
    #[inline]
    pub fn sign_in_copy(&self, c: usize, stream: StreamId, values: &[Value]) -> i64 {
        let mut sign = 1i64;
        for &(pred, attr) in &self.incidence[stream.index()] {
            sign *= self.families.sign_one(pred, c, values[attr].raw());
        }
        sign
    }

    /// Writes the packed per-copy sign products of a tuple of `stream`
    /// into `out` (bit `c` set ⇔ copy `c` has sign −1), served from the
    /// memoizing sign cache. This is the batched counterpart of
    /// [`SketchBank::sign_in_copy`].
    pub fn packed_signs_into(&self, stream: StreamId, values: &[Value], out: &mut Vec<u64>) {
        let mut scratch = self.scratch.borrow_mut();
        combine_packed_signs(
            &self.families,
            &mut scratch.cache,
            &self.incidence[stream.index()],
            values,
            out,
        );
    }

    /// The raw atomic-sketch counter `X_k` of `stream` in copy `c`.
    #[inline]
    pub fn sketch_value(&self, c: usize, stream: StreamId) -> i64 {
        self.counters[stream.index() * self.config.copies() + c]
    }

    /// The contiguous per-copy counter row of `stream` (`X_k` for every
    /// copy) — the flat view the tumbling layer snapshots and multiplies.
    #[inline]
    pub fn counters_row(&self, stream: StreamId) -> &[i64] {
        let copies = self.config.copies();
        let k = stream.index();
        &self.counters[k * copies..(k + 1) * copies]
    }

    /// Takes a snapshot of `stream`'s per-copy counters and resets them
    /// (per-stream epoch rollover for tuple-based windows, paper §4.1).
    pub fn take_stream_snapshot(&mut self, stream: StreamId) -> Vec<i64> {
        let copies = self.config.copies();
        let k = stream.index();
        let row = &mut self.counters[k * copies..(k + 1) * copies];
        let snapshot = row.to_vec();
        row.fill(0);
        self.tuples[k] = 0;
        snapshot
    }

    /// Resets every atomic sketch (epoch rollover); hash families persist,
    /// and so does the packed-sign memo — sign vectors depend only on the
    /// families, so they stay valid across epochs.
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.tuples.fill(0);
    }

    /// Number of tuples folded into stream `k` this epoch.
    pub fn tuples_seen(&self, stream: StreamId) -> u64 {
        self.tuples[stream.index()]
    }

    /// Hit/miss/occupancy counters of the packed-sign memo.
    pub fn sign_cache_stats(&self) -> SignCacheStats {
        self.scratch.borrow().cache.stats()
    }

    /// Drops every memoized sign vector (the vectors remain valid for the
    /// bank's lifetime; this only trades recomputation for memory).
    pub fn clear_sign_cache(&self) {
        self.scratch.borrow_mut().cache.clear();
    }

    /// Median-of-means estimate of the full multi-way COUNT
    /// `|W_1 ⋈ … ⋈ W_n|` from this bank's sketches.
    pub fn estimate_join_count(&self) -> f64 {
        let copies = self.config.copies();
        let mut scratch = self.scratch.borrow_mut();
        let BankScratch {
            per_copy, groups, ..
        } = &mut *scratch;
        per_copy.resize(copies, 0.0);
        kernel::column_products(&self.counters, copies, usize::MAX, per_copy);
        median_of_means_into(self.config.s1, self.config.s2, per_copy, groups)
    }

    /// Median-of-means estimate of `prod(t)` for a tuple of `stream` —
    /// the COUNT of the join in which `W_stream = {t}`:
    /// `prod(t) = Π_{j ∈ attrs(R_i)} ξ_{j, t[j]} · Π_{k ≠ i} X_k`.
    ///
    /// The estimate is unbiased but can come out negative for unproductive
    /// tuples; callers that need a priority should clamp at zero (true
    /// productivity is a count, hence non-negative).
    pub fn productivity(&self, stream: StreamId, values: &[Value]) -> f64 {
        let i = stream.index();
        let copies = self.config.copies();
        let mut scratch = self.scratch.borrow_mut();
        let BankScratch {
            cache,
            words,
            per_copy,
            groups,
        } = &mut *scratch;
        combine_packed_signs(&self.families, cache, &self.incidence[i], values, words);
        per_copy.resize(copies, 0.0);
        kernel::column_products(&self.counters, copies, i, per_copy);
        kernel::apply_packed_signs(words, per_copy);
        median_of_means_into(self.config.s1, self.config.s2, per_copy, groups)
    }
}

/// Median over `s2` groups of means over `s1` per-copy statistics laid out
/// group-major, reusing `groups` as the scratch buffer for the group means
/// (no allocation once it has grown to `s2`). Shared by [`SketchBank`] and
/// the tumbling-epoch layer.
///
/// The mean stage runs through [`kernel::group_sums`], which keeps each
/// group's fold strictly serial in every kernel mode (f64 addition is not
/// associative) and lane-parallelizes only across independent groups, so
/// the estimate is bit-identical regardless of dispatch.
pub fn median_of_means_into(
    s1: usize,
    s2: usize,
    per_copy: &[f64],
    groups: &mut Vec<f64>,
) -> f64 {
    groups.clear();
    kernel::group_sums(per_copy, s1, s2, groups);
    for g in groups.iter_mut() {
        *g /= s1 as f64;
    }
    median_in_place(groups)
}

/// Median-of-means over per-copy statistics laid out as `s1 × s2` values
/// (group-major). Allocating convenience wrapper around
/// [`median_of_means_into`].
pub fn median_of_means_slice(s1: usize, s2: usize, per_copy: &[f64]) -> f64 {
    let mut groups = Vec::with_capacity(s2);
    median_of_means_into(s1, s2, per_copy, &mut groups)
}

/// The median of a non-empty slice (averaging the two central elements for
/// even lengths).
fn median_in_place(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("sketch statistics are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{Catalog, StreamSchema, WindowSpec};

    /// The paper's 3-way chain query: R1.A1 = R2.A1 ∧ R2.A2 = R3.A1.
    fn chain_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    fn v(a: u64, b: u64) -> Vec<Value> {
        vec![Value(a), Value(b)]
    }

    /// Exact chain-join count on explicit relations, used as ground truth.
    fn exact_chain_count(r1: &[Vec<Value>], r2: &[Vec<Value>], r3: &[Vec<Value>]) -> u64 {
        let mut count = 0;
        for t1 in r1 {
            for t2 in r2 {
                if t1[0] == t2[0] {
                    for t3 in r3 {
                        if t2[1] == t3[0] {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    #[test]
    fn median_helper() {
        assert_eq!(median_in_place(&mut [3.0]), 3.0);
        assert_eq!(median_in_place(&mut [3.0, 1.0]), 2.0);
        assert_eq!(median_in_place(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn median_of_means_into_reuses_scratch() {
        let per_copy = [1.0, 3.0, 10.0, 20.0];
        let mut groups = Vec::new();
        assert_eq!(median_of_means_into(2, 2, &per_copy, &mut groups), 8.5);
        let cap = groups.capacity();
        assert_eq!(median_of_means_into(2, 2, &per_copy, &mut groups), 8.5);
        assert_eq!(groups.capacity(), cap, "no reallocation on reuse");
        assert_eq!(median_of_means_slice(4, 1, &per_copy), 8.5);
    }

    #[test]
    fn deterministic_under_seed() {
        let q = chain_query();
        let cfg = BankConfig {
            s1: 8,
            s2: 1,
            seed: 99,
        };
        let mut b1 = SketchBank::new(&q, cfg);
        let mut b2 = SketchBank::new(&q, cfg);
        for (s, vals) in [(0, v(1, 2)), (1, v(1, 5)), (2, v(5, 0))] {
            b1.update(StreamId(s), &vals);
            b2.update(StreamId(s), &vals);
        }
        assert_eq!(b1.estimate_join_count(), b2.estimate_join_count());
        assert_eq!(
            b1.productivity(StreamId(1), &v(1, 5)),
            b2.productivity(StreamId(1), &v(1, 5))
        );
    }

    #[test]
    fn count_estimate_is_close_on_structured_data() {
        // A join with a strong signal: value 7 chains through all streams.
        let q = chain_query();
        let mut bank = SketchBank::new(
            &q,
            BankConfig {
                s1: 600,
                s2: 5,
                seed: 7,
            },
        );
        let r1: Vec<_> = (0..30).map(|i| v(7, i)).collect();
        let r2: Vec<_> = (0..20).map(|_| v(7, 3)).collect();
        let r3: Vec<_> = (0..10).map(|i| v(3, i)).collect();
        for t in &r1 {
            bank.update(StreamId(0), t);
        }
        for t in &r2 {
            bank.update(StreamId(1), t);
        }
        for t in &r3 {
            bank.update(StreamId(2), t);
        }
        let exact = exact_chain_count(&r1, &r2, &r3) as f64; // 30*20*10 = 6000
        assert_eq!(exact, 6000.0);
        let est = bank.estimate_join_count();
        let rel_err = (est - exact).abs() / exact;
        assert!(rel_err < 0.35, "est={est} exact={exact} rel_err={rel_err}");
    }

    #[test]
    fn count_estimate_unbiased_over_seeds() {
        // Average the estimator over many independent banks: the mean must
        // converge to the exact count (unbiasedness), much tighter than any
        // single estimate.
        let q = chain_query();
        let r1: Vec<_> = (0..8).flat_map(|a| (0..2).map(move |b| v(a % 4, b))).collect();
        let r2: Vec<_> = (0..10).map(|i| v(i % 4, i % 3)).collect();
        let r3: Vec<_> = (0..9).map(|i| v(i % 3, i)).collect();
        let exact = exact_chain_count(&r1, &r2, &r3) as f64;
        assert!(exact > 0.0);
        let seeds = 300;
        let mut sum = 0.0;
        for seed in 0..seeds {
            let mut bank = SketchBank::new(
                &q,
                BankConfig {
                    s1: 4,
                    s2: 1,
                    seed,
                },
            );
            for t in &r1 {
                bank.update(StreamId(0), t);
            }
            for t in &r2 {
                bank.update(StreamId(1), t);
            }
            for t in &r3 {
                bank.update(StreamId(2), t);
            }
            sum += bank.estimate_join_count();
        }
        let mean = sum / seeds as f64;
        let rel_err = (mean - exact).abs() / exact;
        assert!(rel_err < 0.25, "mean={mean} exact={exact}");
    }

    #[test]
    fn productivity_separates_hot_from_cold_tuples() {
        // R2/R3 heavily favour value 9; a fresh R1 tuple with A1=9 must get
        // a much larger productivity estimate than one with A1=0 (absent).
        let q = chain_query();
        let mut bank = SketchBank::new(
            &q,
            BankConfig {
                s1: 400,
                s2: 3,
                seed: 21,
            },
        );
        for i in 0..50 {
            bank.update(StreamId(1), &v(9, i % 4));
        }
        for i in 0..40 {
            bank.update(StreamId(2), &v(i % 4, 0));
        }
        let hot = bank.productivity(StreamId(0), &v(9, 0));
        let cold = bank.productivity(StreamId(0), &v(0, 0));
        // Exact productivities: hot joins 50 R2-tuples × 10 matching R3 each
        // = 500; cold joins nothing.
        assert!(
            hot > 10.0 * cold.max(1.0),
            "hot={hot} cold={cold} should be separated"
        );
        let exact_hot = 500.0;
        assert!((hot - exact_hot).abs() / exact_hot < 0.5, "hot={hot}");
    }

    #[test]
    fn productivity_for_middle_stream_uses_both_neighbours() {
        let q = chain_query();
        let mut bank = SketchBank::new(
            &q,
            BankConfig {
                s1: 400,
                s2: 3,
                seed: 5,
            },
        );
        for _ in 0..20 {
            bank.update(StreamId(0), &v(1, 0));
        }
        for _ in 0..30 {
            bank.update(StreamId(2), &v(2, 0));
        }
        // t = (1, 2) matches 20 left-side and 30 right-side tuples -> 600.
        let p = bank.productivity(StreamId(1), &v(1, 2));
        assert!((p - 600.0).abs() / 600.0 < 0.4, "p={p}");
        // t = (1, 5): no right-side partner -> ~0.
        let dead = bank.productivity(StreamId(1), &v(1, 5));
        assert!(dead.abs() < 150.0, "dead={dead}");
    }

    #[test]
    fn reset_zeroes_counts_but_keeps_families() {
        let q = chain_query();
        let cfg = BankConfig {
            s1: 4,
            s2: 1,
            seed: 3,
        };
        let mut bank = SketchBank::new(&q, cfg);
        bank.update(StreamId(0), &v(1, 1));
        assert_eq!(bank.tuples_seen(StreamId(0)), 1);
        bank.reset();
        assert_eq!(bank.tuples_seen(StreamId(0)), 0);
        assert_eq!(bank.estimate_join_count(), 0.0);
        // Families survive reset: updating again gives the same state as a
        // fresh bank updated once.
        bank.update(StreamId(0), &v(1, 1));
        let mut fresh = SketchBank::new(&q, cfg);
        fresh.update(StreamId(0), &v(1, 1));
        assert_eq!(bank.estimate_join_count(), fresh.estimate_join_count());
    }

    #[test]
    fn empty_bank_estimates_zero() {
        let q = chain_query();
        let bank = SketchBank::new(&q, BankConfig::default());
        assert_eq!(bank.estimate_join_count(), 0.0);
        assert_eq!(bank.productivity(StreamId(0), &v(1, 1)), 0.0);
    }

    #[test]
    fn snapshot_returns_row_and_zeroes_it() {
        let q = chain_query();
        let cfg = BankConfig {
            s1: 6,
            s2: 1,
            seed: 11,
        };
        let mut bank = SketchBank::new(&q, cfg);
        bank.update(StreamId(1), &v(4, 2));
        bank.update(StreamId(1), &v(4, 2));
        let expected: Vec<i64> = (0..6).map(|c| bank.sketch_value(c, StreamId(1))).collect();
        assert!(expected.iter().any(|&x| x != 0));
        let snap = bank.take_stream_snapshot(StreamId(1));
        assert_eq!(snap, expected);
        assert_eq!(bank.counters_row(StreamId(1)), vec![0i64; 6].as_slice());
        assert_eq!(bank.tuples_seen(StreamId(1)), 0);
    }

    #[test]
    fn packed_signs_match_scalar_signs_and_hit_cache() {
        let q = chain_query();
        let cfg = BankConfig {
            s1: 70,
            s2: 1,
            seed: 13,
        };
        let bank = SketchBank::new(&q, cfg);
        let vals = v(5, 9);
        let mut words = Vec::new();
        bank.packed_signs_into(StreamId(1), &vals, &mut words);
        for c in 0..70 {
            let packed = if (words[c / 64] >> (c % 64)) & 1 == 1 { -1 } else { 1 };
            assert_eq!(packed, bank.sign_in_copy(c, StreamId(1), &vals), "copy {c}");
        }
        let before = bank.sign_cache_stats();
        bank.packed_signs_into(StreamId(1), &vals, &mut words);
        let after = bank.sign_cache_stats();
        assert_eq!(after.misses, before.misses, "second lookup is all hits");
        assert!(after.hits > before.hits);
        bank.clear_sign_cache();
        assert_eq!(bank.sign_cache_stats().entries, 0);
    }
}
