//! Bit-packed ξ-sign vectors over structure-of-arrays hash banks.
//!
//! The AGMS hot path asks one question over and over: *for this predicate
//! and this attribute value, what is the ±1 sign in every one of the
//! `s1·s2` copies?* The answer is a vector of 1000 signs — one bit each —
//! so this module evaluates all copies of a predicate's polynomial in one
//! linear sweep over flat coefficient arrays ([`SignFamilies`]), packs the
//! result into a `[u64]` bitvector (bit set ⇔ sign is −1), and memoizes
//! the packed vectors in a bounded `(predicate, value) → bits` cache
//! ([`SignCache`]) that exploits the Zipfian value repetition of the
//! paper's workloads.
//!
//! Signs of *incident predicates* combine by product; since each sign is
//! ±1, the product is +1 exactly when an even number of factors are −1 —
//! i.e. packed vectors combine by **XOR** ([`combine_packed_signs`]).
//!
//! Sign vectors depend only on the hash coefficients, which are drawn once
//! at bank construction and never change (epoch rollovers reset counters,
//! not families). Cached vectors therefore stay valid for the bank's whole
//! lifetime; the cache bound exists purely to cap memory.

use crate::hash::{mod_mersenne, FourWiseHash};
use mstream_types::Value;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sign bits packed per `u64` word.
const WORD_BITS: usize = 64;

/// Default cap on memoized `(predicate, value)` sign vectors.
///
/// At the paper's sizing (1000 copies = 16 words = 128 bytes per vector)
/// this bounds the cache at ~1 MiB — far below the window stores — while
/// covering every value a Zipfian epoch realistically revisits.
pub const DEFAULT_SIGN_CACHE_ENTRIES: usize = 8192;

/// Number of `u64` words needed to hold one sign bit per copy.
#[inline]
pub fn words_for(copies: usize) -> usize {
    copies.div_ceil(WORD_BITS)
}

/// Flat, copy-major banks of four-wise independent ±1 families.
///
/// The legacy layout stored one [`FourWiseHash`] per `(copy, predicate)`
/// behind two levels of `Vec`, so evaluating "all copies of predicate `j`"
/// chased 1000 pointers. Here the degree-`d` coefficient of copy `c` for
/// predicate `j` lives at `coeffs[j][d * copies + c]`: evaluating every
/// copy for one value is four contiguous streams through one allocation.
///
/// Families are drawn through [`FourWiseHash::random`] in the exact order
/// the legacy layout used (copy-major outer, predicate inner), so a given
/// seed yields bit-identical signs in both layouts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignFamilies {
    copies: usize,
    /// `coeffs[pred][d * copies + c]` = degree-`d` coefficient of copy `c`.
    coeffs: Vec<Vec<u64>>,
}

impl SignFamilies {
    /// Draws `copies` independent families per predicate from `rng`,
    /// consuming the RNG in the legacy copy-major order.
    pub fn draw<R: Rng + ?Sized>(rng: &mut R, n_predicates: usize, copies: usize) -> Self {
        let mut coeffs = vec![vec![0u64; 4 * copies]; n_predicates];
        for c in 0..copies {
            for bank in coeffs.iter_mut() {
                let h = FourWiseHash::random(rng).coeffs();
                for (d, &coeff) in h.iter().enumerate() {
                    bank[d * copies + c] = coeff;
                }
            }
        }
        SignFamilies { copies, coeffs }
    }

    /// Number of predicates covered.
    pub fn n_predicates(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of independent copies per predicate.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Reassembles the [`FourWiseHash`] of one `(predicate, copy)` pair
    /// (diagnostics and equivalence tests).
    pub fn family(&self, pred: usize, copy: usize) -> FourWiseHash {
        let bank = &self.coeffs[pred];
        let n = self.copies;
        FourWiseHash::from_coeffs([
            bank[copy],
            bank[n + copy],
            bank[2 * n + copy],
            bank[3 * n + copy],
        ])
    }

    /// The scalar ±1 sign of one `(predicate, copy)` pair at `x` —
    /// bit-identical to `FourWiseHash::sign` on the same coefficients.
    #[inline]
    pub fn sign_one(&self, pred: usize, copy: usize, x: u64) -> i64 {
        let bank = &self.coeffs[pred];
        let n = self.copies;
        let x = mod_mersenne(x as u128);
        // Horner, highest degree first: (((c3·x + c2)·x + c1)·x + c0).
        let mut acc = bank[3 * n + copy];
        for d in (0..3).rev() {
            acc = mod_mersenne(acc as u128 * x as u128 + bank[d * n + copy] as u128);
        }
        if acc & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Evaluates predicate `pred` at `x` across **all** copies and packs
    /// the signs into `out` (bit `c % 64` of word `c / 64` set ⇔ copy `c`
    /// has sign −1). `out` is cleared and resized to [`words_for`] words.
    ///
    /// Dispatches between the scalar reference loop and a lane-blocked
    /// form ([`crate::kernel::LANES`] independent Horner chains per step);
    /// the arithmetic is pure integer math, so both are exact and
    /// bit-identical — proven by [`Self::eval_packed_scalar`] /
    /// [`Self::eval_packed_lanes`] comparisons in the equivalence suite.
    pub fn eval_packed_into(&self, pred: usize, x: u64, out: &mut Vec<u64>) {
        match crate::kernel::kernel_mode() {
            crate::kernel::KernelMode::Scalar => self.eval_packed_scalar(pred, x, out),
            _ => self.eval_packed_lanes(pred, x, out),
        }
    }

    /// Scalar reference body of [`Self::eval_packed_into`]: one Horner
    /// chain per copy, ascending copy order.
    pub fn eval_packed_scalar(&self, pred: usize, x: u64, out: &mut Vec<u64>) {
        let n = self.copies;
        out.clear();
        out.resize(words_for(n), 0);
        let bank = &self.coeffs[pred];
        let x = mod_mersenne(x as u128);
        let (c0, rest) = bank.split_at(n);
        let (c1, rest) = rest.split_at(n);
        let (c2, c3) = rest.split_at(n);
        for c in 0..n {
            let mut acc = c3[c];
            acc = mod_mersenne(acc as u128 * x as u128 + c2[c] as u128);
            acc = mod_mersenne(acc as u128 * x as u128 + c1[c] as u128);
            acc = mod_mersenne(acc as u128 * x as u128 + c0[c] as u128);
            out[c / WORD_BITS] |= (acc & 1) << (c % WORD_BITS);
        }
    }

    /// Lane-blocked body of [`Self::eval_packed_into`]:
    /// [`crate::kernel::LANES`] independent Horner chains advance together
    /// (the copy-major coefficient layout makes each degree a contiguous
    /// load), with a scalar tail for `copies % LANES != 0`. Exact — every
    /// chain performs the identical integer operations as the scalar loop.
    pub fn eval_packed_lanes(&self, pred: usize, x: u64, out: &mut Vec<u64>) {
        const LANES: usize = crate::kernel::LANES;
        let n = self.copies;
        out.clear();
        out.resize(words_for(n), 0);
        let bank = &self.coeffs[pred];
        let x = mod_mersenne(x as u128) as u128;
        let (c0, rest) = bank.split_at(n);
        let (c1, rest) = rest.split_at(n);
        let (c2, c3) = rest.split_at(n);
        let mut c = 0usize;
        while c + LANES <= n {
            let mut acc = [0u64; LANES];
            acc.copy_from_slice(&c3[c..c + LANES]);
            for coeffs in [c2, c1, c0] {
                for l in 0..LANES {
                    acc[l] = mod_mersenne(acc[l] as u128 * x + coeffs[c + l] as u128);
                }
            }
            for (l, a) in acc.iter().enumerate() {
                let i = c + l;
                out[i / WORD_BITS] |= (a & 1) << (i % WORD_BITS);
            }
            c += LANES;
        }
        for i in c..n {
            let mut acc = c3[i];
            acc = mod_mersenne(acc as u128 * x + c2[i] as u128);
            acc = mod_mersenne(acc as u128 * x + c1[i] as u128);
            acc = mod_mersenne(acc as u128 * x + c0[i] as u128);
            out[i / WORD_BITS] |= (acc & 1) << (i % WORD_BITS);
        }
    }
}

/// Aggregate counters of a [`SignCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignCacheStats {
    /// Lookups served from a memoized vector.
    pub hits: u64,
    /// Lookups that had to evaluate the polynomial bank.
    pub misses: u64,
    /// Vectors currently resident.
    pub entries: usize,
}

/// Bounded memo of packed sign vectors keyed by `(predicate, value)`.
#[derive(Clone, Debug)]
pub struct SignCache {
    map: HashMap<(usize, u64), Vec<u64>>,
    hits: u64,
    misses: u64,
    max_entries: usize,
}

impl Default for SignCache {
    fn default() -> Self {
        SignCache::with_capacity_bound(DEFAULT_SIGN_CACHE_ENTRIES)
    }
}

impl SignCache {
    /// An empty cache holding at most `max_entries` vectors (at least 1).
    pub fn with_capacity_bound(max_entries: usize) -> Self {
        SignCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            max_entries: max_entries.max(1),
        }
    }

    /// The packed sign vector of `(pred, value)`, evaluating and memoizing
    /// it on first sight. When the bound is hit the whole map is dropped
    /// (generation-style eviction: O(1) amortized, and the very next epoch
    /// of a Zipfian workload repopulates the hot set immediately).
    pub fn get_or_compute(
        &mut self,
        families: &SignFamilies,
        pred: usize,
        value: u64,
    ) -> &[u64] {
        if self.map.contains_key(&(pred, value)) {
            self.hits += 1;
        } else {
            self.misses += 1;
            if self.map.len() >= self.max_entries {
                self.map.clear();
            }
            let mut bits = Vec::new();
            families.eval_packed_into(pred, value, &mut bits);
            self.map.insert((pred, value), bits);
        }
        self.map
            .get(&(pred, value))
            .expect("inserted above")
            .as_slice()
    }

    /// Drops every memoized vector; hit/miss counters persist.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> SignCacheStats {
        SignCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }
}

/// XOR-combines the packed sign vectors of every predicate incident to a
/// stream, evaluated at the tuple's attribute values, into `out` — the
/// packed per-copy sign *products* `Π_{j ∈ attrs(R_i)} ξ_{j, t[j]}`.
///
/// `incidence` is the stream's `(predicate index, attribute index)` list;
/// an empty list leaves `out` all-zero (every sign +1), matching the
/// scalar convention of an empty product.
pub fn combine_packed_signs(
    families: &SignFamilies,
    cache: &mut SignCache,
    incidence: &[(usize, usize)],
    values: &[Value],
    out: &mut Vec<u64>,
) {
    out.clear();
    out.resize(words_for(families.copies()), 0);
    for (idx, &(pred, attr)) in incidence.iter().enumerate() {
        let bits = cache.get_or_compute(families, pred, values[attr].raw());
        if idx == 0 {
            out.copy_from_slice(bits);
        } else {
            for (o, &b) in out.iter_mut().zip(bits) {
                *o ^= b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn families(seed: u64, n_preds: usize, copies: usize) -> SignFamilies {
        let mut rng = StdRng::seed_from_u64(seed);
        SignFamilies::draw(&mut rng, n_preds, copies)
    }

    /// The legacy construction order: copy-major, predicate inner.
    fn legacy_families(seed: u64, n_preds: usize, copies: usize) -> Vec<Vec<FourWiseHash>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..copies)
            .map(|_| (0..n_preds).map(|_| FourWiseHash::random(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(1000), 16);
    }

    #[test]
    fn draw_matches_legacy_rng_order() {
        let soa = families(77, 2, 9);
        let legacy = legacy_families(77, 2, 9);
        for (copy, per_copy) in legacy.iter().enumerate() {
            for (pred, expected) in per_copy.iter().enumerate() {
                assert_eq!(
                    soa.family(pred, copy),
                    *expected,
                    "copy {copy} pred {pred}"
                );
            }
        }
    }

    #[test]
    fn packed_bits_match_scalar_signs() {
        let soa = families(3, 2, 130); // > 2 words, with a ragged tail
        let mut bits = Vec::new();
        for pred in 0..2 {
            for x in [0u64, 1, 7, 123_456_789, u64::MAX] {
                soa.eval_packed_into(pred, x, &mut bits);
                assert_eq!(bits.len(), words_for(130));
                for c in 0..130 {
                    let packed = if (bits[c / 64] >> (c % 64)) & 1 == 1 { -1 } else { 1 };
                    assert_eq!(packed, soa.sign_one(pred, c, x), "pred {pred} copy {c} x {x}");
                    assert_eq!(packed, soa.family(pred, c).sign(x));
                }
            }
        }
    }

    /// Hand-computed golden vector: coeffs [3, 5, 7, 11] give
    /// h(0) = 3 (odd → −1), h(1) = 26 (even → +1), h(2) = 129 (odd → −1).
    #[test]
    fn golden_signs_for_known_coefficients() {
        let h = FourWiseHash::from_coeffs([3, 5, 7, 11]);
        assert_eq!(h.sign(0), -1);
        assert_eq!(h.sign(1), 1);
        assert_eq!(h.sign(2), -1);
    }

    #[test]
    fn xor_combine_is_sign_product() {
        let soa = families(5, 2, 70);
        let mut cache = SignCache::default();
        let incidence = [(0usize, 0usize), (1usize, 1usize)];
        let values = [Value(42), Value(99)];
        let mut combined = Vec::new();
        combine_packed_signs(&soa, &mut cache, &incidence, &values, &mut combined);
        for c in 0..70 {
            let product = soa.sign_one(0, c, 42) * soa.sign_one(1, c, 99);
            let packed = if (combined[c / 64] >> (c % 64)) & 1 == 1 { -1 } else { 1 };
            assert_eq!(packed, product, "copy {c}");
        }
    }

    #[test]
    fn empty_incidence_means_all_plus_one() {
        let soa = families(5, 1, 10);
        let mut cache = SignCache::default();
        let mut combined = vec![u64::MAX; 3];
        combine_packed_signs(&soa, &mut cache, &[], &[], &mut combined);
        assert_eq!(combined, vec![0u64; words_for(10)]);
    }

    #[test]
    fn cache_counts_hits_and_bounds_entries() {
        let soa = families(9, 1, 8);
        let mut cache = SignCache::with_capacity_bound(4);
        for _ in 0..3 {
            cache.get_or_compute(&soa, 0, 1);
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        // Overflow the bound: generation reset keeps entries <= max.
        for v in 0..20u64 {
            cache.get_or_compute(&soa, 0, v);
        }
        assert!(cache.stats().entries <= 4);
        // Cached and freshly evaluated vectors agree.
        let mut fresh = Vec::new();
        soa.eval_packed_into(0, 1, &mut fresh);
        assert_eq!(cache.get_or_compute(&soa, 0, 1), fresh.as_slice());
    }
}
