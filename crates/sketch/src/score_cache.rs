//! Epoch-scoped memo of productivity estimates.
//!
//! Within one tumbling epoch a productivity estimate is a pure function of
//! `(stream, incident join-attribute values, frozen snapshot)` — the
//! arriving tuple contributes only its packed signs, and every partner row
//! is a frozen epoch snapshot that does not change between rollovers. On
//! skewed traffic most estimates therefore recompute a value already
//! produced this epoch. This module memoizes the **exact `f64` the kernel
//! returned** under an exact (collision-free) key, so a cache hit is
//! bit-identical to recomputation by construction.
//!
//! Keying and invalidation contract (DESIGN.md §16):
//!
//! * keys carry an **epoch generation** — bumped on every roll (any
//!   stream, either epoch discipline) — so an entry can never outlive the
//!   snapshot it was computed from;
//! * the standard last-epoch lookup keys at the current generation; the
//!   event-time *late* lookup keys at `generation − 1` (the `prev` bank it
//!   reads is the snapshot that was `last` one roll ago);
//! * only fully-frozen lookups are cacheable — any path that folds a
//!   *live* (still-accumulating) bank row is recomputed every time;
//! * the table is bounded in the style of the packed-sign memo: hitting
//!   the bound drops the whole map (O(1) amortized; a Zipfian hot set
//!   repopulates immediately), and every rollover clears it wholesale.
//!
//! `MSTREAM_SCORE_CACHE=off` (or `0`/`false`) disables memoization
//! process-wide; [`TumblingSketches::set_score_cache`] overrides per
//! instance (the audit harness A/B-compares cached and uncached runs in
//! one process).
//!
//! [`TumblingSketches::set_score_cache`]: crate::TumblingSketches::set_score_cache

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Default bound on resident estimates (matches the packed-sign memo's
/// order of magnitude: the hot key set of a skewed workload fits easily,
/// and a uniform workload cycles through wholesale drops instead of
/// growing without bound).
pub const DEFAULT_SCORE_CACHE_ENTRIES: usize = 8192;

/// Most incident join attributes a stream may have and still be cached
/// (the key inlines the values; streams beyond this skip the memo).
pub const MAX_CACHED_ATTRS: usize = 4;

/// Resolves the `MSTREAM_SCORE_CACHE` environment pin once per process:
/// `off` / `0` / `false` (case-insensitive) disable the memo, anything
/// else (including unset) enables it.
pub fn score_cache_env_default() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| match std::env::var("MSTREAM_SCORE_CACHE") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    })
}

/// Exact lookup key of one memoized estimate. No hashing of the values
/// into a digest — the raw attribute values are the key, so distinct
/// inputs can never alias and a hit is bit-identical by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScoreKey {
    /// Epoch generation the frozen snapshot belongs to (the current
    /// generation for last-epoch lookups, `gen − 1` for late lookups
    /// against the `prev` bank).
    pub generation: u64,
    /// Arriving tuple's stream.
    pub stream: u32,
    /// Raw values of the stream's incident join attributes, in incidence
    /// order; slots past `n_values` are zero-padded.
    pub values: [u64; MAX_CACHED_ATTRS],
    /// How many of `values` are meaningful.
    pub n_values: u8,
}

/// Aggregate counters of a [`ScoreCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreCacheStats {
    /// Cacheable lookups served from a memoized estimate.
    pub hits: u64,
    /// Cacheable lookups that had to run the estimation kernel.
    pub misses: u64,
    /// Estimates currently resident.
    pub entries: usize,
}

/// Bounded epoch-scoped memo of exact productivity estimates.
#[derive(Clone, Debug)]
pub struct ScoreCache {
    map: HashMap<ScoreKey, f64>,
    hits: u64,
    misses: u64,
    max_entries: usize,
    enabled: bool,
}

impl Default for ScoreCache {
    fn default() -> Self {
        ScoreCache::with_capacity_bound(DEFAULT_SCORE_CACHE_ENTRIES, score_cache_env_default())
    }
}

impl ScoreCache {
    /// An empty cache holding at most `max_entries` estimates (at least 1).
    pub fn with_capacity_bound(max_entries: usize, enabled: bool) -> Self {
        ScoreCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            max_entries: max_entries.max(1),
            enabled,
        }
    }

    /// Whether lookups are served at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns memoization on or off; turning it off drops every resident
    /// entry (counters persist).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.map.clear();
        }
    }

    /// The memoized estimate under `key`, counting a hit or a miss. A
    /// disabled cache returns `None` without counting.
    pub fn get(&mut self, key: &ScoreKey) -> Option<f64> {
        if !self.enabled {
            return None;
        }
        match self.map.get(key) {
            Some(&v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes `value` under `key`. When the bound is hit the whole map
    /// is dropped first (generation-style eviction, like the sign memo).
    pub fn insert(&mut self, key: ScoreKey, value: f64) {
        if !self.enabled {
            return;
        }
        if self.map.len() >= self.max_entries {
            self.map.clear();
        }
        self.map.insert(key, value);
    }

    /// Drops every memoized estimate (rollover invalidation); hit/miss
    /// counters persist.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Structural audit: occupancy respects the bound, and every resident
    /// entry was keyed at the current generation (standard lookups) or one
    /// behind it (late lookups against the `prev` bank) — rollover
    /// invalidation can never leave an older estimate behind.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(any(test, feature = "audit"))]
    pub fn check_invariants(&self, current_generation: u64) {
        assert!(
            self.map.len() <= self.max_entries,
            "score cache over bound: {} > {}",
            self.map.len(),
            self.max_entries
        );
        assert!(
            self.enabled || self.map.is_empty(),
            "disabled score cache holds entries"
        );
        for key in self.map.keys() {
            assert!(
                key.generation == current_generation
                    || key.generation == current_generation.wrapping_sub(1),
                "stale score-cache entry: generation {} at roll {}",
                key.generation,
                current_generation
            );
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ScoreCacheStats {
        ScoreCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(generation: u64, v: u64) -> ScoreKey {
        ScoreKey {
            generation,
            stream: 0,
            values: [v, 0, 0, 0],
            n_values: 1,
        }
    }

    #[test]
    fn hit_returns_exact_bits() {
        let mut c = ScoreCache::with_capacity_bound(8, true);
        let v = -0.0f64; // sign-sensitive: bit-identity must preserve it
        assert_eq!(c.get(&key(1, 7)), None);
        c.insert(key(1, 7), v);
        let got = c.get(&key(1, 7)).expect("memoized");
        assert_eq!(got.to_bits(), v.to_bits());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn generations_do_not_alias() {
        let mut c = ScoreCache::with_capacity_bound(8, true);
        c.insert(key(1, 7), 1.0);
        c.insert(key(2, 7), 2.0);
        assert_eq!(c.get(&key(1, 7)), Some(1.0));
        assert_eq!(c.get(&key(2, 7)), Some(2.0));
    }

    #[test]
    fn bound_drops_wholesale() {
        let mut c = ScoreCache::with_capacity_bound(2, true);
        c.insert(key(1, 1), 1.0);
        c.insert(key(1, 2), 2.0);
        assert_eq!(c.stats().entries, 2);
        // Third insert hits the bound: the map is dropped, then repopulated
        // with just the new entry.
        c.insert(key(1, 3), 3.0);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.get(&key(1, 3)), Some(3.0));
        assert_eq!(c.get(&key(1, 1)), None);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut c = ScoreCache::with_capacity_bound(8, false);
        c.insert(key(1, 7), 1.0);
        assert_eq!(c.get(&key(1, 7)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn disabling_drops_entries() {
        let mut c = ScoreCache::with_capacity_bound(8, true);
        c.insert(key(1, 7), 1.0);
        c.set_enabled(false);
        c.set_enabled(true);
        assert_eq!(c.get(&key(1, 7)), None, "re-enabling starts cold");
    }

    #[test]
    fn env_default_is_on_when_unset() {
        // The test binary does not set MSTREAM_SCORE_CACHE; the pin must
        // resolve to enabled (and to the same answer on every call).
        if std::env::var("MSTREAM_SCORE_CACHE").is_err() {
            assert!(score_cache_env_default());
        }
        assert_eq!(score_cache_env_default(), score_cache_env_default());
    }
}
