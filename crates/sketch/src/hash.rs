//! Four-wise independent ±1 hash families.
//!
//! AGMS sketches need, for every join-attribute pair `j ∈ θ`, a family of
//! random variables `ξ_{j,i} ∈ {−1, +1}` that is *four-wise independent*:
//! any four distinct domain points get independent signs. The classical
//! construction (Carter–Wegman) evaluates a uniformly random polynomial of
//! degree 3 over a prime field and takes one output bit. We use the Mersenne
//! prime `p = 2^61 − 1`, whose reduction needs only shifts and adds.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces `x` modulo `2^61 − 1` using the Mersenne shift-add identity.
///
/// Accepts any `u128` produced by multiplying two values `< 2^61` (and, in
/// particular, any `u64`, which makes it a division-free replacement for
/// `x % MERSENNE_P` on raw attribute values).
#[inline]
pub fn mod_mersenne(x: u128) -> u64 {
    // Fold twice: after one fold the value fits in 62 bits + small carry.
    let folded = (x & MERSENNE_P as u128) + (x >> 61);
    let folded = (folded & MERSENNE_P as u128) + (folded >> 61);
    let mut r = folded as u64;
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// A four-wise independent ±1 family: `ξ(i) = ±1` for `i` in `u64`.
///
/// Internally a uniformly random degree-3 polynomial
/// `h(x) = c3·x³ + c2·x² + c1·x + c0 (mod 2^61 − 1)`; the sign is the
/// low-order bit of `h(x)`. Each family is cheap to store (4 words) and
/// evaluation is a handful of multiply-reduce steps, so maintaining the
/// `s1 × s2 × |θ|` families of a [`crate::SketchBank`] stays "fast and
/// light" as the paper requires.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FourWiseHash {
    coeffs: [u64; 4],
}

impl FourWiseHash {
    /// Draws a fresh family from `rng`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut coeffs = [0u64; 4];
        for c in &mut coeffs {
            *c = rng.gen_range(0..MERSENNE_P);
        }
        FourWiseHash { coeffs }
    }

    /// Builds a family from explicit coefficients (tests / golden vectors).
    pub fn from_coeffs(coeffs: [u64; 4]) -> Self {
        let coeffs = coeffs.map(|c| c % MERSENNE_P);
        FourWiseHash { coeffs }
    }

    /// The polynomial coefficients `[c0, c1, c2, c3]` (ascending degree).
    /// Exposed so the SoA sign banks can adopt families drawn through the
    /// canonical [`FourWiseHash::random`] sequence without re-deriving it.
    #[inline]
    pub fn coeffs(&self) -> [u64; 4] {
        self.coeffs
    }

    /// Evaluates the underlying polynomial at `x`, in `[0, 2^61 − 1)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        // Division-free input reduction: the same shift-add Mersenne fold
        // used between Horner steps (bit-identical to `x % MERSENNE_P`,
        // see `mod_mersenne_matches_division_on_u64`).
        let x = mod_mersenne(x as u128);
        // Horner's rule: (((c3·x + c2)·x + c1)·x + c0).
        let mut acc = self.coeffs[3];
        for &c in [self.coeffs[2], self.coeffs[1], self.coeffs[0]].iter() {
            acc = mod_mersenne(acc as u128 * x as u128 + c as u128);
        }
        acc
    }

    /// The ±1 variable `ξ(x)`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.eval(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_mersenne_small_values_identity() {
        for x in [0u128, 1, 2, 12345, (MERSENNE_P - 1) as u128] {
            assert_eq!(mod_mersenne(x), x as u64);
        }
        assert_eq!(mod_mersenne(MERSENNE_P as u128), 0);
        assert_eq!(mod_mersenne(MERSENNE_P as u128 + 5), 5);
    }

    #[test]
    fn mod_mersenne_matches_naive_on_products() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rand::Rng::gen_range(&mut rng, 0..MERSENNE_P) as u128;
            let b = rand::Rng::gen_range(&mut rng, 0..MERSENNE_P) as u128;
            assert_eq!(mod_mersenne(a * b), ((a * b) % MERSENNE_P as u128) as u64);
        }
    }

    #[test]
    fn eval_matches_naive_polynomial() {
        let h = FourWiseHash::from_coeffs([3, 5, 7, 11]);
        let naive = |x: u128| -> u64 {
            let p = MERSENNE_P as u128;
            let x = x % p;
            ((11 * x % p * x % p * x % p + 7 * x % p * x % p + 5 * x % p + 3) % p) as u64
        };
        for x in [0u64, 1, 2, 99, 1_000_003, u64::MAX] {
            assert_eq!(h.eval(x), naive(x as u128), "x={x}");
        }
    }

    #[test]
    fn signs_are_plus_minus_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = FourWiseHash::random(&mut rng);
        for x in 0..100u64 {
            let s = h.sign(x);
            assert!(s == 1 || s == -1);
        }
    }

    #[test]
    fn sign_is_deterministic_per_family() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = FourWiseHash::random(&mut rng);
        let h2 = h.clone();
        for x in 0..50u64 {
            assert_eq!(h.sign(x), h2.sign(x));
        }
    }

    /// Empirical check of the two moment properties AGMS relies on:
    /// `E[ξ(x)] ≈ 0` and `E[ξ(x)·ξ(y)] ≈ 0` for `x ≠ y`, averaged over
    /// independently drawn families.
    #[test]
    fn signs_are_unbiased_and_pairwise_uncorrelated() {
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 4000;
        let mut sum_single = 0i64;
        let mut sum_pair = 0i64;
        for _ in 0..trials {
            let h = FourWiseHash::random(&mut rng);
            sum_single += h.sign(17);
            sum_pair += h.sign(17) * h.sign(23);
        }
        let mean_single = sum_single as f64 / trials as f64;
        let mean_pair = sum_pair as f64 / trials as f64;
        // Standard error ~ 1/sqrt(4000) ≈ 0.016; allow 4 sigma.
        assert!(mean_single.abs() < 0.07, "E[xi] = {mean_single}");
        assert!(mean_pair.abs() < 0.07, "E[xi xi'] = {mean_pair}");
    }

    /// Fourth-moment sanity: for 4 distinct points the product of signs
    /// should also be mean-zero (this is where 2-wise constructions fail).
    #[test]
    fn four_point_products_are_unbiased() {
        let mut rng = StdRng::seed_from_u64(43);
        let trials = 4000;
        let mut sum = 0i64;
        for _ in 0..trials {
            let h = FourWiseHash::random(&mut rng);
            sum += h.sign(1) * h.sign(2) * h.sign(3) * h.sign(4);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.07, "E[4-product] = {mean}");
    }

    proptest! {
        #[test]
        fn eval_always_in_field(c0 in 0..u64::MAX, c1 in 0..u64::MAX,
                                c2 in 0..u64::MAX, c3 in 0..u64::MAX,
                                x in 0..u64::MAX) {
            let h = FourWiseHash::from_coeffs([c0, c1, c2, c3]);
            prop_assert!(h.eval(x) < MERSENNE_P);
        }

        /// The shift-add Mersenne fold and the hardware division agree on
        /// every `u64` input — the reduction `eval` now uses is exact.
        #[test]
        fn mod_mersenne_matches_division_on_u64(x in any::<u64>()) {
            prop_assert_eq!(mod_mersenne(x as u128), x % MERSENNE_P);
        }
    }

    #[test]
    fn mod_mersenne_matches_division_at_u64_edges() {
        for x in [
            0u64,
            1,
            MERSENNE_P - 1,
            MERSENNE_P,
            MERSENNE_P + 1,
            2 * MERSENNE_P,
            2 * MERSENNE_P + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(mod_mersenne(x as u128), x % MERSENNE_P, "x={x}");
        }
    }
}
