//! Tumbling-window sketch management (paper §4, Algorithm 1, steps 1.2/1.4).
//!
//! Productivity could be computed against the *current* window's sketches,
//! but those change on every arrival, so every resident tuple's priority
//! would have to be recomputed per arrival. The paper instead partitions
//! each stream into disjoint **tumbling windows** of length `n` (set to the
//! join-window length `p` in all experiments) and answers productivity
//! queries from the sketch of the **last** completed epoch: each tuple's
//! priority is computed at most twice in its lifetime (once on arrival,
//! once when the epoch rolls over and priorities are rebuilt).
//!
//! During the very first epoch there is no "last" sketch yet; the paper
//! falls back to the current one, and so do we — per stream, so a slow
//! stream keeps falling back until its own first epoch completes.
//!
//! Because the last-epoch snapshot is **immutable between rollovers**, the
//! cross-products `Π_{k≠i} X_k^{last}` it contributes to every
//! productivity query are precomputed once per rollover (lazily, per
//! excluded stream) into contiguous `f64` rows. A productivity query then
//! reduces to one packed-sign lookup plus a signed sum over that row —
//! `O(copies)` adds instead of `O(copies · n)` multiplies — which is also
//! what the engine's epoch-rollover priority rebuild pays per tuple.

use crate::bank::{median_of_means_into, BankConfig, SketchBank};
use crate::kernel;
use crate::score_cache::{ScoreCache, ScoreCacheStats, ScoreKey, MAX_CACHED_ATTRS};
use crate::signs::SignCacheStats;
use mstream_types::{JoinQuery, StreamId, VDur, VTime, Value};
use serde::{Deserialize, Serialize};

/// When sketches tumble.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochSpec {
    /// All streams roll together every `n` (virtual) seconds — the
    /// discipline for time-based windows.
    Time(VDur),
    /// Each stream rolls after every `n` of its own arrivals — the
    /// discipline for tuple-based windows (paper §4.1).
    PerStreamTuples(u64),
}

/// Current + last tumbling-epoch sketches for every stream of a query.
#[derive(Clone, Debug)]
pub struct TumblingSketches {
    bank: SketchBank,
    /// `last[k * copies + c]` = last completed epoch's `X_k` in copy `c`
    /// (stream-major, same layout as the bank's counters).
    last: Vec<i64>,
    /// Whether stream `k` has completed at least one epoch.
    has_last: Vec<bool>,
    /// The `last` snapshot as it stood *before* the most recent roll — the
    /// estimation state that was in force while the previous epoch was
    /// current. Late tuples whose timestamp predates the current epoch are
    /// scored against this bank ([`TumblingSketches::productivity_at`]), so
    /// frozen epochs stay addressable for one extra epoch (covering any
    /// disorder bound `K <= n`).
    prev: Vec<i64>,
    /// Whether stream `k` has a meaningful `prev` snapshot (two completed
    /// epochs).
    has_prev: Vec<bool>,
    epoch: EpochSpec,
    /// Time-mode: when the next global roll fires.
    next_roll: VTime,
    /// Tuple-mode: arrivals seen per stream since its last roll.
    arrivals: Vec<u64>,
    /// Scratch buffer of per-copy statistics (avoids per-query allocation).
    scratch: Vec<f64>,
    /// Scratch buffer of group means for median-of-means.
    groups: Vec<f64>,
    /// Scratch buffer of packed sign words.
    words: Vec<u64>,
    /// `cross[i * copies + c]` = frozen `Π_{k≠i} X_k^{last}` in copy `c`.
    cross: Vec<f64>,
    /// Whether `cross` row `i` reflects the current `last` snapshot.
    cross_valid: Vec<bool>,
    /// Epoch-scoped memo of exact productivity estimates (DESIGN.md §16).
    /// Only fully-frozen lookups are memoized, so a hit returns the same
    /// bits a recomputation would.
    score_cache: ScoreCache,
    /// Monotone roll counter: bumped by every roll of any stream, in
    /// either epoch discipline. Score-cache keys carry it so no entry can
    /// outlive the snapshot it was computed from.
    generation: u64,
}

impl TumblingSketches {
    /// Builds zeroed tumbling sketches for `query`.
    pub fn new(query: &JoinQuery, config: BankConfig, epoch: EpochSpec) -> Self {
        let bank = SketchBank::new(query, config);
        let n_streams = query.n_streams();
        let copies = config.copies();
        let next_roll = match epoch {
            EpochSpec::Time(n) => {
                assert!(!n.is_zero(), "epoch length must be positive");
                VTime::ZERO + n
            }
            EpochSpec::PerStreamTuples(n) => {
                assert!(n > 0, "epoch tuple count must be positive");
                VTime::ZERO
            }
        };
        TumblingSketches {
            bank,
            last: vec![0; n_streams * copies],
            has_last: vec![false; n_streams],
            prev: vec![0; n_streams * copies],
            has_prev: vec![false; n_streams],
            epoch,
            next_roll,
            arrivals: vec![0; n_streams],
            scratch: vec![0.0; copies],
            groups: Vec::with_capacity(config.s2),
            words: Vec::new(),
            cross: vec![0.0; n_streams * copies],
            cross_valid: vec![false; n_streams],
            score_cache: ScoreCache::default(),
            generation: 0,
        }
    }

    /// The epoch discipline in force.
    pub fn epoch(&self) -> EpochSpec {
        self.epoch
    }

    /// Advances virtual time, folds the arriving tuple into the current
    /// sketches, and performs any due epoch rollover.
    ///
    /// Returns `true` if a rollover happened — the engine uses this as the
    /// cue to rebuild its priority queues (Algorithm 1, step 1.2: "reset all
    /// the priority queues").
    pub fn observe(&mut self, stream: StreamId, values: &[Value], now: VTime) -> bool {
        let rolled = match self.epoch {
            EpochSpec::Time(n) => {
                let mut rolled = false;
                while now >= self.next_roll {
                    self.roll_all();
                    self.next_roll += n;
                    rolled = true;
                }
                rolled
            }
            EpochSpec::PerStreamTuples(_) => false,
        };
        self.bank.update(stream, values);
        let rolled_tuple = match self.epoch {
            EpochSpec::PerStreamTuples(n) => {
                let k = stream.index();
                self.arrivals[k] += 1;
                if self.arrivals[k] >= n {
                    self.arrivals[k] = 0;
                    self.roll_stream(stream);
                    true
                } else {
                    false
                }
            }
            EpochSpec::Time(_) => false,
        };
        rolled || rolled_tuple
    }

    /// Rolls every stream at once (time-based epochs).
    fn roll_all(&mut self) {
        let copies = self.bank.config().copies();
        self.prev.copy_from_slice(&self.last);
        self.has_prev.copy_from_slice(&self.has_last);
        for k in 0..self.has_last.len() {
            self.last[k * copies..(k + 1) * copies]
                .copy_from_slice(self.bank.counters_row(StreamId(k)));
        }
        self.bank.reset();
        self.has_last.fill(true);
        self.cross_valid.fill(false);
        self.generation += 1;
        self.score_cache.clear();
    }

    /// Rolls a single stream (tuple-based epochs).
    fn roll_stream(&mut self, stream: StreamId) {
        let copies = self.bank.config().copies();
        let k = stream.index();
        let snapshot = self.bank.take_stream_snapshot(stream);
        self.prev[k * copies..(k + 1) * copies]
            .copy_from_slice(&self.last[k * copies..(k + 1) * copies]);
        self.has_prev[k] = self.has_last[k];
        self.last[k * copies..(k + 1) * copies].copy_from_slice(&snapshot);
        self.has_last[k] = true;
        // Every cross-product row except `k`'s own consults X_k^{last}.
        for (i, valid) in self.cross_valid.iter_mut().enumerate() {
            if i != k {
                *valid = false;
            }
        }
        self.generation += 1;
        self.score_cache.clear();
    }

    /// Rebuilds the frozen cross-product row excluding stream `i` from the
    /// current `last` snapshot (ascending stream order, so the float fold
    /// matches the legacy per-copy loop bit for bit).
    fn ensure_cross_row(&mut self, i: usize) {
        if self.cross_valid[i] {
            return;
        }
        let copies = self.bank.config().copies();
        let row = &mut self.cross[i * copies..(i + 1) * copies];
        kernel::column_products(&self.last, copies, i, row);
        self.cross_valid[i] = true;
    }

    /// Estimated productivity of a tuple of `stream`:
    /// `prod(t) = Π_j ξ_{j,t[j]} · Π_{k≠i} X_k^{last}`, median-of-means
    /// combined, with per-stream fallback to the current sketch while a
    /// stream has not yet completed its first epoch.
    ///
    /// Steady state (every other stream past its first epoch) runs the
    /// frozen-cross-product fast path: a memoized packed-sign lookup and a
    /// signed copy of a precomputed `f64` row — or, on repeated key values
    /// within one epoch, a score-cache hit that skips the kernel entirely
    /// and returns the exact bits of the first computation.
    pub fn productivity(&mut self, stream: StreamId, values: &[Value]) -> f64 {
        let i = stream.index();
        let n = self.has_last.len();
        // Only the fully-frozen path is memoizable: the mixed paths fold
        // live bank rows that change on every arrival.
        let frozen = (0..n).all(|k| k == i || self.has_last[k]);
        let key = if frozen {
            self.cache_key(stream, values, self.generation)
        } else {
            None
        };
        if let Some(key) = &key {
            if let Some(v) = self.score_cache.get(key) {
                return v;
            }
        }
        let v = self.productivity_uncached(stream, values, frozen);
        if let Some(key) = key {
            self.score_cache.insert(key, v);
        }
        v
    }

    /// The kernel path behind [`TumblingSketches::productivity`]:
    /// `frozen` is the precomputed "every other stream past its first
    /// epoch" flag (passed in so the memoized wrapper derives it once).
    fn productivity_uncached(&mut self, stream: StreamId, values: &[Value], frozen: bool) -> f64 {
        let i = stream.index();
        let n = self.has_last.len();
        let copies = self.bank.config().copies();
        self.bank.packed_signs_into(stream, values, &mut self.words);
        self.scratch.resize(copies, 0.0);
        if frozen {
            self.ensure_cross_row(i);
            let row = &self.cross[i * copies..(i + 1) * copies];
            kernel::signed_copy(&self.words, row, &mut self.scratch);
        } else if n == 3 {
            // Two-partner mixed path (the paper's 3-stream shape): one
            // fused, branch-free pass over both partner rows, bit-identical
            // to the general fold below.
            let (a, b) = match i {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            let Self {
                bank,
                last,
                has_last,
                scratch,
                words,
                ..
            } = self;
            let row = |k: usize| -> &[i64] {
                if has_last[k] {
                    &last[k * copies..(k + 1) * copies]
                } else {
                    bank.counters_row(StreamId(k))
                }
            };
            kernel::product2_signed(row(a), row(b), words, scratch);
        } else {
            // Mixed path (some stream still in its first epoch): multiply
            // per-stream rows in ascending order, choosing last-epoch or
            // live counters per stream exactly as the paper prescribes.
            self.scratch.fill(1.0);
            for k in 0..n {
                if k == i {
                    continue;
                }
                let row: &[i64] = if self.has_last[k] {
                    &self.last[k * copies..(k + 1) * copies]
                } else {
                    self.bank.counters_row(StreamId(k))
                };
                kernel::multiply_row(&mut self.scratch, row);
            }
            kernel::apply_packed_signs(&self.words, &mut self.scratch);
        }
        let cfg = self.bank.config();
        median_of_means_into(cfg.s1, cfg.s2, &self.scratch, &mut self.groups)
    }

    /// When the current (still-accumulating) epoch began, for time-based
    /// epochs (`None` in tuple mode, where epochs are arrival-counted and
    /// have no timestamp extent).
    pub fn current_epoch_start(&self) -> Option<VTime> {
        match self.epoch {
            EpochSpec::Time(n) => Some(self.next_roll - n),
            EpochSpec::PerStreamTuples(_) => None,
        }
    }

    /// Epoch-targeted productivity: the estimate in force for the epoch
    /// `ts` *belongs to*, not necessarily the current one (DESIGN.md §13).
    ///
    /// A tuple whose timestamp falls inside the current epoch is scored
    /// exactly like [`TumblingSketches::productivity`] — bit-identically,
    /// so in-order runs are unaffected. A *late* tuple (time-based epochs,
    /// `ts` before the current epoch's start) is scored against the
    /// snapshot that was serving queries while its epoch was current: the
    /// `prev` bank kept one roll longer for exactly this purpose. Frozen
    /// epochs therefore stay addressable for one extra epoch length, which
    /// covers any disorder bound `K <= n`.
    ///
    /// A frozen epoch that saw no arrivals has all-zero counters and
    /// estimates 0 — callers that divide by such an estimate must guard
    /// the denominator (the built-in policies floor it at `f64::EPSILON`;
    /// see `MSketchRs::refresh_priority`).
    ///
    /// Tuple-mode epochs are arrival-counted: a timestamp does not place a
    /// tuple in an epoch, so the lookup falls back to the standard
    /// last-epoch estimate.
    pub fn productivity_at(&mut self, stream: StreamId, values: &[Value], ts: VTime) -> f64 {
        let late = match self.current_epoch_start() {
            Some(start) => ts < start,
            None => false,
        };
        if !late || !self.has_prev.iter().any(|&h| h) {
            return self.productivity(stream, values);
        }
        // Cold path (late tuples only): fold the per-stream rows of the
        // previous-epoch snapshot, falling back per stream to the newest
        // state we have for streams that had not completed two epochs.
        //
        // Cacheable only when every partner row is frozen (prev or last
        // snapshot — never the live bank), keyed at `generation − 1`: the
        // prev bank this path reads is the snapshot that was `last` one
        // roll ago, so late lookups can never alias same-epoch lookups of
        // the same key values.
        let i = stream.index();
        let n = self.has_last.len();
        let frozen = (0..n).all(|k| k == i || self.has_prev[k] || self.has_last[k]);
        let key = if frozen {
            self.cache_key(stream, values, self.generation.wrapping_sub(1))
        } else {
            None
        };
        if let Some(key) = &key {
            if let Some(v) = self.score_cache.get(key) {
                return v;
            }
        }
        let copies = self.bank.config().copies();
        self.bank.packed_signs_into(stream, values, &mut self.words);
        self.scratch.resize(copies, 0.0);
        self.scratch.fill(1.0);
        for k in 0..n {
            if k == i {
                continue;
            }
            let row: &[i64] = if self.has_prev[k] {
                &self.prev[k * copies..(k + 1) * copies]
            } else if self.has_last[k] {
                &self.last[k * copies..(k + 1) * copies]
            } else {
                self.bank.counters_row(StreamId(k))
            };
            kernel::multiply_row(&mut self.scratch, row);
        }
        kernel::apply_packed_signs(&self.words, &mut self.scratch);
        let cfg = self.bank.config();
        let v = median_of_means_into(cfg.s1, cfg.s2, &self.scratch, &mut self.groups);
        if let Some(key) = key {
            self.score_cache.insert(key, v);
        }
        v
    }

    /// The score-cache key of a frozen lookup: the raw values of the
    /// stream's incident join attributes (the only tuple inputs the sign
    /// product — and hence the estimate — depends on), in incidence order.
    /// `None` when memoization is off or the stream has more incident
    /// attributes than the inline key holds.
    fn cache_key(&self, stream: StreamId, values: &[Value], generation: u64) -> Option<ScoreKey> {
        if !self.score_cache.enabled() {
            return None;
        }
        let incidence = self.bank.incidence(stream);
        if incidence.len() > MAX_CACHED_ATTRS {
            return None;
        }
        let mut vals = [0u64; MAX_CACHED_ATTRS];
        for (slot, &(_, attr)) in vals.iter_mut().zip(incidence) {
            *slot = values[attr].raw();
        }
        Some(ScoreKey {
            generation,
            stream: stream.index() as u32,
            values: vals,
            n_values: incidence.len() as u8,
        })
    }

    /// Productivity computed against the *current* epoch's sketches
    /// (the expensive variant; exposed for the recompute-policy ablation).
    /// Never memoized — the live bank changes on every arrival.
    pub fn current_productivity(&self, stream: StreamId, values: &[Value]) -> f64 {
        self.bank.productivity(stream, values)
    }

    /// Estimated size of the full multi-way join over the current epoch.
    pub fn estimate_join_count(&self) -> f64 {
        self.bank.estimate_join_count()
    }

    /// Read-only access to the underlying current-epoch bank.
    pub fn bank(&self) -> &SketchBank {
        &self.bank
    }

    /// Whether `stream` has completed at least one epoch.
    pub fn has_last_epoch(&self, stream: StreamId) -> bool {
        self.has_last[stream.index()]
    }

    /// Hit/miss/occupancy counters of the bank's packed-sign memo.
    pub fn sign_cache_stats(&self) -> SignCacheStats {
        self.bank.sign_cache_stats()
    }

    /// Hit/miss/occupancy counters of the epoch-scoped productivity memo.
    pub fn score_cache_stats(&self) -> ScoreCacheStats {
        self.score_cache.stats()
    }

    /// Whether productivity memoization is active.
    pub fn score_cache_enabled(&self) -> bool {
        self.score_cache.enabled()
    }

    /// Overrides the process-wide `MSTREAM_SCORE_CACHE` default for this
    /// instance (the audit harness A/B-compares cached and uncached runs
    /// inside one process). Disabling drops every resident estimate.
    pub fn set_score_cache(&mut self, enabled: bool) {
        self.score_cache.set_enabled(enabled);
    }

    /// Rebinds the memo's capacity bound (tests exercise the wholesale
    /// drop with tiny bounds); drops resident entries.
    pub fn set_score_cache_bound(&mut self, max_entries: usize) {
        let enabled = self.score_cache.enabled();
        self.score_cache = ScoreCache::with_capacity_bound(max_entries, enabled);
    }

    /// Structural audit of the tumbling state:
    ///
    /// - buffer shapes agree with the stream count and copy count;
    /// - epoch bookkeeping is coherent (time mode: the pending roll instant
    ///   is a positive whole number of epochs; tuple mode: no per-stream
    ///   arrival counter has silently passed its roll threshold);
    /// - every cross-product row flagged `cross_valid` is bit-identical to
    ///   a fresh recomputation from the `last` snapshot — the frozen fast
    ///   path must never serve a stale product.
    ///
    /// O(streams² · copies); compiled only for tests and the `audit`
    /// feature, where the differential harness calls it after every arrival.
    ///
    /// # Panics
    /// Panics on any violated invariant.
    #[cfg(any(test, feature = "audit"))]
    pub fn check_invariants(&self) {
        let n = self.has_last.len();
        let copies = self.bank.config().copies();
        assert_eq!(self.last.len(), n * copies, "last snapshot shape");
        assert_eq!(self.prev.len(), n * copies, "prev snapshot shape");
        assert_eq!(self.has_prev.len(), n, "has_prev shape");
        for (k, &hp) in self.has_prev.iter().enumerate() {
            assert!(
                !hp || self.has_last[k],
                "stream {k} has a prev snapshot but no last snapshot"
            );
        }
        assert_eq!(self.cross.len(), n * copies, "cross-product shape");
        assert_eq!(self.cross_valid.len(), n, "cross_valid shape");
        assert_eq!(self.arrivals.len(), n, "arrival counter shape");
        match self.epoch {
            EpochSpec::Time(p) => {
                let micros = self.next_roll.as_micros();
                assert!(micros >= p.as_micros(), "next roll before first epoch end");
                assert_eq!(micros % p.as_micros(), 0, "next roll off the epoch grid");
            }
            EpochSpec::PerStreamTuples(c) => {
                for (k, &a) in self.arrivals.iter().enumerate() {
                    assert!(a < c, "stream {k} missed its epoch roll: {a} >= {c}");
                }
            }
        }
        self.score_cache.check_invariants(self.generation);
        let mut fresh = vec![0.0f64; copies];
        for i in 0..n {
            if !self.cross_valid[i] {
                continue;
            }
            kernel::column_products(&self.last, copies, i, &mut fresh);
            let row = &self.cross[i * copies..(i + 1) * copies];
            for (c, (&got, &want)) in row.iter().zip(&fresh).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "stale frozen cross-product: row {i}, copy {c}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score_cache::score_cache_env_default;
    use mstream_types::{Catalog, StreamSchema, WindowSpec};

    fn chain_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    fn v(a: u64, b: u64) -> Vec<Value> {
        vec![Value(a), Value(b)]
    }

    fn cfg(s1: usize, seed: u64) -> BankConfig {
        BankConfig { s1, s2: 1, seed }
    }

    #[test]
    fn first_epoch_falls_back_to_current() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 1), EpochSpec::Time(VDur::from_secs(100)));
        for i in 0..30 {
            ts.observe(StreamId(1), &v(5, i % 2), VTime::from_secs(1));
            ts.observe(StreamId(2), &v(i % 2, 0), VTime::from_secs(1));
        }
        assert!(!ts.has_last_epoch(StreamId(1)));
        // 30 matching R2 tuples × 15 matching R3 tuples each = 450.
        let p = ts.productivity(StreamId(0), &v(5, 0));
        assert!((p - 450.0).abs() / 450.0 < 0.5, "p={p}");
    }

    #[test]
    fn time_roll_moves_current_to_last() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 2), EpochSpec::Time(VDur::from_secs(10)));
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(7, 3), VTime::from_secs(1));
        }
        for _ in 0..10 {
            ts.observe(StreamId(2), &v(3, 0), VTime::from_secs(2));
        }
        // Cross the epoch boundary: this arrival triggers the roll.
        let rolled = ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(11));
        assert!(rolled);
        assert!(ts.has_last_epoch(StreamId(0)));
        // Productivity of an R1 tuple joining value 7 against the LAST
        // epoch: 20 × 10 = 200 (the new (0,0) tuple is in the current epoch
        // and must not contribute).
        let p = ts.productivity(StreamId(0), &v(7, 0));
        assert!((p - 200.0).abs() / 200.0 < 0.5, "p={p}");
    }

    #[test]
    fn multiple_epochs_can_roll_in_one_gap() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(4, 3), EpochSpec::Time(VDur::from_secs(5)));
        ts.observe(StreamId(0), &v(1, 1), VTime::ZERO);
        // Jump 3 epochs ahead; the intermediate empty epochs must clear the
        // last snapshot (the last completed epoch saw no tuples).
        let rolled = ts.observe(StreamId(0), &v(1, 1), VTime::from_secs(17));
        assert!(rolled);
        let p = ts.productivity(StreamId(1), &v(1, 1));
        assert_eq!(p, 0.0, "last epoch was empty");
    }

    #[test]
    fn per_stream_tuple_epochs_roll_independently() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(200, 4), EpochSpec::PerStreamTuples(10));
        // Stream 1 gets 10 arrivals (rolls); stream 2 only 5 (does not).
        let mut rolled_any = false;
        for i in 0..10 {
            rolled_any |= ts.observe(StreamId(1), &v(4, i % 2), VTime::ZERO);
        }
        assert!(rolled_any);
        assert!(ts.has_last_epoch(StreamId(1)));
        for _ in 0..5 {
            ts.observe(StreamId(2), &v(0, 9), VTime::ZERO);
        }
        assert!(!ts.has_last_epoch(StreamId(2)));
        // R1-tuple with A1=4: last epoch of stream 1 has 10 matches; stream
        // 2 falls back to its current sketch with 5 matches on value 0.
        let p = ts.productivity(StreamId(0), &v(4, 0));
        assert!((p - 50.0).abs() / 50.0 < 0.6, "p={p}");
    }

    #[test]
    fn current_productivity_sees_live_epoch() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 5), EpochSpec::Time(VDur::from_secs(10)));
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(2, 2), VTime::from_secs(1));
        }
        for _ in 0..20 {
            ts.observe(StreamId(2), &v(2, 2), VTime::from_secs(1));
        }
        // Roll, then add fresh tuples to the new epoch.
        ts.observe(StreamId(1), &v(9, 9), VTime::from_secs(11));
        let last_based = ts.productivity(StreamId(0), &v(9, 0));
        let current_based = ts.current_productivity(StreamId(0), &v(9, 0));
        // Value 9 only exists in the current epoch: last-based sees nothing.
        assert!(last_based.abs() < 40.0, "last_based={last_based}");
        // current-based sees 1 R2-tuple × 0 R3 matches = 0 too, but through
        // a different path; both must be finite and small.
        assert!(current_based.abs() < 40.0);
    }

    #[test]
    fn frozen_cross_products_match_direct_multiplication() {
        // Same query answered before and after the cross rows are (lazily)
        // built must agree bit for bit, across both time- and tuple-mode
        // rolls interleaved with cache-warming repeats.
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(64, 8), EpochSpec::Time(VDur::from_secs(10)));
        for i in 0..25u64 {
            let s = StreamId((i % 3) as usize);
            ts.observe(s, &v(i % 5, i % 3), VTime::from_secs(i % 9));
        }
        // Force a roll so the frozen path engages.
        ts.observe(StreamId(0), &v(1, 1), VTime::from_secs(30));
        assert!(ts.has_last_epoch(StreamId(1)));
        let first = ts.productivity(StreamId(0), &v(2, 0));
        let again = ts.productivity(StreamId(0), &v(2, 0));
        assert_eq!(first.to_bits(), again.to_bits());
        // A second roll invalidates and rebuilds the rows.
        ts.observe(StreamId(1), &v(2, 2), VTime::from_secs(45));
        let after_roll = ts.productivity(StreamId(0), &v(2, 0));
        assert_eq!(
            after_roll.to_bits(),
            ts.productivity(StreamId(0), &v(2, 0)).to_bits()
        );
    }

    #[test]
    fn productivity_at_matches_productivity_for_current_epoch_timestamps() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(64, 8), EpochSpec::Time(VDur::from_secs(10)));
        for i in 0..25u64 {
            let s = StreamId((i % 3) as usize);
            ts.observe(s, &v(i % 5, i % 3), VTime::from_secs(i % 9));
        }
        ts.observe(StreamId(0), &v(1, 1), VTime::from_secs(30));
        assert_eq!(ts.current_epoch_start(), Some(VTime::from_secs(30)));
        let normal = ts.productivity(StreamId(0), &v(2, 0));
        let at = ts.productivity_at(StreamId(0), &v(2, 0), VTime::from_secs(31));
        assert_eq!(normal.to_bits(), at.to_bits(), "in-epoch lookup is the standard path");
        // The epoch-start instant itself belongs to the current epoch.
        let boundary = ts.productivity_at(StreamId(0), &v(2, 0), VTime::from_secs(30));
        assert_eq!(normal.to_bits(), boundary.to_bits());
    }

    #[test]
    fn productivity_at_consults_the_previous_epoch_for_late_timestamps() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 2), EpochSpec::Time(VDur::from_secs(10)));
        // Epoch [0, 10): 20 R2 partners for value 7, 10 R3 partners.
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(7, 3), VTime::from_secs(1));
        }
        for _ in 0..10 {
            ts.observe(StreamId(2), &v(3, 0), VTime::from_secs(2));
        }
        // Epoch [10, 20): value 7 disappears entirely.
        ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(11));
        // Epoch [20, 30) current: `last` = the empty-of-7s epoch, `prev` =
        // the partner-rich epoch.
        ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(21));
        let current_epoch = ts.productivity(StreamId(0), &v(7, 0));
        assert!(current_epoch.abs() < 40.0, "last epoch saw no 7s: {current_epoch}");
        // A late tuple stamped into the previous epoch sees its own era:
        // 20 × 10 = 200.
        let late = ts.productivity_at(StreamId(0), &v(7, 0), VTime::from_secs(15));
        assert!((late - 200.0).abs() / 200.0 < 0.5, "late={late}");
    }

    #[test]
    fn productivity_at_with_empty_previous_epoch_estimates_zero() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(8, 3), EpochSpec::Time(VDur::from_secs(10)));
        ts.observe(StreamId(1), &v(1, 1), VTime::from_secs(1));
        // Jump several epochs: both `last` and `prev` end up all-zero.
        ts.observe(StreamId(1), &v(1, 1), VTime::from_secs(45));
        let late = ts.productivity_at(StreamId(0), &v(1, 0), VTime::from_secs(35));
        assert_eq!(late, 0.0, "frozen epoch with zero counters estimates 0, not NaN");
        ts.check_invariants();
    }

    #[test]
    fn productivity_at_in_tuple_mode_falls_back_to_last_epoch() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(64, 4), EpochSpec::PerStreamTuples(10));
        for i in 0..10 {
            ts.observe(StreamId(1), &v(4, i % 2), VTime::ZERO);
        }
        assert_eq!(ts.current_epoch_start(), None);
        let normal = ts.productivity(StreamId(0), &v(4, 0));
        let at = ts.productivity_at(StreamId(0), &v(4, 0), VTime::ZERO);
        assert_eq!(normal.to_bits(), at.to_bits());
    }

    #[test]
    fn sign_cache_stats_flow_through() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(32, 6), EpochSpec::Time(VDur::from_secs(100)));
        ts.observe(StreamId(0), &v(1, 1), VTime::ZERO);
        ts.observe(StreamId(0), &v(1, 1), VTime::ZERO);
        let stats = ts.sign_cache_stats();
        assert!(stats.misses >= 1);
        assert!(stats.hits >= 1, "repeated value must hit the memo");
    }

    /// Builds tumbling sketches past their first roll (frozen fast path
    /// live on every stream) with a hot value on R2/R3.
    fn frozen_sketches(s1: usize, seed: u64) -> TumblingSketches {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(s1, seed), EpochSpec::Time(VDur::from_secs(10)));
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(7, 3), VTime::from_secs(1));
        }
        for _ in 0..10 {
            ts.observe(StreamId(2), &v(3, 0), VTime::from_secs(2));
        }
        ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(11));
        assert!((0..3).all(|k| ts.has_last_epoch(StreamId(k))));
        ts
    }

    #[test]
    fn score_cache_hits_are_bit_identical_to_uncached() {
        let mut cached = frozen_sketches(64, 2);
        let mut plain = frozen_sketches(64, 2);
        plain.set_score_cache(false);
        assert!(cached.score_cache_enabled() || !score_cache_env_default());
        for a in 0..40u64 {
            let val = v(a % 5, a % 3);
            let s = StreamId((a % 3) as usize);
            let want = plain.productivity(s, &val);
            let got = cached.productivity(s, &val);
            assert_eq!(got.to_bits(), want.to_bits(), "stream {s:?} value {a}");
        }
        if score_cache_env_default() {
            let stats = cached.score_cache_stats();
            assert!(stats.hits >= 1, "repeated keys must hit: {stats:?}");
            assert!(stats.misses >= 1);
            let off = plain.score_cache_stats();
            assert_eq!((off.hits, off.entries), (0, 0), "disabled memo is inert");
        }
    }

    #[test]
    fn score_cache_flushes_at_rollover() {
        let mut ts = frozen_sketches(32, 5);
        ts.set_score_cache(true);
        let before = ts.productivity(StreamId(0), &v(7, 0));
        let _ = ts.productivity(StreamId(0), &v(7, 0));
        assert!(ts.score_cache_stats().entries >= 1);
        // Roll: the snapshot the entries were computed from is gone.
        assert!(ts.observe(StreamId(1), &v(7, 3), VTime::from_secs(25)));
        assert_eq!(ts.score_cache_stats().entries, 0, "rollover flushes wholesale");
        ts.check_invariants();
        let after = ts.productivity(StreamId(0), &v(7, 0));
        assert_ne!(
            before.to_bits(),
            after.to_bits(),
            "post-roll estimate reflects the new snapshot, not a stale entry"
        );
    }

    #[test]
    fn score_cache_bound_evicts_wholesale_and_stays_exact() {
        let mut ts = frozen_sketches(32, 6);
        ts.set_score_cache(true);
        ts.set_score_cache_bound(4);
        let mut firsts = Vec::new();
        for a in 0..12u64 {
            firsts.push(ts.productivity(StreamId(0), &v(a, 0)));
        }
        assert!(ts.score_cache_stats().entries <= 4, "bound respected");
        ts.check_invariants();
        // Re-query every value: some hit, some were dropped by the bound —
        // either way the bits match the first computation.
        for (a, want) in firsts.iter().enumerate() {
            let again = ts.productivity(StreamId(0), &v(a as u64, 0));
            assert_eq!(again.to_bits(), want.to_bits(), "value {a}");
        }
    }

    #[test]
    fn score_cache_keys_late_lookups_at_the_prev_generation() {
        // Same shape as productivity_at_consults_the_previous_epoch...:
        // `last` is empty of 7s, `prev` is partner-rich. The late and
        // current lookups of the SAME key values must not alias.
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 2), EpochSpec::Time(VDur::from_secs(10)));
        ts.set_score_cache(true);
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(7, 3), VTime::from_secs(1));
        }
        for _ in 0..10 {
            ts.observe(StreamId(2), &v(3, 0), VTime::from_secs(2));
        }
        ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(11));
        ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(21));
        for _ in 0..2 {
            // Twice: second round exercises the memoized path of each.
            let current = ts.productivity_at(StreamId(0), &v(7, 0), VTime::from_secs(22));
            let late = ts.productivity_at(StreamId(0), &v(7, 0), VTime::from_secs(15));
            assert!(current.abs() < 40.0, "current epoch saw no 7s: {current}");
            assert!((late - 200.0).abs() / 200.0 < 0.5, "late={late}");
            ts.check_invariants();
        }
        let stats = ts.score_cache_stats();
        assert!(stats.hits >= 2, "second round must hit both entries: {stats:?}");
        // And the memoized late answer is bit-identical to an uncached run.
        let mut plain = ts.clone();
        plain.set_score_cache(false);
        assert_eq!(
            ts.productivity_at(StreamId(0), &v(7, 0), VTime::from_secs(15)).to_bits(),
            plain
                .productivity_at(StreamId(0), &v(7, 0), VTime::from_secs(15))
                .to_bits()
        );
    }

    #[test]
    fn score_cache_skips_unfrozen_streams() {
        // Stream 2 never completes an epoch: productivity folds its live
        // bank row, which changes with every arrival — nothing may be
        // memoized, and repeated queries must track the live row.
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(200, 4), EpochSpec::PerStreamTuples(10));
        ts.set_score_cache(true);
        for i in 0..10 {
            ts.observe(StreamId(1), &v(4, i % 2), VTime::ZERO);
        }
        for _ in 0..5 {
            ts.observe(StreamId(2), &v(0, 9), VTime::ZERO);
        }
        assert!(!ts.has_last_epoch(StreamId(2)));
        let before = ts.productivity(StreamId(0), &v(4, 0));
        assert_eq!(ts.score_cache_stats().entries, 0, "mixed path never memoizes");
        for _ in 0..4 {
            ts.observe(StreamId(2), &v(0, 9), VTime::ZERO);
        }
        let after = ts.productivity(StreamId(0), &v(4, 0));
        assert!(
            (after - before).abs() > 1e-9,
            "estimate must follow the live row: {before} vs {after}"
        );
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_time_epoch_rejected() {
        let q = chain_query();
        let _ = TumblingSketches::new(&q, cfg(1, 0), EpochSpec::Time(VDur::ZERO));
    }

    #[test]
    #[should_panic(expected = "epoch tuple count must be positive")]
    fn zero_tuple_epoch_rejected() {
        let q = chain_query();
        let _ = TumblingSketches::new(&q, cfg(1, 0), EpochSpec::PerStreamTuples(0));
    }
}
