//! Tumbling-window sketch management (paper §4, Algorithm 1, steps 1.2/1.4).
//!
//! Productivity could be computed against the *current* window's sketches,
//! but those change on every arrival, so every resident tuple's priority
//! would have to be recomputed per arrival. The paper instead partitions
//! each stream into disjoint **tumbling windows** of length `n` (set to the
//! join-window length `p` in all experiments) and answers productivity
//! queries from the sketch of the **last** completed epoch: each tuple's
//! priority is computed at most twice in its lifetime (once on arrival,
//! once when the epoch rolls over and priorities are rebuilt).
//!
//! During the very first epoch there is no "last" sketch yet; the paper
//! falls back to the current one, and so do we — per stream, so a slow
//! stream keeps falling back until its own first epoch completes.

use crate::bank::{median_of_means_slice, BankConfig, SketchBank};
use mstream_types::{JoinQuery, StreamId, VDur, VTime, Value};
use serde::{Deserialize, Serialize};

/// When sketches tumble.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochSpec {
    /// All streams roll together every `n` (virtual) seconds — the
    /// discipline for time-based windows.
    Time(VDur),
    /// Each stream rolls after every `n` of its own arrivals — the
    /// discipline for tuple-based windows (paper §4.1).
    PerStreamTuples(u64),
}

/// Current + last tumbling-epoch sketches for every stream of a query.
#[derive(Clone, Debug)]
pub struct TumblingSketches {
    bank: SketchBank,
    /// `last[c][k]` = last completed epoch's `X_k` in copy `c`.
    last: Vec<Vec<i64>>,
    /// Whether stream `k` has completed at least one epoch.
    has_last: Vec<bool>,
    epoch: EpochSpec,
    /// Time-mode: when the next global roll fires.
    next_roll: VTime,
    /// Tuple-mode: arrivals seen per stream since its last roll.
    arrivals: Vec<u64>,
    /// Scratch buffer for median-of-means (avoids per-query allocation).
    scratch: Vec<f64>,
}

impl TumblingSketches {
    /// Builds zeroed tumbling sketches for `query`.
    pub fn new(query: &JoinQuery, config: BankConfig, epoch: EpochSpec) -> Self {
        let bank = SketchBank::new(query, config);
        let n_streams = query.n_streams();
        let copies = config.copies();
        let next_roll = match epoch {
            EpochSpec::Time(n) => {
                assert!(!n.is_zero(), "epoch length must be positive");
                VTime::ZERO + n
            }
            EpochSpec::PerStreamTuples(n) => {
                assert!(n > 0, "epoch tuple count must be positive");
                VTime::ZERO
            }
        };
        TumblingSketches {
            bank,
            last: vec![vec![0; n_streams]; copies],
            has_last: vec![false; n_streams],
            epoch,
            next_roll,
            arrivals: vec![0; n_streams],
            scratch: vec![0.0; copies],
        }
    }

    /// The epoch discipline in force.
    pub fn epoch(&self) -> EpochSpec {
        self.epoch
    }

    /// Advances virtual time, folds the arriving tuple into the current
    /// sketches, and performs any due epoch rollover.
    ///
    /// Returns `true` if a rollover happened — the engine uses this as the
    /// cue to rebuild its priority queues (Algorithm 1, step 1.2: "reset all
    /// the priority queues").
    pub fn observe(&mut self, stream: StreamId, values: &[Value], now: VTime) -> bool {
        let rolled = match self.epoch {
            EpochSpec::Time(n) => {
                let mut rolled = false;
                while now >= self.next_roll {
                    self.roll_all();
                    self.next_roll += n;
                    rolled = true;
                }
                rolled
            }
            EpochSpec::PerStreamTuples(_) => false,
        };
        self.bank.update(stream, values);
        let rolled_tuple = match self.epoch {
            EpochSpec::PerStreamTuples(n) => {
                let k = stream.index();
                self.arrivals[k] += 1;
                if self.arrivals[k] >= n {
                    self.arrivals[k] = 0;
                    self.roll_stream(stream);
                    true
                } else {
                    false
                }
            }
            EpochSpec::Time(_) => false,
        };
        rolled || rolled_tuple
    }

    /// Rolls every stream at once (time-based epochs).
    fn roll_all(&mut self) {
        let n_streams = self.has_last.len();
        for c in 0..self.last.len() {
            for k in 0..n_streams {
                self.last[c][k] = self.bank.sketch_value(c, StreamId(k));
            }
        }
        self.bank.reset();
        self.has_last.fill(true);
    }

    /// Rolls a single stream (tuple-based epochs).
    fn roll_stream(&mut self, stream: StreamId) {
        let snapshot = self.bank.take_stream_snapshot(stream);
        for (c, v) in snapshot.into_iter().enumerate() {
            self.last[c][stream.index()] = v;
        }
        self.has_last[stream.index()] = true;
    }

    /// Estimated productivity of a tuple of `stream`:
    /// `prod(t) = Π_j ξ_{j,t[j]} · Π_{k≠i} X_k^{last}`, median-of-means
    /// combined, with per-stream fallback to the current sketch while a
    /// stream has not yet completed its first epoch.
    pub fn productivity(&mut self, stream: StreamId, values: &[Value]) -> f64 {
        let i = stream.index();
        let copies = self.scratch.len();
        for c in 0..copies {
            let mut est = self.bank.sign_in_copy(c, stream, values) as f64;
            for k in 0..self.has_last.len() {
                if k == i {
                    continue;
                }
                let x = if self.has_last[k] {
                    self.last[c][k]
                } else {
                    self.bank.sketch_value(c, StreamId(k))
                };
                est *= x as f64;
            }
            self.scratch[c] = est;
        }
        let cfg = self.bank.config();
        median_of_means_slice(cfg.s1, cfg.s2, &self.scratch)
    }

    /// Productivity computed against the *current* epoch's sketches
    /// (the expensive variant; exposed for the recompute-policy ablation).
    pub fn current_productivity(&self, stream: StreamId, values: &[Value]) -> f64 {
        self.bank.productivity(stream, values)
    }

    /// Estimated size of the full multi-way join over the current epoch.
    pub fn estimate_join_count(&self) -> f64 {
        self.bank.estimate_join_count()
    }

    /// Read-only access to the underlying current-epoch bank.
    pub fn bank(&self) -> &SketchBank {
        &self.bank
    }

    /// Whether `stream` has completed at least one epoch.
    pub fn has_last_epoch(&self, stream: StreamId) -> bool {
        self.has_last[stream.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{Catalog, StreamSchema, WindowSpec};

    fn chain_query() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    fn v(a: u64, b: u64) -> Vec<Value> {
        vec![Value(a), Value(b)]
    }

    fn cfg(s1: usize, seed: u64) -> BankConfig {
        BankConfig { s1, s2: 1, seed }
    }

    #[test]
    fn first_epoch_falls_back_to_current() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 1), EpochSpec::Time(VDur::from_secs(100)));
        for i in 0..30 {
            ts.observe(StreamId(1), &v(5, i % 2), VTime::from_secs(1));
            ts.observe(StreamId(2), &v(i % 2, 0), VTime::from_secs(1));
        }
        assert!(!ts.has_last_epoch(StreamId(1)));
        // 30 matching R2 tuples × 15 matching R3 tuples each = 450.
        let p = ts.productivity(StreamId(0), &v(5, 0));
        assert!((p - 450.0).abs() / 450.0 < 0.5, "p={p}");
    }

    #[test]
    fn time_roll_moves_current_to_last() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 2), EpochSpec::Time(VDur::from_secs(10)));
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(7, 3), VTime::from_secs(1));
        }
        for _ in 0..10 {
            ts.observe(StreamId(2), &v(3, 0), VTime::from_secs(2));
        }
        // Cross the epoch boundary: this arrival triggers the roll.
        let rolled = ts.observe(StreamId(1), &v(0, 0), VTime::from_secs(11));
        assert!(rolled);
        assert!(ts.has_last_epoch(StreamId(0)));
        // Productivity of an R1 tuple joining value 7 against the LAST
        // epoch: 20 × 10 = 200 (the new (0,0) tuple is in the current epoch
        // and must not contribute).
        let p = ts.productivity(StreamId(0), &v(7, 0));
        assert!((p - 200.0).abs() / 200.0 < 0.5, "p={p}");
    }

    #[test]
    fn multiple_epochs_can_roll_in_one_gap() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(4, 3), EpochSpec::Time(VDur::from_secs(5)));
        ts.observe(StreamId(0), &v(1, 1), VTime::ZERO);
        // Jump 3 epochs ahead; the intermediate empty epochs must clear the
        // last snapshot (the last completed epoch saw no tuples).
        let rolled = ts.observe(StreamId(0), &v(1, 1), VTime::from_secs(17));
        assert!(rolled);
        let p = ts.productivity(StreamId(1), &v(1, 1));
        assert_eq!(p, 0.0, "last epoch was empty");
    }

    #[test]
    fn per_stream_tuple_epochs_roll_independently() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(200, 4), EpochSpec::PerStreamTuples(10));
        // Stream 1 gets 10 arrivals (rolls); stream 2 only 5 (does not).
        let mut rolled_any = false;
        for i in 0..10 {
            rolled_any |= ts.observe(StreamId(1), &v(4, i % 2), VTime::ZERO);
        }
        assert!(rolled_any);
        assert!(ts.has_last_epoch(StreamId(1)));
        for _ in 0..5 {
            ts.observe(StreamId(2), &v(0, 9), VTime::ZERO);
        }
        assert!(!ts.has_last_epoch(StreamId(2)));
        // R1-tuple with A1=4: last epoch of stream 1 has 10 matches; stream
        // 2 falls back to its current sketch with 5 matches on value 0.
        let p = ts.productivity(StreamId(0), &v(4, 0));
        assert!((p - 50.0).abs() / 50.0 < 0.6, "p={p}");
    }

    #[test]
    fn current_productivity_sees_live_epoch() {
        let q = chain_query();
        let mut ts = TumblingSketches::new(&q, cfg(300, 5), EpochSpec::Time(VDur::from_secs(10)));
        for _ in 0..20 {
            ts.observe(StreamId(1), &v(2, 2), VTime::from_secs(1));
        }
        for _ in 0..20 {
            ts.observe(StreamId(2), &v(2, 2), VTime::from_secs(1));
        }
        // Roll, then add fresh tuples to the new epoch.
        ts.observe(StreamId(1), &v(9, 9), VTime::from_secs(11));
        let last_based = ts.productivity(StreamId(0), &v(9, 0));
        let current_based = ts.current_productivity(StreamId(0), &v(9, 0));
        // Value 9 only exists in the current epoch: last-based sees nothing.
        assert!(last_based.abs() < 40.0, "last_based={last_based}");
        // current-based sees 1 R2-tuple × 0 R3 matches = 0 too, but through
        // a different path; both must be finite and small.
        assert!(current_based.abs() < 40.0);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_time_epoch_rejected() {
        let q = chain_query();
        let _ = TumblingSketches::new(&q, cfg(1, 0), EpochSpec::Time(VDur::ZERO));
    }

    #[test]
    #[should_panic(expected = "epoch tuple count must be positive")]
    fn zero_tuple_epoch_rejected() {
        let q = chain_query();
        let _ = TumblingSketches::new(&q, cfg(1, 0), EpochSpec::PerStreamTuples(0));
    }
}
