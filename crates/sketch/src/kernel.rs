//! Flat, branch-light kernels over the SoA sketch state.
//!
//! Every function here works on contiguous slices laid out *stream-major*:
//! the counters (or last-epoch snapshots) of stream `k` occupy
//! `buf[k * copies .. (k + 1) * copies]`, element `c` belonging to copy
//! `c`. The kernels iterate copy-innermost so the compiler can vectorize,
//! and every floating-point reduction folds in exactly the order the
//! legacy AoS implementation used — ascending stream index, left to right
//! over copies — so estimates stay bit-identical (multiplying by ±1 is an
//! exact sign-bit flip and commutes with everything else).

/// Adds the packed ±1 signs in `words` into per-copy counters:
/// `counters[c] += +1` where bit `c` is clear, `−1` where set.
///
/// `counters` may be shorter than the bit capacity of `words` (the last
/// word's tail bits are ignored); it must not be longer.
pub fn fold_packed_signs(words: &[u64], counters: &mut [i64]) {
    assert!(
        counters.len() <= words.len() * 64,
        "fewer packed sign bits than counters"
    );
    for (w_idx, chunk) in counters.chunks_mut(64).enumerate() {
        let w = words[w_idx];
        for (b, cnt) in chunk.iter_mut().enumerate() {
            *cnt += 1 - 2 * ((w >> b) & 1) as i64;
        }
    }
}

/// Per-copy product of the counters of every stream except `exclude`
/// (pass `usize::MAX` — or any index `>= n`— to include all streams):
/// `out[c] = Π_{k ≠ exclude} buf[k·copies + c]`, multiplied in ascending
/// stream order starting from 1.0, matching the legacy fold exactly.
pub fn column_products(buf: &[i64], copies: usize, exclude: usize, out: &mut [f64]) {
    assert_eq!(out.len(), copies, "output must hold one product per copy");
    assert_eq!(buf.len() % copies.max(1), 0, "buffer is not stream-major");
    out.fill(1.0);
    for (k, row) in buf.chunks_exact(copies).enumerate() {
        if k == exclude {
            continue;
        }
        for (o, &v) in out.iter_mut().zip(row) {
            *o *= v as f64;
        }
    }
}

/// Multiplies one stream-row of counters into an accumulator:
/// `acc[c] *= row[c]`. Used by the mixed last/current fallback path.
#[inline]
pub fn multiply_row(acc: &mut [f64], row: &[i64]) {
    for (o, &v) in acc.iter_mut().zip(row) {
        *o *= v as f64;
    }
}

/// Negates `vals[c]` wherever bit `c` of `words` is set (sign −1).
/// Exact: IEEE negation flips the sign bit only, which is how it is
/// implemented here — an unconditional XOR instead of a data-dependent
/// branch, because AGMS signs are pseudo-random and mispredict ~half the
/// time.
pub fn apply_packed_signs(words: &[u64], vals: &mut [f64]) {
    assert!(
        vals.len() <= words.len() * 64,
        "fewer packed sign bits than values"
    );
    for (w_idx, chunk) in vals.chunks_mut(64).enumerate() {
        let w = words[w_idx];
        for (b, v) in chunk.iter_mut().enumerate() {
            *v = f64::from_bits(v.to_bits() ^ (((w >> b) & 1) << 63));
        }
    }
}

/// The fused two-partner mixed path (3-stream joins, the paper's shape):
/// `out[c] = ±(a[c] · b[c])` with the packed sign applied as an exact
/// sign-bit flip. Bit-identical to `fill(1.0)` + [`multiply_row`] per
/// row + [`apply_packed_signs`] — `1.0 · x` is exact and negation only
/// toggles the sign bit — in one pass over the counters instead of four.
pub fn product2_signed(a: &[i64], b: &[i64], words: &[u64], out: &mut [f64]) {
    assert_eq!(a.len(), out.len(), "row/output length mismatch");
    assert_eq!(b.len(), out.len(), "row/output length mismatch");
    assert!(
        out.len() <= words.len() * 64,
        "fewer packed sign bits than values"
    );
    for (w_idx, ((o_chunk, a_chunk), b_chunk)) in out
        .chunks_mut(64)
        .zip(a.chunks(64))
        .zip(b.chunks(64))
        .enumerate()
    {
        let w = words[w_idx];
        for (bit, ((o, &x), &y)) in o_chunk.iter_mut().zip(a_chunk).zip(b_chunk).enumerate() {
            let p = (x as f64) * (y as f64);
            *o = f64::from_bits(p.to_bits() ^ (((w >> bit) & 1) << 63));
        }
    }
}

/// `dst[c] = ±src[c]` according to the packed signs — the entire frozen
/// cross-product productivity query: one sign lookup and one copy per
/// sketch copy, no multiplies.
pub fn signed_copy(words: &[u64], src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "source/destination length mismatch");
    assert!(
        src.len() <= words.len() * 64,
        "fewer packed sign bits than values"
    );
    for ((w_idx, chunk), s_chunk) in dst.chunks_mut(64).enumerate().zip(src.chunks(64)) {
        let w = words[w_idx];
        for ((b, d), &s) in chunk.iter_mut().enumerate().zip(s_chunk) {
            *d = f64::from_bits(s.to_bits() ^ (((w >> b) & 1) << 63));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_adds_signed_units() {
        let mut counters = vec![0i64; 70];
        // Copies 0 and 65 negative, everything else positive.
        let words = [1u64, 1 << 1];
        fold_packed_signs(&words, &mut counters);
        assert_eq!(counters[0], -1);
        assert_eq!(counters[1], 1);
        assert_eq!(counters[64], 1);
        assert_eq!(counters[65], -1);
        assert_eq!(counters.iter().sum::<i64>(), 70 - 4);
        fold_packed_signs(&words, &mut counters);
        assert_eq!(counters[0], -2);
        assert_eq!(counters[69], 2);
    }

    #[test]
    fn column_products_exclude_and_full() {
        // 3 streams × 2 copies, stream-major.
        let buf = [2i64, 3, 5, 7, -1, 10];
        let mut out = [0.0f64; 2];
        column_products(&buf, 2, usize::MAX, &mut out);
        assert_eq!(out, [-(2.0 * 5.0), 3.0 * 7.0 * 10.0]);
        column_products(&buf, 2, 1, &mut out);
        assert_eq!(out, [-2.0, 3.0 * 10.0]);
        column_products(&buf, 2, 0, &mut out);
        assert_eq!(out, [-5.0, 7.0 * 10.0]);
    }

    #[test]
    fn multiply_row_accumulates() {
        let mut acc = [1.0f64, -2.0];
        multiply_row(&mut acc, &[3, 4]);
        assert_eq!(acc, [3.0, -8.0]);
    }

    #[test]
    fn apply_and_signed_copy_agree() {
        let words = [0b1010u64];
        let src = [1.5f64, 2.5, 0.0, -4.0];
        let mut a = src;
        apply_packed_signs(&words, &mut a);
        let mut b = [0.0f64; 4];
        signed_copy(&words, &src, &mut b);
        assert_eq!(a, [1.5, -2.5, 0.0, 4.0]);
        assert_eq!(a, b);
        // Negative zero round-trips exactly.
        let mut z = [0.0f64];
        apply_packed_signs(&[1], &mut z);
        assert!(z[0] == 0.0 && z[0].is_sign_negative());
    }

    #[test]
    fn product2_matches_unfused_path() {
        // 70 copies to cross a word boundary; values include zero and
        // negatives so sign handling of every magnitude is exercised.
        let a: Vec<i64> = (0..70).map(|i| i - 35).collect();
        let b: Vec<i64> = (0..70).map(|i| 2 * i - 11).collect();
        let words = [0xDEAD_BEEF_0123_4567u64, 0x0F0F_0F0F_0F0F_0F0F];
        let mut unfused = vec![1.0f64; 70];
        multiply_row(&mut unfused, &a);
        multiply_row(&mut unfused, &b);
        apply_packed_signs(&words, &mut unfused);
        let mut fused = vec![0.0f64; 70];
        product2_signed(&a, &b, &words, &mut fused);
        assert_eq!(
            fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            unfused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fused pass must be bit-identical (negative zero included)"
        );
    }

    #[test]
    #[should_panic(expected = "fewer packed sign bits")]
    fn fold_rejects_short_words() {
        let mut counters = vec![0i64; 65];
        fold_packed_signs(&[0], &mut counters);
    }
}
