//! Flat, branch-light kernels over the SoA sketch state, in three
//! interchangeable implementations: a scalar reference path, a portable
//! fixed-width lane path, and (on `x86_64`) AVX2 specializations for the
//! sign-application kernels — all **bit-identical** by construction.
//!
//! Every function here works on contiguous slices laid out *stream-major*:
//! the counters (or last-epoch snapshots) of stream `k` occupy
//! `buf[k * copies .. (k + 1) * copies]`, element `c` belonging to copy
//! `c`. The kernels iterate copy-innermost, and every floating-point
//! reduction folds in exactly the order the legacy AoS implementation used
//! — ascending stream index, left to right over copies — so estimates stay
//! bit-identical (multiplying by ±1 is an exact sign-bit flip and commutes
//! with everything else).
//!
//! # Why lane parallelism preserves bit-identity
//!
//! Each kernel below computes output index `c` from inputs at index `c`
//! only — counter folds, per-copy products, sign XORs are all elementwise.
//! A lane-parallel form evaluates the *same* operation sequence per index;
//! only the order **across** independent indexes changes, which is not
//! observable. The one reduction that crosses indexes — the mean stage of
//! median-of-means — keeps its serial within-group fold order in every
//! mode ([`group_sums`] lane-parallelizes **across** groups, never inside
//! one), because IEEE-754 addition is not associative and the estimates
//! are pinned bit-for-bit against the legacy layout. `tests/equivalence.rs`
//! proves all of this for every mode, including ragged tails and extreme
//! counters.
//!
//! # Dispatch
//!
//! The public top-level functions dispatch once per process via
//! [`kernel_mode`]: `MSTREAM_KERNEL=scalar|lanes|native` overrides; the
//! default is the best mode the CPU supports (`native` = AVX2 where
//! detected, otherwise the portable lane path). The [`scalar`] and
//! [`lanes`] modules stay public so the equivalence suite and the benches
//! can pin a specific implementation.

use std::sync::OnceLock;

/// Lane width of the portable vector kernels (f64x4 / i64x4-sized blocks,
/// one 256-bit register on the machines this targets).
pub const LANES: usize = 4;

/// Which kernel implementation the dispatching entry points run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// The legacy one-element-per-iteration reference path.
    Scalar,
    /// Portable fixed-width lane blocks ([`LANES`] elements per step).
    Lanes,
    /// AVX2 `std::arch` specializations for the sign-application kernels
    /// (the remaining kernels run the lane path, which the compiler
    /// vectorizes with the same width).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl KernelMode {
    fn resolve() -> KernelMode {
        match std::env::var("MSTREAM_KERNEL").as_deref() {
            Ok("scalar") => KernelMode::Scalar,
            Ok("lanes") => KernelMode::Lanes,
            _ => KernelMode::native(),
        }
    }

    /// The best mode this CPU supports.
    fn native() -> KernelMode {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelMode::Avx2;
        }
        KernelMode::Lanes
    }
}

/// The process-wide kernel mode, resolved once on first use: the
/// `MSTREAM_KERNEL` environment variable (`scalar`, `lanes` or `native`)
/// when set, otherwise the best mode the CPU supports. Every mode is
/// bit-identical; the knob exists for benchmarking and bisection.
pub fn kernel_mode() -> KernelMode {
    static MODE: OnceLock<KernelMode> = OnceLock::new();
    *MODE.get_or_init(KernelMode::resolve)
}

// ---------------------------------------------------------------------------
// Shape guards, shared by every implementation.
// ---------------------------------------------------------------------------

/// Validates the packed-sign shape contract: one sign bit available for
/// every element (`len <= words.len() * 64`).
#[inline]
fn check_sign_shape(words: &[u64], len: usize, what: &str) {
    assert!(
        len <= words.len() * 64,
        "fewer packed sign bits than {what}"
    );
}

/// Validates the stream-major shape contract of [`column_products`],
/// returning `true` if there is nothing to do (`copies == 0`, which is
/// only legal with empty buffers — a mis-shaped non-empty buffer used to
/// slip through the old `copies.max(1)` modulo guard and panic deep inside
/// `chunks_exact`).
#[inline]
fn check_column_shape(buf: &[i64], copies: usize, out: &[f64]) -> bool {
    if copies == 0 {
        assert!(
            buf.is_empty() && out.is_empty(),
            "zero copies with non-empty buffers ({} counters, {} outputs)",
            buf.len(),
            out.len()
        );
        return true;
    }
    assert_eq!(out.len(), copies, "output must hold one product per copy");
    assert_eq!(buf.len() % copies, 0, "buffer is not stream-major");
    false
}

/// Validates the group-major shape contract of [`group_sums`].
#[inline]
fn check_group_shape(per_copy: &[f64], s1: usize, s2: usize) {
    assert_eq!(per_copy.len(), s1 * s2, "copy count must be s1*s2");
}

// ---------------------------------------------------------------------------
// Dispatching entry points (the public kernel API).
// ---------------------------------------------------------------------------

/// Adds the packed ±1 signs in `words` into per-copy counters:
/// `counters[c] += +1` where bit `c` is clear, `−1` where set.
///
/// `counters` may be shorter than the bit capacity of `words` (the last
/// word's tail bits are ignored); it must not be longer. Empty `counters`
/// (with any `words`, including none) is a no-op.
pub fn fold_packed_signs(words: &[u64], counters: &mut [i64]) {
    check_sign_shape(words, counters.len(), "counters");
    match kernel_mode() {
        KernelMode::Scalar => scalar::fold_packed_signs(words, counters),
        _ => lanes::fold_packed_signs(words, counters),
    }
}

/// Per-copy product of the counters of every stream except `exclude`
/// (pass `usize::MAX` — or any index `>= n`— to include all streams):
/// `out[c] = Π_{k ≠ exclude} buf[k·copies + c]`, multiplied in ascending
/// stream order starting from 1.0, matching the legacy fold exactly.
///
/// `copies == 0` is legal only with empty `buf` and `out` (and is a
/// no-op); a non-empty buffer must be an exact multiple of `copies`.
pub fn column_products(buf: &[i64], copies: usize, exclude: usize, out: &mut [f64]) {
    if check_column_shape(buf, copies, out) {
        return;
    }
    match kernel_mode() {
        KernelMode::Scalar => scalar::column_products(buf, copies, exclude, out),
        _ => lanes::column_products(buf, copies, exclude, out),
    }
}

/// Multiplies one stream-row of counters into an accumulator:
/// `acc[c] *= row[c]`. Used by the mixed last/current fallback path.
#[inline]
pub fn multiply_row(acc: &mut [f64], row: &[i64]) {
    match kernel_mode() {
        KernelMode::Scalar => scalar::multiply_row(acc, row),
        _ => lanes::multiply_row(acc, row),
    }
}

/// Negates `vals[c]` wherever bit `c` of `words` is set (sign −1).
/// Exact: IEEE negation flips the sign bit only, which is how it is
/// implemented here — an unconditional XOR instead of a data-dependent
/// branch, because AGMS signs are pseudo-random and mispredict ~half the
/// time.
pub fn apply_packed_signs(words: &[u64], vals: &mut [f64]) {
    check_sign_shape(words, vals.len(), "values");
    match kernel_mode() {
        KernelMode::Scalar => scalar::apply_packed_signs(words, vals),
        KernelMode::Lanes => lanes::apply_packed_signs(words, vals),
        #[cfg(target_arch = "x86_64")]
        KernelMode::Avx2 => avx2::apply_packed_signs(words, vals),
    }
}

/// The fused two-partner mixed path (3-stream joins, the paper's shape):
/// `out[c] = ±(a[c] · b[c])` with the packed sign applied as an exact
/// sign-bit flip. Bit-identical to `fill(1.0)` + [`multiply_row`] per
/// row + [`apply_packed_signs`] — `1.0 · x` is exact and negation only
/// toggles the sign bit — in one pass over the counters instead of four.
pub fn product2_signed(a: &[i64], b: &[i64], words: &[u64], out: &mut [f64]) {
    assert_eq!(a.len(), out.len(), "row/output length mismatch");
    assert_eq!(b.len(), out.len(), "row/output length mismatch");
    check_sign_shape(words, out.len(), "values");
    match kernel_mode() {
        KernelMode::Scalar => scalar::product2_signed(a, b, words, out),
        _ => lanes::product2_signed(a, b, words, out),
    }
}

/// `dst[c] = ±src[c]` according to the packed signs — the entire frozen
/// cross-product productivity query: one sign lookup and one copy per
/// sketch copy, no multiplies.
pub fn signed_copy(words: &[u64], src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "source/destination length mismatch");
    check_sign_shape(words, src.len(), "values");
    match kernel_mode() {
        KernelMode::Scalar => scalar::signed_copy(words, src, dst),
        KernelMode::Lanes => lanes::signed_copy(words, src, dst),
        #[cfg(target_arch = "x86_64")]
        KernelMode::Avx2 => avx2::signed_copy(words, src, dst),
    }
}

/// The mean stage of median-of-means: appends to `groups` the serial sum
/// of each of the `s2` groups of `s1` consecutive `per_copy` values
/// (group-major layout). Every mode keeps the **within-group fold order
/// strictly serial** — f64 addition is not associative, so an in-group
/// tree would change bits — and the lane path parallelizes only *across*
/// independent groups.
pub fn group_sums(per_copy: &[f64], s1: usize, s2: usize, groups: &mut Vec<f64>) {
    check_group_shape(per_copy, s1, s2);
    match kernel_mode() {
        KernelMode::Scalar => scalar::group_sums(per_copy, s1, s2, groups),
        _ => lanes::group_sums(per_copy, s1, s2, groups),
    }
}

// ---------------------------------------------------------------------------
// Scalar reference path.
// ---------------------------------------------------------------------------

/// The one-element-per-iteration reference implementations. Shape guards
/// live in the dispatching entry points; these assume validated inputs
/// (public so the equivalence suite and benches can pin this path).
pub mod scalar {
    /// Scalar [`super::fold_packed_signs`].
    pub fn fold_packed_signs(words: &[u64], counters: &mut [i64]) {
        for (chunk, &w) in counters.chunks_mut(64).zip(words) {
            for (b, cnt) in chunk.iter_mut().enumerate() {
                *cnt += 1 - 2 * ((w >> b) & 1) as i64;
            }
        }
    }

    /// Scalar [`super::column_products`].
    pub fn column_products(buf: &[i64], copies: usize, exclude: usize, out: &mut [f64]) {
        out.fill(1.0);
        for (k, row) in buf.chunks_exact(copies).enumerate() {
            if k == exclude {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(row) {
                *o *= v as f64;
            }
        }
    }

    /// Scalar [`super::multiply_row`].
    #[inline]
    pub fn multiply_row(acc: &mut [f64], row: &[i64]) {
        for (o, &v) in acc.iter_mut().zip(row) {
            *o *= v as f64;
        }
    }

    /// Scalar [`super::apply_packed_signs`].
    pub fn apply_packed_signs(words: &[u64], vals: &mut [f64]) {
        for (chunk, &w) in vals.chunks_mut(64).zip(words) {
            for (b, v) in chunk.iter_mut().enumerate() {
                *v = f64::from_bits(v.to_bits() ^ (((w >> b) & 1) << 63));
            }
        }
    }

    /// Scalar [`super::product2_signed`].
    pub fn product2_signed(a: &[i64], b: &[i64], words: &[u64], out: &mut [f64]) {
        for (((o_chunk, a_chunk), b_chunk), &w) in out
            .chunks_mut(64)
            .zip(a.chunks(64))
            .zip(b.chunks(64))
            .zip(words)
        {
            for (bit, ((o, &x), &y)) in o_chunk.iter_mut().zip(a_chunk).zip(b_chunk).enumerate() {
                let p = (x as f64) * (y as f64);
                *o = f64::from_bits(p.to_bits() ^ (((w >> bit) & 1) << 63));
            }
        }
    }

    /// Scalar [`super::signed_copy`].
    pub fn signed_copy(words: &[u64], src: &[f64], dst: &mut [f64]) {
        for ((chunk, s_chunk), &w) in dst.chunks_mut(64).zip(src.chunks(64)).zip(words) {
            for ((b, d), &s) in chunk.iter_mut().enumerate().zip(s_chunk) {
                *d = f64::from_bits(s.to_bits() ^ (((w >> b) & 1) << 63));
            }
        }
    }

    /// Scalar [`super::group_sums`]: one serial sum per group, groups in
    /// ascending order.
    pub fn group_sums(per_copy: &[f64], s1: usize, s2: usize, groups: &mut Vec<f64>) {
        for g in 0..s2 {
            let sum: f64 = per_copy[g * s1..(g + 1) * s1].iter().sum();
            groups.push(sum);
        }
    }
}

// ---------------------------------------------------------------------------
// Portable lane path.
// ---------------------------------------------------------------------------

/// Fixed-width lane implementations on stable Rust: [`super::LANES`]-wide
/// blocks via `chunks_exact` with a scalar tail, shaped so the compiler
/// keeps each block in one vector register. Bit-identical to [`scalar`]
/// because every block computes the same per-index operation sequence;
/// only the interleaving across independent indexes changes.
pub mod lanes {
    use super::LANES;

    /// Lane [`super::fold_packed_signs`]: [`LANES`] counters per step,
    /// sign bits expanded in-register order.
    pub fn fold_packed_signs(words: &[u64], counters: &mut [i64]) {
        for (chunk, &w) in counters.chunks_mut(64).zip(words) {
            let mut blocks = chunk.chunks_exact_mut(LANES);
            let mut base = 0u32;
            for block in &mut blocks {
                for (l, cnt) in block.iter_mut().enumerate() {
                    *cnt += 1 - 2 * ((w >> (base + l as u32)) & 1) as i64;
                }
                base += LANES as u32;
            }
            for (b, cnt) in blocks.into_remainder().iter_mut().enumerate() {
                *cnt += 1 - 2 * ((w >> (base + b as u32)) & 1) as i64;
            }
        }
    }

    /// Lane [`super::column_products`]: the per-copy running products of a
    /// [`LANES`]-block live in one register across the stream sweep; each
    /// copy still multiplies streams in ascending order from 1.0.
    pub fn column_products(buf: &[i64], copies: usize, exclude: usize, out: &mut [f64]) {
        out.fill(1.0);
        for (k, row) in buf.chunks_exact(copies).enumerate() {
            if k == exclude {
                continue;
            }
            multiply_row(out, row);
        }
    }

    /// Lane [`super::multiply_row`].
    #[inline]
    pub fn multiply_row(acc: &mut [f64], row: &[i64]) {
        let mut blocks = acc.chunks_exact_mut(LANES);
        let mut rows = row.chunks_exact(LANES);
        for (block, r) in (&mut blocks).zip(&mut rows) {
            for (o, &v) in block.iter_mut().zip(r) {
                *o *= v as f64;
            }
        }
        for (o, &v) in blocks
            .into_remainder()
            .iter_mut()
            .zip(rows.remainder())
        {
            *o *= v as f64;
        }
    }

    /// Lane [`super::apply_packed_signs`]: XORs a 4-bit slice of the sign
    /// word into the sign bits of [`LANES`] values per step.
    pub fn apply_packed_signs(words: &[u64], vals: &mut [f64]) {
        for (chunk, &w) in vals.chunks_mut(64).zip(words) {
            let mut blocks = chunk.chunks_exact_mut(LANES);
            let mut base = 0u32;
            for block in &mut blocks {
                for (l, v) in block.iter_mut().enumerate() {
                    *v = f64::from_bits(v.to_bits() ^ (((w >> (base + l as u32)) & 1) << 63));
                }
                base += LANES as u32;
            }
            for (b, v) in blocks.into_remainder().iter_mut().enumerate() {
                *v = f64::from_bits(v.to_bits() ^ (((w >> (base + b as u32)) & 1) << 63));
            }
        }
    }

    /// Lane [`super::product2_signed`].
    pub fn product2_signed(a: &[i64], b: &[i64], words: &[u64], out: &mut [f64]) {
        for (((o_chunk, a_chunk), b_chunk), &w) in out
            .chunks_mut(64)
            .zip(a.chunks(64))
            .zip(b.chunks(64))
            .zip(words)
        {
            let mut o_blocks = o_chunk.chunks_exact_mut(LANES);
            let mut a_blocks = a_chunk.chunks_exact(LANES);
            let mut b_blocks = b_chunk.chunks_exact(LANES);
            let mut base = 0u32;
            for ((o, xa), xb) in (&mut o_blocks).zip(&mut a_blocks).zip(&mut b_blocks) {
                for l in 0..LANES {
                    let p = (xa[l] as f64) * (xb[l] as f64);
                    o[l] = f64::from_bits(p.to_bits() ^ (((w >> (base + l as u32)) & 1) << 63));
                }
                base += LANES as u32;
            }
            for (bit, ((o, &x), &y)) in o_blocks
                .into_remainder()
                .iter_mut()
                .zip(a_blocks.remainder())
                .zip(b_blocks.remainder())
                .enumerate()
            {
                let p = (x as f64) * (y as f64);
                *o = f64::from_bits(p.to_bits() ^ (((w >> (base + bit as u32)) & 1) << 63));
            }
        }
    }

    /// Lane [`super::signed_copy`].
    pub fn signed_copy(words: &[u64], src: &[f64], dst: &mut [f64]) {
        for ((chunk, s_chunk), &w) in dst.chunks_mut(64).zip(src.chunks(64)).zip(words) {
            let mut d_blocks = chunk.chunks_exact_mut(LANES);
            let mut s_blocks = s_chunk.chunks_exact(LANES);
            let mut base = 0u32;
            for (d, s) in (&mut d_blocks).zip(&mut s_blocks) {
                for l in 0..LANES {
                    d[l] = f64::from_bits(s[l].to_bits() ^ (((w >> (base + l as u32)) & 1) << 63));
                }
                base += LANES as u32;
            }
            for ((b, d), &s) in d_blocks
                .into_remainder()
                .iter_mut()
                .enumerate()
                .zip(s_blocks.remainder())
            {
                *d = f64::from_bits(s.to_bits() ^ (((w >> (base + b as u32)) & 1) << 63));
            }
        }
    }

    // The four-way zip in [`group_sums`] spells the lanes out by hand.
    const _LANES_IS_FOUR: () = assert!(LANES == 4);

    /// Lane [`super::group_sums`]: [`LANES`] *independent groups* advance
    /// together, each keeping its own strictly serial accumulator — lane
    /// parallelism across groups, never inside one, so every group's sum
    /// is bit-identical to the scalar serial fold.
    pub fn group_sums(per_copy: &[f64], s1: usize, s2: usize, groups: &mut Vec<f64>) {
        let mut g = 0usize;
        while g + LANES <= s2 {
            // Four bounds-checked row slices up front; the inner loop then
            // walks them in lockstep through zips, which elide per-element
            // bounds checks and leave four independent add chains for the
            // CPU to run in parallel.
            let rest = &per_copy[g * s1..];
            let (r0, rest) = rest.split_at(s1);
            let (r1, rest) = rest.split_at(s1);
            let (r2, rest) = rest.split_at(s1);
            let r3 = &rest[..s1];
            // -0.0, not +0.0: `Iterator::sum::<f64>` folds from -0.0 (the
            // additive identity that preserves the sign of a -0.0-only
            // group), and the scalar path inherits that. +0.0 here would
            // flip the sign bit of all-negative-zero groups.
            let mut acc = [-0.0f64; LANES];
            for (((&x0, &x1), &x2), &x3) in r0.iter().zip(r1).zip(r2).zip(r3) {
                acc[0] += x0;
                acc[1] += x1;
                acc[2] += x2;
                acc[3] += x3;
            }
            groups.extend_from_slice(&acc);
            g += LANES;
        }
        for tail in g..s2 {
            let sum: f64 = per_copy[tail * s1..(tail + 1) * s1].iter().sum();
            groups.push(sum);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 specializations (x86_64 only).
// ---------------------------------------------------------------------------

/// AVX2 `std::arch` specializations for the sign-application kernels: the
/// packed sign bits expand to a `{0, 1<<63}` lane mask in-register
/// (broadcast + variable shift) and XOR into four values per instruction.
/// Sign application is a pure bit operation, so these are exact for every
/// input including NaNs and ±0.0. Only reached after
/// `is_x86_feature_detected!("avx2")` at dispatch resolution.
///
/// This module is the one sanctioned `unsafe` island of the crate (see
/// the crate-level `deny(unsafe_code)`): the only unsafety is the
/// `target_feature` calling contract, discharged by the runtime
/// detection; all loads and stores are bounds-derived from safe slices.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod avx2 {
    use super::LANES;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_loadu_si256, _mm256_set1_epi64x,
        _mm256_setr_epi64x, _mm256_slli_epi64, _mm256_srlv_epi64, _mm256_storeu_si256,
        _mm256_xor_si256,
    };

    /// Builds the `{0, 1<<63}` sign-flip mask for bits
    /// `base..base + LANES` of `w`.
    ///
    /// # Safety
    /// Requires AVX2 (enforced by the callers' `target_feature` scope).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sign_mask(w: u64, base: u32) -> __m256i {
        let shifts = _mm256_add_epi64(
            _mm256_set1_epi64x(base as i64),
            _mm256_setr_epi64x(0, 1, 2, 3),
        );
        let bits = _mm256_and_si256(
            _mm256_srlv_epi64(_mm256_set1_epi64x(w as i64), shifts),
            _mm256_set1_epi64x(1),
        );
        _mm256_slli_epi64::<63>(bits)
    }

    /// AVX2 body of [`apply_packed_signs`]: `vals` and `words` already
    /// shape-checked by the dispatcher.
    #[target_feature(enable = "avx2")]
    unsafe fn apply_packed_signs_impl(words: &[u64], vals: &mut [f64]) {
        for (chunk, &w) in vals.chunks_mut(64).zip(words) {
            let mut blocks = chunk.chunks_exact_mut(LANES);
            let mut base = 0u32;
            for block in &mut blocks {
                let p = block.as_mut_ptr() as *mut __m256i;
                let v = _mm256_loadu_si256(p);
                _mm256_storeu_si256(p, _mm256_xor_si256(v, sign_mask(w, base)));
                base += LANES as u32;
            }
            for (b, v) in blocks.into_remainder().iter_mut().enumerate() {
                *v = f64::from_bits(v.to_bits() ^ (((w >> (base + b as u32)) & 1) << 63));
            }
        }
    }

    /// AVX2 body of [`signed_copy`].
    #[target_feature(enable = "avx2")]
    unsafe fn signed_copy_impl(words: &[u64], src: &[f64], dst: &mut [f64]) {
        for ((chunk, s_chunk), &w) in dst.chunks_mut(64).zip(src.chunks(64)).zip(words) {
            let mut d_blocks = chunk.chunks_exact_mut(LANES);
            let mut s_blocks = s_chunk.chunks_exact(LANES);
            let mut base = 0u32;
            for (d, s) in (&mut d_blocks).zip(&mut s_blocks) {
                let v = _mm256_loadu_si256(s.as_ptr() as *const __m256i);
                _mm256_storeu_si256(
                    d.as_mut_ptr() as *mut __m256i,
                    _mm256_xor_si256(v, sign_mask(w, base)),
                );
                base += LANES as u32;
            }
            for ((b, d), &s) in d_blocks
                .into_remainder()
                .iter_mut()
                .enumerate()
                .zip(s_blocks.remainder())
            {
                *d = f64::from_bits(s.to_bits() ^ (((w >> (base + b as u32)) & 1) << 63));
            }
        }
    }

    /// AVX2 [`super::apply_packed_signs`]. Panics if AVX2 is unavailable
    /// (the dispatcher only selects this mode after runtime detection).
    pub fn apply_packed_signs(words: &[u64], vals: &mut [f64]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "avx2 kernels selected without avx2"
        );
        // SAFETY: AVX2 presence asserted above; slice accesses are safe.
        unsafe { apply_packed_signs_impl(words, vals) }
    }

    /// AVX2 [`super::signed_copy`]. Panics if AVX2 is unavailable.
    pub fn signed_copy(words: &[u64], src: &[f64], dst: &mut [f64]) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "avx2 kernels selected without avx2"
        );
        // SAFETY: AVX2 presence asserted above; slice accesses are safe.
        unsafe { signed_copy_impl(words, src, dst) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_adds_signed_units() {
        let mut counters = vec![0i64; 70];
        // Copies 0 and 65 negative, everything else positive.
        let words = [1u64, 1 << 1];
        fold_packed_signs(&words, &mut counters);
        assert_eq!(counters[0], -1);
        assert_eq!(counters[1], 1);
        assert_eq!(counters[64], 1);
        assert_eq!(counters[65], -1);
        assert_eq!(counters.iter().sum::<i64>(), 70 - 4);
        fold_packed_signs(&words, &mut counters);
        assert_eq!(counters[0], -2);
        assert_eq!(counters[69], 2);
    }

    #[test]
    fn column_products_exclude_and_full() {
        // 3 streams × 2 copies, stream-major.
        let buf = [2i64, 3, 5, 7, -1, 10];
        let mut out = [0.0f64; 2];
        column_products(&buf, 2, usize::MAX, &mut out);
        assert_eq!(out, [-(2.0 * 5.0), 3.0 * 7.0 * 10.0]);
        column_products(&buf, 2, 1, &mut out);
        assert_eq!(out, [-2.0, 3.0 * 10.0]);
        column_products(&buf, 2, 0, &mut out);
        assert_eq!(out, [-5.0, 7.0 * 10.0]);
    }

    #[test]
    fn multiply_row_accumulates() {
        let mut acc = [1.0f64, -2.0];
        multiply_row(&mut acc, &[3, 4]);
        assert_eq!(acc, [3.0, -8.0]);
    }

    #[test]
    fn apply_and_signed_copy_agree() {
        let words = [0b1010u64];
        let src = [1.5f64, 2.5, 0.0, -4.0];
        let mut a = src;
        apply_packed_signs(&words, &mut a);
        let mut b = [0.0f64; 4];
        signed_copy(&words, &src, &mut b);
        assert_eq!(a, [1.5, -2.5, 0.0, 4.0]);
        assert_eq!(a, b);
        // Negative zero round-trips exactly.
        let mut z = [0.0f64];
        apply_packed_signs(&[1], &mut z);
        assert!(z[0] == 0.0 && z[0].is_sign_negative());
    }

    #[test]
    fn product2_matches_unfused_path() {
        // 70 copies to cross a word boundary; values include zero and
        // negatives so sign handling of every magnitude is exercised.
        let a: Vec<i64> = (0..70).map(|i| i - 35).collect();
        let b: Vec<i64> = (0..70).map(|i| 2 * i - 11).collect();
        let words = [0xDEAD_BEEF_0123_4567u64, 0x0F0F_0F0F_0F0F_0F0F];
        let mut unfused = vec![1.0f64; 70];
        multiply_row(&mut unfused, &a);
        multiply_row(&mut unfused, &b);
        apply_packed_signs(&words, &mut unfused);
        let mut fused = vec![0.0f64; 70];
        product2_signed(&a, &b, &words, &mut fused);
        assert_eq!(
            fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            unfused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fused pass must be bit-identical (negative zero included)"
        );
    }

    #[test]
    #[should_panic(expected = "fewer packed sign bits")]
    fn fold_rejects_short_words() {
        let mut counters = vec![0i64; 65];
        fold_packed_signs(&[0], &mut counters);
    }

    #[test]
    fn fold_accepts_empty_counters_with_no_words() {
        // Regression: the old chunked loop indexed `words[w_idx]` by
        // position; the zip form cannot touch `words` when there is no
        // counter chunk to fold into.
        let mut counters: Vec<i64> = Vec::new();
        fold_packed_signs(&[], &mut counters);
        fold_packed_signs(&[0xFFFF_FFFF_FFFF_FFFF], &mut counters);
        assert!(counters.is_empty());
    }

    #[test]
    fn column_products_zero_copies_is_empty_noop() {
        // Regression: `copies == 0` used to reach `chunks_exact(0)` and
        // panic with an unrelated message; now it is an explicit no-op for
        // empty buffers only.
        let mut out: Vec<f64> = Vec::new();
        column_products(&[], 0, usize::MAX, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero copies with non-empty buffers")]
    fn column_products_zero_copies_rejects_data() {
        // Regression: the old `copies.max(1)` modulo guard silently
        // accepted this mis-shaped buffer.
        let mut out = [0.0f64; 2];
        column_products(&[1, 2, 3], 0, usize::MAX, &mut out);
    }

    #[test]
    #[should_panic(expected = "buffer is not stream-major")]
    fn column_products_rejects_ragged_buffer() {
        let mut out = [0.0f64; 2];
        column_products(&[1, 2, 3], 2, usize::MAX, &mut out);
    }

    #[test]
    fn group_sums_keeps_serial_order_in_every_mode() {
        // Adversarial magnitudes where fold order is observable: a tree
        // reduction of [1e16, 1.0, -1e16, 1.0] gives 2.0, the serial fold
        // gives 1.0. Both lane and scalar modes must produce the serial
        // answer for every group.
        let per_copy: Vec<f64> = (0..6 * 4)
            .map(|i| match i % 4 {
                0 => 1e16,
                1 => 1.0,
                2 => -1e16,
                _ => 1.0,
            })
            .collect();
        for groups_impl in [scalar::group_sums, lanes::group_sums] {
            let mut groups = Vec::new();
            groups_impl(&per_copy, 4, 6, &mut groups);
            assert_eq!(groups, vec![1.0; 6], "serial in-group fold order");
        }
        let mut dispatched = Vec::new();
        group_sums(&per_copy, 4, 6, &mut dispatched);
        assert_eq!(dispatched, vec![1.0; 6]);
    }

    #[test]
    fn kernel_mode_resolves() {
        // Whatever the host supports, the resolved mode is stable and the
        // dispatching kernels run under it (the equivalence suite pins
        // bit-identity across modes).
        assert_eq!(kernel_mode(), kernel_mode());
    }
}
