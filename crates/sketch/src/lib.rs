//! AGMS sketching for multi-way join-size and tuple-productivity estimation.
//!
//! This crate implements the estimation substrate of Law & Zaniolo (ICDE'07),
//! which itself builds on Dobra, Garofalakis, Gehrke & Rastogi (SIGMOD'02)
//! and Alon, Gibbons, Matias & Szegedy (PODS'99):
//!
//! * [`FourWiseHash`] — a four-wise independent ±1 family built from a
//!   degree-3 polynomial over the Mersenne prime `2^61 − 1`.
//! * [`AtomicSketch`] — per-relation atomic sketch
//!   `X_k = Σ_t Π_{j ∈ attrs(R_k) ∩ θ} ξ_{j, t[j]}`.
//! * [`SketchBank`] — `s1 × s2` independent copies of the atomic sketches of
//!   every stream, combined by median-of-means into
//!   - the multi-way COUNT estimate `E[Π_k X_k] = |W_1 ⋈ … ⋈ W_n|`, and
//!   - the per-tuple productivity `prod(t) = ξ_i(t) · Π_{k≠i} X_k`
//!     (the COUNT of the join with `W_i = {t}`), which is the priority
//!     signal every sketch-based shedding policy consumes.
//! * [`TumblingSketches`] — the paper's tumbling-window discipline: sketches
//!   accumulate over epochs of length `n` (defaulting to the join-window
//!   length `p`); productivity queries are answered from the *previous*
//!   epoch so each tuple is scored at most twice in its lifetime.
//! * [`FreqTable`] / [`PartnerFrequency`] — exact per-window value-frequency
//!   tables, the state behind the `Bjoin`/`Prob` baseline (and the space
//!   cost the paper's complexity comparison charges it with).
//! * [`SignFamilies`] / [`SignCache`] / [`kernel`] — the flat
//!   structure-of-arrays hot path beneath [`SketchBank`]: hash coefficients
//!   stored copy-major per predicate, ±1 signs evaluated once per
//!   `(predicate, value)` into bit-packed `u64` vectors (memoized, XOR-
//!   combined across incident predicates), and contiguous counter/product
//!   kernels that keep every estimate bit-identical to the original
//!   array-of-structs implementation.

//!
//! ```
//! use mstream_sketch::{BankConfig, SketchBank};
//! use mstream_types::{Catalog, JoinQuery, StreamId, StreamSchema, Value, WindowSpec};
//!
//! let mut c = Catalog::new();
//! c.add_stream(StreamSchema::new("L", &["k"]));
//! c.add_stream(StreamSchema::new("R", &["k"]));
//! let query = JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap();
//!
//! let mut bank = SketchBank::new(&query, BankConfig { s1: 400, s2: 1, seed: 7 });
//! for _ in 0..50 {
//!     bank.update(StreamId(1), &[Value(3)]); // 50 R-tuples with k = 3
//! }
//! // A fresh L-tuple with k = 3 would join ~50 partners; k = 4 none.
//! let hot = bank.productivity(StreamId(0), &[Value(3)]);
//! let cold = bank.productivity(StreamId(0), &[Value(4)]);
//! assert!((hot - 50.0).abs() < 20.0, "hot = {hot}");
//! assert!(hot > cold.max(0.0));
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// tightly-scoped `#[allow(unsafe_code)]` on `kernel::avx2`, whose only
// unsafety is the `target_feature` calling contract (discharged by runtime
// CPU detection). Everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod bank;
pub mod freq;
pub mod hash;
pub mod kernel;
pub mod score_cache;
pub mod signs;
pub mod tumbling;

pub use atomic::AtomicSketch;
pub use bank::{median_of_means_into, median_of_means_slice, BankConfig, SketchBank};
pub use freq::{FreqTable, PartnerFrequency, SpaceSaving, TumblingFreq};
pub use hash::FourWiseHash;
pub use kernel::{kernel_mode, KernelMode, LANES};
pub use score_cache::{score_cache_env_default, ScoreCache, ScoreCacheStats, ScoreKey};
pub use signs::{SignCache, SignCacheStats, SignFamilies};
pub use tumbling::{EpochSpec, TumblingSketches};
