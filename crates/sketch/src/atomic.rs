//! Per-relation atomic sketches.

use serde::{Deserialize, Serialize};

/// One atomic sketch `X_k` of one relation/window.
///
/// `X_k = Σ_{t ∈ R_k} Π_{j ∈ attrs(R_k) ∩ θ} ξ_{j, t[j]}` — each arriving
/// tuple contributes the product of its ±1 signs over the predicates
/// incident to its stream (Dobra et al. §3). The counter is an `i64`: an
/// epoch of `m` tuples bounds `|X_k| ≤ m`, so overflow is impossible for
/// any realistic epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicSketch {
    value: i64,
    tuples: u64,
}

impl AtomicSketch {
    /// A zeroed sketch (the state at the start of every tumbling epoch).
    pub fn new() -> Self {
        AtomicSketch::default()
    }

    /// Adds one tuple whose incident-sign product is `sign_product` (±1).
    #[inline]
    pub fn add(&mut self, sign_product: i64) {
        debug_assert!(sign_product == 1 || sign_product == -1);
        self.value += sign_product;
        self.tuples += 1;
    }

    /// The current counter `X_k`.
    #[inline]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Number of tuples folded into this sketch this epoch.
    #[inline]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Resets to the zero state (epoch rollover).
    #[inline]
    pub fn reset(&mut self) {
        *self = AtomicSketch::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let s = AtomicSketch::new();
        assert_eq!(s.value(), 0);
        assert_eq!(s.tuples(), 0);
    }

    #[test]
    fn accumulates_signed_counts() {
        let mut s = AtomicSketch::new();
        s.add(1);
        s.add(1);
        s.add(-1);
        assert_eq!(s.value(), 1);
        assert_eq!(s.tuples(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = AtomicSketch::new();
        s.add(-1);
        s.reset();
        assert_eq!(s, AtomicSketch::new());
    }

    #[test]
    #[should_panic(expected = "sign_product")]
    #[cfg(debug_assertions)]
    fn rejects_non_sign_inputs_in_debug() {
        AtomicSketch::new().add(2);
    }
}
