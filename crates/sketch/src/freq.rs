//! Exact value-frequency tables — the state behind the `Bjoin` baseline.
//!
//! The multi-binary-join approach the paper compares against (Das et al.'s
//! `Prob` applied pairwise) prioritizes a tuple by the *frequency of its
//! join value in the partner stream*: an estimate of how many partner
//! arrivals the tuple can expect to meet, computed from the partner's
//! observed value distribution. That needs an exact frequency table per
//! (stream, join attribute) pair — `O(Σ |dom(A_i)|)` space, which is
//! precisely the cost the paper's complexity section charges the baseline
//! with (vs. `O(s1·s2·Σ log |dom(A_i)|)` for the sketches).
//!
//! [`TumblingFreq`] maintains these tables under the same tumbling-epoch
//! discipline as the AGMS sketches (accumulate the current epoch, score
//! from the last completed one), so the `Bjoin`/`Life` baselines and the
//! sketch policies estimate the same forward-looking quantity and differ
//! only in *pairwise-exact vs multi-way-sketched*.

use crate::tumbling::EpochSpec;
use mstream_types::{JoinQuery, StreamId, VTime, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An exact multiset of values with O(1) add/remove/count.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FreqTable {
    counts: HashMap<Value, u64>,
    total: u64,
}

impl FreqTable {
    /// An empty table.
    pub fn new() -> Self {
        FreqTable::default()
    }

    /// Records one occurrence of `v`.
    pub fn add(&mut self, v: Value) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.total += 1;
    }

    /// Removes one occurrence of `v`.
    ///
    /// # Panics
    /// Panics if `v` is not present — the window store and its frequency
    /// tables must never disagree, so a miss is a logic error.
    pub fn remove(&mut self, v: Value) {
        match self.counts.get_mut(&v) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&v);
            }
            None => panic!("FreqTable::remove of absent value {v}"),
        }
        self.total -= 1;
    }

    /// The multiplicity of `v`.
    #[inline]
    pub fn count(&self, v: Value) -> u64 {
        self.counts.get(&v).copied().unwrap_or(0)
    }

    /// Total number of recorded occurrences.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values present.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates over `(value, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Value, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

/// Partner-frequency bookkeeping for the `Bjoin` baseline.
///
/// For every equi-join predicate `j` and each of its two endpoint windows,
/// a [`FreqTable`] over the *partner* endpoint's values is kept; a tuple's
/// `Bjoin` priority is the product, over the predicates incident to its
/// stream, of the partner-window frequency of its join value — i.e. the
/// productivity the tuple would have if the query were decomposed into
/// independent binary joins (the decision that "disregards the content of
/// streams outside the joined pair").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartnerFrequency {
    /// `tables[pred]` = (freq of left endpoint's window, freq of right's).
    tables: Vec<(FreqTable, FreqTable)>,
}

impl PartnerFrequency {
    /// Builds empty tables for `n_predicates` predicates.
    pub fn new(n_predicates: usize) -> Self {
        PartnerFrequency {
            tables: vec![(FreqTable::new(), FreqTable::new()); n_predicates],
        }
    }

    /// Records that a tuple with value `v` on the **left** endpoint of
    /// predicate `pred` entered its window.
    pub fn add_left(&mut self, pred: usize, v: Value) {
        self.tables[pred].0.add(v);
    }

    /// Records that a tuple with value `v` on the **right** endpoint of
    /// predicate `pred` entered its window.
    pub fn add_right(&mut self, pred: usize, v: Value) {
        self.tables[pred].1.add(v);
    }

    /// Removes a left-endpoint occurrence.
    pub fn remove_left(&mut self, pred: usize, v: Value) {
        self.tables[pred].0.remove(v);
    }

    /// Removes a right-endpoint occurrence.
    pub fn remove_right(&mut self, pred: usize, v: Value) {
        self.tables[pred].1.remove(v);
    }

    /// Frequency of `v` among **left**-endpoint window tuples of `pred`
    /// (what a right-endpoint tuple consults).
    pub fn left_count(&self, pred: usize, v: Value) -> u64 {
        self.tables[pred].0.count(v)
    }

    /// Frequency of `v` among **right**-endpoint window tuples of `pred`
    /// (what a left-endpoint tuple consults).
    pub fn right_count(&self, pred: usize, v: Value) -> u64 {
        self.tables[pred].1.count(v)
    }
}

/// Tumbling-epoch partner-frequency tables over *arrival* streams.
///
/// Mirrors [`crate::TumblingSketches`]: each processed tuple is folded into
/// the current epoch's tables; priorities are answered from the last
/// completed epoch (per-stream fallback to the current tables while a
/// stream's first epoch is still open); time-based epochs roll everything
/// at once, tuple-based epochs roll per stream.
#[derive(Clone, Debug)]
pub struct TumblingFreq {
    /// `(predicate, attr on stream, this stream is the predicate's left
    /// endpoint)` for every stream.
    incidence: Vec<Vec<(usize, usize, bool)>>,
    /// `partner[pred]` = (left endpoint stream, right endpoint stream).
    endpoints: Vec<(usize, usize)>,
    current: PartnerFrequency,
    last: PartnerFrequency,
    /// Whether stream `k` has completed at least one epoch.
    has_last: Vec<bool>,
    epoch: EpochSpec,
    next_roll: VTime,
    arrivals: Vec<u64>,
}

impl TumblingFreq {
    /// Builds empty tables for `query`.
    pub fn new(query: &JoinQuery, epoch: EpochSpec) -> Self {
        let n = query.n_streams();
        let incidence = (0..n)
            .map(|s| {
                let sid = StreamId(s);
                query
                    .incident(sid)
                    .iter()
                    .map(|&(pred, attr)| {
                        (pred, attr, query.predicates()[pred].left.stream == sid)
                    })
                    .collect()
            })
            .collect();
        let endpoints = query
            .predicates()
            .iter()
            .map(|p| (p.left.stream.index(), p.right.stream.index()))
            .collect();
        let next_roll = match epoch {
            EpochSpec::Time(d) => {
                assert!(!d.is_zero(), "epoch length must be positive");
                VTime::ZERO + d
            }
            EpochSpec::PerStreamTuples(c) => {
                assert!(c > 0, "epoch tuple count must be positive");
                VTime::ZERO
            }
        };
        TumblingFreq {
            incidence,
            endpoints,
            current: PartnerFrequency::new(query.predicates().len()),
            last: PartnerFrequency::new(query.predicates().len()),
            has_last: vec![false; n],
            epoch,
            next_roll,
            arrivals: vec![0; n],
        }
    }

    /// Folds an arriving tuple into the current epoch and performs any due
    /// rollover. Returns `true` when a rollover happened.
    pub fn observe(&mut self, stream: StreamId, values: &[Value], now: VTime) -> bool {
        let mut rolled = false;
        if let EpochSpec::Time(d) = self.epoch {
            while now >= self.next_roll {
                self.roll_all();
                self.next_roll += d;
                rolled = true;
            }
        }
        for &(pred, attr, is_left) in &self.incidence[stream.index()] {
            let v = values[attr];
            if is_left {
                self.current.add_left(pred, v);
            } else {
                self.current.add_right(pred, v);
            }
        }
        if let EpochSpec::PerStreamTuples(c) = self.epoch {
            let k = stream.index();
            self.arrivals[k] += 1;
            if self.arrivals[k] >= c {
                self.arrivals[k] = 0;
                self.roll_stream(stream);
                rolled = true;
            }
        }
        rolled
    }

    fn roll_all(&mut self) {
        let fresh = PartnerFrequency::new(self.current.tables.len());
        self.last = std::mem::replace(&mut self.current, fresh);
        self.has_last.fill(true);
    }

    fn roll_stream(&mut self, stream: StreamId) {
        for &(pred, _, is_left) in &self.incidence[stream.index()] {
            let (cur_l, cur_r) = &mut self.current.tables[pred];
            let (last_l, last_r) = &mut self.last.tables[pred];
            if is_left {
                *last_l = std::mem::take(cur_l);
            } else {
                *last_r = std::mem::take(cur_r);
            }
        }
        self.has_last[stream.index()] = true;
    }

    /// Expected partner frequency of value `v` for a tuple of `of_stream`
    /// on predicate `pred`: the *other* endpoint's count of `v`, taken
    /// from the partner stream's last completed epoch (current tables
    /// while its first epoch is still open).
    ///
    /// # Panics
    /// Panics if `of_stream` is not an endpoint of `pred`.
    pub fn partner_count(&self, pred: usize, of_stream: StreamId, v: Value) -> u64 {
        let (left, right) = self.endpoints[pred];
        let (partner_stream, partner_is_left) = if of_stream.index() == left {
            (right, false)
        } else if of_stream.index() == right {
            (left, true)
        } else {
            panic!("stream {of_stream} is not an endpoint of predicate {pred}");
        };
        let tables = if self.has_last[partner_stream] {
            &self.last
        } else {
            &self.current
        };
        if partner_is_left {
            tables.left_count(pred, v)
        } else {
            tables.right_count(pred, v)
        }
    }

    /// Whether `stream` has completed at least one epoch.
    pub fn has_last_epoch(&self, stream: StreamId) -> bool {
        self.has_last[stream.index()]
    }
}

/// Space-saving top-k frequency tracker (Metwally et al.) over raw `u64`
/// keys — the coordinator-side heavy-hitter detector for skew-adaptive
/// routing.
///
/// Holds at most `capacity` monitored keys. An unmonitored arrival evicts
/// the counter with the smallest count and inherits that count as its
/// `error` bound, so for every monitored key:
///
///   true_count ≤ count,  and  count − error ≤ true_count.
///
/// `guaranteed()` (count − error) is therefore a *lower* bound on the true
/// frequency — promotion decisions key off it so a key is only declared
/// hot when it provably exceeds the threshold, while demotion keys off the
/// upper-bound `estimate()` so hot status is sticky (hysteresis lives in
/// the caller's two thresholds, not here).
///
/// Determinism: counters live in a `Vec` and eviction scans it for the
/// first minimum; the `HashMap` index is only ever used for point lookups,
/// never iterated, so identical observation sequences produce identical
/// trackers regardless of hash seeding.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    counters: Vec<SsCounter>,
    /// key -> index into `counters`; lookup-only (never iterated).
    index: HashMap<u64, usize>,
    total: u64,
}

#[derive(Clone, Copy, Debug)]
struct SsCounter {
    key: u64,
    count: u64,
    error: u64,
}

impl SpaceSaving {
    /// Tracker monitoring at most `capacity` keys (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            counters: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity * 2),
            total: 0,
        }
    }

    /// Record one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.total += 1;
        if let Some(&i) = self.index.get(&key) {
            self.counters[i].count += 1;
            return;
        }
        if self.counters.len() < self.counters.capacity() {
            self.index.insert(key, self.counters.len());
            self.counters.push(SsCounter { key, count: 1, error: 0 });
            return;
        }
        // Evict the first minimum-count counter; the newcomer inherits its
        // count as the error bound.
        let mut min = 0;
        for (i, c) in self.counters.iter().enumerate().skip(1) {
            if c.count < self.counters[min].count {
                min = i;
            }
        }
        let evicted = self.counters[min];
        self.index.remove(&evicted.key);
        self.index.insert(key, min);
        self.counters[min] = SsCounter {
            key,
            count: evicted.count + 1,
            error: evicted.count,
        };
    }

    /// Upper-bound estimate of `key`'s frequency (0 if unmonitored).
    pub fn estimate(&self, key: u64) -> u64 {
        self.index.get(&key).map_or(0, |&i| self.counters[i].count)
    }

    /// Guaranteed lower bound on `key`'s frequency (0 if unmonitored).
    pub fn guaranteed(&self, key: u64) -> u64 {
        self.index.get(&key).map_or(0, |&i| {
            let c = self.counters[i];
            c.count - c.error
        })
    }

    /// Total observations since the last `clear`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of monitored keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the tracker has seen nothing since the last `clear`.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Monitored `(key, count, error)` triples in slot order
    /// (deterministic: insertion/eviction order, never hash order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counters.iter().map(|c| (c.key, c.count, c.error))
    }

    /// Reset for the next epoch, retaining allocated capacity.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.index.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_count_remove() {
        let mut t = FreqTable::new();
        assert!(t.is_empty());
        t.add(Value(3));
        t.add(Value(3));
        t.add(Value(5));
        assert_eq!(t.count(Value(3)), 2);
        assert_eq!(t.count(Value(5)), 1);
        assert_eq!(t.count(Value(9)), 0);
        assert_eq!(t.total(), 3);
        assert_eq!(t.distinct(), 2);
        t.remove(Value(3));
        assert_eq!(t.count(Value(3)), 1);
        t.remove(Value(3));
        assert_eq!(t.count(Value(3)), 0);
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.total(), 1);
    }

    #[test]
    #[should_panic(expected = "absent value")]
    fn remove_absent_panics() {
        FreqTable::new().remove(Value(1));
    }

    #[test]
    fn iter_reports_multiplicities() {
        let mut t = FreqTable::new();
        for v in [1u64, 1, 2, 2, 2] {
            t.add(Value(v));
        }
        let mut pairs: Vec<_> = t.iter().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(Value(1), 2), (Value(2), 3)]);
    }

    #[test]
    fn partner_frequency_sides_are_independent() {
        let mut pf = PartnerFrequency::new(2);
        pf.add_left(0, Value(7));
        pf.add_left(0, Value(7));
        pf.add_right(0, Value(7));
        pf.add_right(1, Value(7));
        assert_eq!(pf.left_count(0, Value(7)), 2);
        assert_eq!(pf.right_count(0, Value(7)), 1);
        assert_eq!(pf.left_count(1, Value(7)), 0);
        assert_eq!(pf.right_count(1, Value(7)), 1);
        pf.remove_left(0, Value(7));
        assert_eq!(pf.left_count(0, Value(7)), 1);
    }

    mod tumbling_freq {
        use super::*;
        use mstream_types::{Catalog, StreamSchema, VDur, WindowSpec};

        fn chain3() -> JoinQuery {
            let mut c = Catalog::new();
            c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
            c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
            c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
            JoinQuery::from_names(
                c,
                &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
                WindowSpec::secs(100),
            )
            .unwrap()
        }

        #[test]
        fn first_epoch_falls_back_to_current_counts() {
            let q = chain3();
            let mut tf = TumblingFreq::new(&q, EpochSpec::Time(VDur::from_secs(100)));
            tf.observe(StreamId(1), &[Value(7), Value(3)], VTime::ZERO);
            tf.observe(StreamId(1), &[Value(7), Value(4)], VTime::ZERO);
            assert!(!tf.has_last_epoch(StreamId(1)));
            // An R1 tuple consults R2's (right endpoint of pred 0) counts.
            assert_eq!(tf.partner_count(0, StreamId(0), Value(7)), 2);
            assert_eq!(tf.partner_count(0, StreamId(0), Value(9)), 0);
            // An R3 tuple consults R2's A2 (left endpoint of pred 1).
            assert_eq!(tf.partner_count(1, StreamId(2), Value(3)), 1);
        }

        #[test]
        fn time_roll_switches_to_last_epoch() {
            let q = chain3();
            let mut tf = TumblingFreq::new(&q, EpochSpec::Time(VDur::from_secs(10)));
            for _ in 0..3 {
                tf.observe(StreamId(1), &[Value(5), Value(0)], VTime::ZERO);
            }
            let rolled = tf.observe(StreamId(1), &[Value(6), Value(0)], VTime::from_secs(11));
            assert!(rolled);
            assert!(tf.has_last_epoch(StreamId(0)));
            // Last epoch holds the three 5s; the 6 is in the current epoch
            // and invisible to scoring.
            assert_eq!(tf.partner_count(0, StreamId(0), Value(5)), 3);
            assert_eq!(tf.partner_count(0, StreamId(0), Value(6)), 0);
        }

        #[test]
        fn tuple_epochs_roll_per_stream() {
            let q = chain3();
            let mut tf = TumblingFreq::new(&q, EpochSpec::PerStreamTuples(2));
            tf.observe(StreamId(1), &[Value(5), Value(0)], VTime::ZERO);
            assert!(!tf.has_last_epoch(StreamId(1)));
            let rolled = tf.observe(StreamId(1), &[Value(5), Value(0)], VTime::ZERO);
            assert!(rolled);
            assert!(tf.has_last_epoch(StreamId(1)));
            assert!(!tf.has_last_epoch(StreamId(2)));
            assert_eq!(tf.partner_count(0, StreamId(0), Value(5)), 2);
            // A third arrival starts the next epoch; scoring still answers
            // from the completed one.
            tf.observe(StreamId(1), &[Value(9), Value(0)], VTime::ZERO);
            assert_eq!(tf.partner_count(0, StreamId(0), Value(9)), 0);
        }

        #[test]
        #[should_panic(expected = "not an endpoint")]
        fn foreign_stream_panics() {
            let q = chain3();
            let tf = TumblingFreq::new(&q, EpochSpec::Time(VDur::from_secs(10)));
            // Predicate 0 joins R1 and R2; asking for R3 is a logic error.
            let _ = tf.partner_count(0, StreamId(2), Value(1));
        }
    }

    mod space_saving {
        use super::*;

        #[test]
        fn exact_within_capacity() {
            let mut ss = SpaceSaving::with_capacity(4);
            for _ in 0..5 {
                ss.observe(10);
            }
            for _ in 0..3 {
                ss.observe(20);
            }
            ss.observe(30);
            assert_eq!(ss.estimate(10), 5);
            assert_eq!(ss.guaranteed(10), 5);
            assert_eq!(ss.estimate(20), 3);
            assert_eq!(ss.estimate(30), 1);
            assert_eq!(ss.estimate(99), 0);
            assert_eq!(ss.total(), 9);
            assert_eq!(ss.len(), 3);
        }

        #[test]
        fn eviction_inherits_count_as_error() {
            let mut ss = SpaceSaving::with_capacity(2);
            ss.observe(1);
            ss.observe(1);
            ss.observe(2);
            // 3 evicts 2 (the min, count 1) and inherits count=2, error=1.
            ss.observe(3);
            assert_eq!(ss.estimate(2), 0);
            assert_eq!(ss.estimate(3), 2);
            assert_eq!(ss.guaranteed(3), 1);
            // 1's counter was never touched.
            assert_eq!(ss.guaranteed(1), 2);
        }

        #[test]
        fn heavy_hitter_survives_noise() {
            // One hot key at ~50% among a churn of cold singletons: the
            // guaranteed bound must still certify it as dominant.
            let mut ss = SpaceSaving::with_capacity(8);
            for i in 0..400u64 {
                ss.observe(7);
                ss.observe(1000 + i); // unique cold key each round
            }
            assert_eq!(ss.total(), 800);
            assert!(ss.estimate(7) >= 400);
            // 7 is never evicted (its count dominates every min scan), so
            // error stays 0 and the guarantee is exact.
            assert_eq!(ss.guaranteed(7), 400);
        }

        #[test]
        fn clear_retains_capacity_and_resets_counts() {
            let mut ss = SpaceSaving::with_capacity(4);
            for k in 0..10u64 {
                ss.observe(k);
            }
            ss.clear();
            assert!(ss.is_empty());
            assert_eq!(ss.total(), 0);
            ss.observe(3);
            assert_eq!(ss.estimate(3), 1);
        }

        #[test]
        fn deterministic_across_runs() {
            let run = || {
                let mut ss = SpaceSaving::with_capacity(3);
                for v in [5u64, 9, 5, 2, 7, 7, 2, 9, 9, 4, 5, 4] {
                    ss.observe(v);
                }
                ss.iter().collect::<Vec<_>>()
            };
            assert_eq!(run(), run());
        }

        proptest! {
            /// Space-saving invariants: counts upper-bound true frequency,
            /// guaranteed lower-bounds it, and total is exact.
            #[test]
            fn bounds_hold(keys in proptest::collection::vec(0u64..12, 1..300)) {
                let mut ss = SpaceSaving::with_capacity(4);
                let mut truth: std::collections::HashMap<u64, u64> = Default::default();
                for &k in &keys {
                    ss.observe(k);
                    *truth.entry(k).or_insert(0) += 1;
                }
                prop_assert_eq!(ss.total(), keys.len() as u64);
                for (&k, &t) in &truth {
                    // Monitored keys overestimate; the guarantee never
                    // exceeds the truth. Unmonitored keys report 0.
                    if ss.estimate(k) > 0 {
                        prop_assert!(ss.estimate(k) >= t);
                        prop_assert!(ss.guaranteed(k) <= t);
                    }
                }
            }
        }
    }

    proptest! {
        /// Adds then removes in arbitrary interleaving never desynchronize
        /// the total from the per-value counts.
        #[test]
        fn totals_stay_consistent(ops in proptest::collection::vec((0u64..8, prop::bool::ANY), 0..200)) {
            let mut t = FreqTable::new();
            let mut reference: std::collections::HashMap<u64, u64> = Default::default();
            for (v, is_add) in ops {
                if is_add {
                    t.add(Value(v));
                    *reference.entry(v).or_insert(0) += 1;
                } else if reference.get(&v).copied().unwrap_or(0) > 0 {
                    t.remove(Value(v));
                    *reference.get_mut(&v).unwrap() -= 1;
                }
            }
            let ref_total: u64 = reference.values().sum();
            prop_assert_eq!(t.total(), ref_total);
            for (&v, &c) in &reference {
                prop_assert_eq!(t.count(Value(v)), c);
            }
        }
    }
}
