//! Bit-identity of the flat SoA sketch kernels against the original
//! array-of-structs layout.
//!
//! The seed implementation stored one `Copy_ { Vec<FourWiseHash>,
//! Vec<AtomicSketch> }` per sketch copy and walked them pointer-chasing;
//! the rework stores coefficients copy-major per predicate and counters in
//! one stream-major `Vec<i64>`, evaluates ±1 signs into bit-packed words,
//! and freezes last-epoch cross-products. **None of that may change a
//! single output bit under a fixed seed.** This suite rebuilds the legacy
//! layout verbatim (from the still-public [`FourWiseHash`] /
//! [`AtomicSketch`] primitives) and drives both implementations through
//! identical workloads — golden vectors plus property-based random
//! schedules covering epoch rollovers in both time- and tuple-window mode.

use mstream_sketch::{
    median_of_means_slice, AtomicSketch, BankConfig, EpochSpec, FourWiseHash, SketchBank,
    TumblingSketches,
};
use mstream_types::{
    Catalog, JoinQuery, StreamId, StreamSchema, VDur, VTime, Value, WindowSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Legacy reference implementation (the seed's AoS layout, verbatim logic).
// ---------------------------------------------------------------------------

struct LegacyCopy {
    families: Vec<FourWiseHash>,
    sketches: Vec<AtomicSketch>,
}

struct LegacyBank {
    s1: usize,
    s2: usize,
    incidence: Vec<Vec<(usize, usize)>>,
    copies: Vec<LegacyCopy>,
}

impl LegacyBank {
    fn new(query: &JoinQuery, config: BankConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_streams = query.n_streams();
        let n_preds = query.predicates().len();
        let copies = (0..config.copies())
            .map(|_| LegacyCopy {
                families: (0..n_preds)
                    .map(|_| FourWiseHash::random(&mut rng))
                    .collect(),
                sketches: vec![AtomicSketch::new(); n_streams],
            })
            .collect();
        let incidence = (0..n_streams)
            .map(|s| query.incident(StreamId(s)).to_vec())
            .collect();
        LegacyBank {
            s1: config.s1,
            s2: config.s2,
            incidence,
            copies,
        }
    }

    fn update(&mut self, stream: StreamId, values: &[Value]) {
        let k = stream.index();
        let incidence = &self.incidence[k];
        for copy in &mut self.copies {
            let mut sign = 1i64;
            for &(pred, attr) in incidence {
                sign *= copy.families[pred].sign(values[attr].raw());
            }
            copy.sketches[k].add(sign);
        }
    }

    fn sign_in_copy(&self, c: usize, stream: StreamId, values: &[Value]) -> i64 {
        let mut sign = 1i64;
        for &(pred, attr) in &self.incidence[stream.index()] {
            sign *= self.copies[c].families[pred].sign(values[attr].raw());
        }
        sign
    }

    fn take_stream_snapshot(&mut self, stream: StreamId) -> Vec<i64> {
        let k = stream.index();
        self.copies
            .iter_mut()
            .map(|copy| {
                let v = copy.sketches[k].value();
                copy.sketches[k].reset();
                v
            })
            .collect()
    }

    fn reset(&mut self) {
        for copy in &mut self.copies {
            for s in &mut copy.sketches {
                s.reset();
            }
        }
    }

    fn estimate_join_count(&self) -> f64 {
        let per_copy: Vec<f64> = self
            .copies
            .iter()
            .map(|copy| copy.sketches.iter().map(|s| s.value() as f64).product())
            .collect();
        median_of_means_slice(self.s1, self.s2, &per_copy)
    }

    fn productivity(&self, stream: StreamId, values: &[Value]) -> f64 {
        let i = stream.index();
        let per_copy: Vec<f64> = self
            .copies
            .iter()
            .map(|copy| {
                let mut est = 1.0f64;
                for (k, s) in copy.sketches.iter().enumerate() {
                    if k != i {
                        est *= s.value() as f64;
                    }
                }
                let mut sign = 1i64;
                for &(pred, attr) in &self.incidence[i] {
                    sign *= copy.families[pred].sign(values[attr].raw());
                }
                est * sign as f64
            })
            .collect();
        median_of_means_slice(self.s1, self.s2, &per_copy)
    }
}

/// The seed's tumbling-epoch layer: `last[c][k]` copy-major snapshots and
/// the sign-first per-copy fold.
struct LegacyTumbling {
    bank: LegacyBank,
    last: Vec<Vec<i64>>,
    has_last: Vec<bool>,
    epoch: EpochSpec,
    next_roll: VTime,
    arrivals: Vec<u64>,
}

impl LegacyTumbling {
    fn new(query: &JoinQuery, config: BankConfig, epoch: EpochSpec) -> Self {
        let bank = LegacyBank::new(query, config);
        let n_streams = query.n_streams();
        let next_roll = match epoch {
            EpochSpec::Time(n) => VTime::ZERO + n,
            EpochSpec::PerStreamTuples(_) => VTime::ZERO,
        };
        LegacyTumbling {
            last: vec![vec![0; n_streams]; config.copies()],
            has_last: vec![false; n_streams],
            epoch,
            next_roll,
            arrivals: vec![0; n_streams],
            bank,
        }
    }

    fn observe(&mut self, stream: StreamId, values: &[Value], now: VTime) -> bool {
        let rolled = match self.epoch {
            EpochSpec::Time(n) => {
                let mut rolled = false;
                while now >= self.next_roll {
                    self.roll_all();
                    self.next_roll += n;
                    rolled = true;
                }
                rolled
            }
            EpochSpec::PerStreamTuples(_) => false,
        };
        self.bank.update(stream, values);
        let rolled_tuple = match self.epoch {
            EpochSpec::PerStreamTuples(n) => {
                let k = stream.index();
                self.arrivals[k] += 1;
                if self.arrivals[k] >= n {
                    self.arrivals[k] = 0;
                    let snapshot = self.bank.take_stream_snapshot(stream);
                    for (c, v) in snapshot.into_iter().enumerate() {
                        self.last[c][k] = v;
                    }
                    self.has_last[k] = true;
                    true
                } else {
                    false
                }
            }
            EpochSpec::Time(_) => false,
        };
        rolled || rolled_tuple
    }

    fn roll_all(&mut self) {
        for (c, copy) in self.bank.copies.iter().enumerate() {
            for (k, s) in copy.sketches.iter().enumerate() {
                self.last[c][k] = s.value();
            }
        }
        self.bank.reset();
        self.has_last.fill(true);
    }

    fn productivity(&mut self, stream: StreamId, values: &[Value]) -> f64 {
        let i = stream.index();
        let copies = self.bank.copies.len();
        let mut per_copy = vec![0.0f64; copies];
        for (c, slot) in per_copy.iter_mut().enumerate() {
            let mut est = self.bank.sign_in_copy(c, stream, values) as f64;
            for k in 0..self.has_last.len() {
                if k == i {
                    continue;
                }
                let x = if self.has_last[k] {
                    self.last[c][k]
                } else {
                    self.bank.copies[c].sketches[k].value()
                };
                est *= x as f64;
            }
            *slot = est;
        }
        median_of_means_slice(self.bank.s1, self.bank.s2, &per_copy)
    }
}

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

fn chain_query() -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(500),
    )
    .unwrap()
}

fn v(a: u64, b: u64) -> Vec<Value> {
    vec![Value(a), Value(b)]
}

/// Deterministic pseudo-workload: `(stream, values, seconds)` triples.
fn workload(len: u64, spread: u64) -> Vec<(StreamId, Vec<Value>, VTime)> {
    (0..len)
        .map(|i| {
            // Mildly skewed values so the sign cache sees both hits and
            // misses; time advances non-monotonically within a second but
            // monotonically overall.
            let s = StreamId((i % 3) as usize);
            let a = (i * i + 7 * i) % spread;
            let b = (i / 2) % spread;
            (s, v(a, b), VTime::from_secs(i / 4))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Golden-vector equivalence.
// ---------------------------------------------------------------------------

#[test]
fn bank_estimates_bit_identical_on_golden_workload() {
    let q = chain_query();
    for (s1, s2, seed) in [(1, 1, 0u64), (7, 1, 1), (16, 3, 42), (130, 2, 0xDEAD)] {
        let cfg = BankConfig { s1, s2, seed };
        let mut new = SketchBank::new(&q, cfg);
        let mut old = LegacyBank::new(&q, cfg);
        for (s, vals, _) in workload(200, 23) {
            new.update(s, &vals);
            old.update(s, &vals);
        }
        assert_eq!(
            new.estimate_join_count().to_bits(),
            old.estimate_join_count().to_bits(),
            "join count diverged at s1={s1} s2={s2} seed={seed}"
        );
        for probe in 0..30u64 {
            for stream in 0..3 {
                let vals = v(probe % 23, (probe * 3) % 23);
                let sid = StreamId(stream);
                assert_eq!(
                    new.productivity(sid, &vals).to_bits(),
                    old.productivity(sid, &vals).to_bits(),
                    "productivity diverged: s1={s1} s2={s2} seed={seed} \
                     stream={stream} probe={probe}"
                );
            }
        }
    }
}

#[test]
fn per_copy_state_matches_legacy_exactly() {
    // Stronger than output equality: every counter and every sign agrees.
    let q = chain_query();
    let cfg = BankConfig {
        s1: 65, // odd size straddling a packed-word boundary
        s2: 1,
        seed: 9,
    };
    let mut new = SketchBank::new(&q, cfg);
    let mut old = LegacyBank::new(&q, cfg);
    for (s, vals, _) in workload(120, 11) {
        new.update(s, &vals);
        old.update(s, &vals);
    }
    for c in 0..cfg.copies() {
        for k in 0..3 {
            assert_eq!(
                new.sketch_value(c, StreamId(k)),
                old.copies[c].sketches[k].value(),
                "counter diverged at copy {c} stream {k}"
            );
        }
        for probe in 0..10u64 {
            let vals = v(probe, probe % 3);
            for k in 0..3 {
                assert_eq!(
                    new.sign_in_copy(c, StreamId(k), &vals),
                    old.sign_in_copy(c, StreamId(k), &vals),
                    "sign diverged at copy {c} stream {k} probe {probe}"
                );
            }
        }
    }
}

#[test]
fn tumbling_time_epochs_bit_identical_across_rollovers() {
    let q = chain_query();
    let cfg = BankConfig {
        s1: 40,
        s2: 2,
        seed: 77,
    };
    let epoch = EpochSpec::Time(VDur::from_secs(10));
    let mut new = TumblingSketches::new(&q, cfg, epoch);
    let mut old = LegacyTumbling::new(&q, cfg, epoch);
    for (i, (s, vals, t)) in workload(300, 17).into_iter().enumerate() {
        let rolled_new = new.observe(s, &vals, t);
        let rolled_old = old.observe(s, &vals, t);
        assert_eq!(rolled_new, rolled_old, "rollover cue diverged at {i}");
        // Probe from every stream each step so first-epoch fallback, mixed
        // and frozen paths all get exercised, before AND after rollovers.
        if i % 7 == 0 {
            for stream in 0..3 {
                let probe = v((i as u64) % 17, (i as u64 / 3) % 17);
                let sid = StreamId(stream);
                assert_eq!(
                    new.productivity(sid, &probe).to_bits(),
                    old.productivity(sid, &probe).to_bits(),
                    "tumbling productivity diverged at step {i} stream {stream}"
                );
            }
            assert_eq!(
                new.estimate_join_count().to_bits(),
                old.bank.estimate_join_count().to_bits(),
                "tumbling join count diverged at step {i}"
            );
        }
    }
}

#[test]
fn tumbling_tuple_epochs_bit_identical_with_snapshots() {
    // PerStreamTuples rolls through `take_stream_snapshot`: streams roll
    // independently, so the mixed last/current fallback path stays live for
    // straggler streams long after others have frozen.
    let q = chain_query();
    let cfg = BankConfig {
        s1: 33,
        s2: 1,
        seed: 123,
    };
    let epoch = EpochSpec::PerStreamTuples(8);
    let mut new = TumblingSketches::new(&q, cfg, epoch);
    let mut old = LegacyTumbling::new(&q, cfg, epoch);
    for (i, (s, vals, t)) in workload(250, 9).into_iter().enumerate() {
        // Skew arrivals: stream 2 only sees every third tuple, so it lags
        // a full epoch behind the others.
        if s == StreamId(2) && i % 3 != 0 {
            continue;
        }
        assert_eq!(new.observe(s, &vals, t), old.observe(s, &vals, t));
        if i % 5 == 0 {
            for stream in 0..3 {
                let probe = v((i as u64) % 9, (i as u64) % 4);
                let sid = StreamId(stream);
                assert_eq!(
                    new.productivity(sid, &probe).to_bits(),
                    old.productivity(sid, &probe).to_bits(),
                    "tuple-mode productivity diverged at step {i} stream {stream}"
                );
            }
        }
    }
}

#[test]
fn current_productivity_matches_bank_path() {
    let q = chain_query();
    let cfg = BankConfig {
        s1: 50,
        s2: 1,
        seed: 4,
    };
    let mut new = TumblingSketches::new(&q, cfg, EpochSpec::Time(VDur::from_secs(50)));
    let mut old = LegacyBank::new(&q, cfg);
    for (s, vals, t) in workload(100, 13) {
        new.observe(s, &vals, t);
        old.update(s, &vals);
    }
    for probe in 0..10u64 {
        let vals = v(probe % 13, probe % 5);
        assert_eq!(
            new.current_productivity(StreamId(0), &vals).to_bits(),
            old.productivity(StreamId(0), &vals).to_bits()
        );
    }
}

// ---------------------------------------------------------------------------
// Property-based equivalence over random schedules.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workloads, sizings and seeds: the SoA bank and the legacy
    /// bank agree bit for bit on every estimate.
    #[test]
    fn bank_equivalence_holds_for_random_workloads(
        seed in any::<u64>(),
        s1 in 1usize..24,
        s2 in 1usize..4,
        steps in prop::collection::vec(
            (0usize..3, 0u64..12, 0u64..12), 1..120),
        probes in prop::collection::vec(
            (0usize..3, 0u64..12, 0u64..12), 1..12),
    ) {
        let q = chain_query();
        let cfg = BankConfig { s1, s2, seed };
        let mut new = SketchBank::new(&q, cfg);
        let mut old = LegacyBank::new(&q, cfg);
        for (s, a, b) in steps {
            new.update(StreamId(s), &v(a, b));
            old.update(StreamId(s), &v(a, b));
        }
        prop_assert_eq!(
            new.estimate_join_count().to_bits(),
            old.estimate_join_count().to_bits()
        );
        for (s, a, b) in probes {
            prop_assert_eq!(
                new.productivity(StreamId(s), &v(a, b)).to_bits(),
                old.productivity(StreamId(s), &v(a, b)).to_bits()
            );
        }
    }

    /// Random schedules with epoch rollovers in both window modes: the
    /// tumbling layers agree bit for bit, including the frozen-cross-product
    /// fast path and the first-epoch fallback.
    #[test]
    fn tumbling_equivalence_holds_across_rollovers(
        seed in any::<u64>(),
        s1 in 1usize..16,
        time_mode in any::<bool>(),
        period in 1u64..12,
        steps in prop::collection::vec(
            (0usize..3, 0u64..8, 0u64..8, 0u64..40), 1..100),
        probes in prop::collection::vec(
            (0usize..3, 0u64..8, 0u64..8), 1..8),
    ) {
        let q = chain_query();
        let cfg = BankConfig { s1, s2: 1, seed };
        let epoch = if time_mode {
            EpochSpec::Time(VDur::from_secs(period))
        } else {
            EpochSpec::PerStreamTuples(period)
        };
        let mut new = TumblingSketches::new(&q, cfg, epoch);
        let mut old = LegacyTumbling::new(&q, cfg, epoch);
        let mut now = 0u64;
        for (s, a, b, dt) in steps {
            // Time must be monotone; accumulate the random increments.
            now += dt / 8;
            let t = VTime::from_secs(now);
            prop_assert_eq!(
                new.observe(StreamId(s), &v(a, b), t),
                old.observe(StreamId(s), &v(a, b), t)
            );
        }
        for (s, a, b) in &probes {
            prop_assert_eq!(
                new.productivity(StreamId(*s), &v(*a, *b)).to_bits(),
                old.productivity(StreamId(*s), &v(*a, *b)).to_bits()
            );
        }
        // Interleave another burst after probing (cross rows must
        // invalidate correctly), then probe again.
        for i in 0..10u64 {
            now += 1;
            let t = VTime::from_secs(now);
            prop_assert_eq!(
                new.observe(StreamId((i % 3) as usize), &v(i % 5, i % 4), t),
                old.observe(StreamId((i % 3) as usize), &v(i % 5, i % 4), t)
            );
        }
        for (s, a, b) in &probes {
            prop_assert_eq!(
                new.productivity(StreamId(*s), &v(*a, *b)).to_bits(),
                old.productivity(StreamId(*s), &v(*a, *b)).to_bits()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Vector-vs-scalar kernel bit-identity (PR 9).
//
// Every kernel in `mstream_sketch::kernel` ships a scalar reference path
// and a portable lane path (plus AVX2 specializations for the two
// sign-application kernels); the dispatching entry points pick one per
// process. These properties pin all implementations bit-identical across
// odd lengths, ragged tails (len % LANES != 0, len % 64 != 0), and
// extreme inputs (i64::MIN/MAX-adjacent counters, ±0.0 values).
// ---------------------------------------------------------------------------

mod kernels {
    use mstream_sketch::kernel::{self, lanes, scalar, LANES};
    use mstream_sketch::SignFamilies;
    use proptest::prelude::*;
    use rand::SeedableRng;

    /// Deterministic counter stream biased toward the i64 extremes (the
    /// `as f64` casts are lossy there — both paths must be lossy the same
    /// way) with small values in between.
    fn extreme_i64(seed: u64, i: usize) -> i64 {
        let r = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32);
        match r % 7 {
            0 => i64::MAX - (r % 5) as i64,
            1 => i64::MIN + (r % 5) as i64,
            2 => 0,
            3 => -(1i64 << (r % 62)),
            _ => (r as i64) % 1000 - 500,
        }
    }

    /// Deterministic value stream biased toward signed zeros and huge
    /// magnitudes.
    fn extreme_f64(seed: u64, i: usize) -> f64 {
        let r = seed.rotate_left((3 * i) as u32).wrapping_add(i as u64);
        match r % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => 1e300,
            3 => -1e-300,
            4 => f64::from_bits(r >> 2), // arbitrary finite-ish bit pattern
            _ => (r as i64 % 10_000) as f64 / 3.0,
        }
    }

    fn sign_words(seed: u64, len: usize) -> Vec<u64> {
        (0..len.div_ceil(64))
            .map(|i| seed.wrapping_mul(i as u64 + 1).rotate_left(17))
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Sampled lengths hit empty, sub-lane, ragged-tail
    /// (`len % LANES != 0`), exact-lane, word-boundary and multi-word
    /// shapes; this pins the boundary cases the uniform range might miss.
    const PINNED_LENS: [usize; 8] = [0, 1, 3, LANES, 63, 64, 65, 130];

    fn pick_len(sampled: usize, case_tag: u64) -> usize {
        if case_tag % 3 == 0 {
            PINNED_LENS[(case_tag / 3) as usize % PINNED_LENS.len()]
        } else {
            sampled
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fold_packed_signs_modes_agree(
            sampled_len in 0usize..200,
            seed in any::<u64>(),
        ) {
            let len = pick_len(sampled_len, seed);
            let words = sign_words(seed, len);
            // Halved so the ±1 fold cannot overflow debug arithmetic; the
            // magnitude extremes still exercise the full word layout.
            let mut a: Vec<i64> = (0..len).map(|i| extreme_i64(seed, i) / 2).collect();
            let mut b = a.clone();
            let mut c = a.clone();
            scalar::fold_packed_signs(&words, &mut a);
            lanes::fold_packed_signs(&words, &mut b);
            kernel::fold_packed_signs(&words, &mut c);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &c);
        }

        #[test]
        fn column_products_modes_agree(
            sampled_copies in 1usize..200,
            streams in 1usize..5,
            exclude in 0usize..6,
            seed in any::<u64>(),
        ) {
            let copies = pick_len(sampled_copies, seed).max(1);
            let buf: Vec<i64> = (0..copies * streams).map(|i| extreme_i64(seed, i)).collect();
            let mut a = vec![0.0f64; copies];
            let mut b = vec![0.0f64; copies];
            let mut c = vec![0.0f64; copies];
            scalar::column_products(&buf, copies, exclude, &mut a);
            lanes::column_products(&buf, copies, exclude, &mut b);
            kernel::column_products(&buf, copies, exclude, &mut c);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(bits(&a), bits(&c));
        }

        #[test]
        fn multiply_row_modes_agree(
            sampled_len in 0usize..200,
            seed in any::<u64>(),
        ) {
            let len = pick_len(sampled_len, seed);
            let row: Vec<i64> = (0..len).map(|i| extreme_i64(seed, i + 7)).collect();
            let acc0: Vec<f64> = (0..len).map(|i| extreme_f64(seed, i)).collect();
            let mut a = acc0.clone();
            let mut b = acc0.clone();
            let mut c = acc0.clone();
            scalar::multiply_row(&mut a, &row);
            lanes::multiply_row(&mut b, &row);
            kernel::multiply_row(&mut c, &row);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(bits(&a), bits(&c));
        }

        #[test]
        fn apply_packed_signs_modes_agree(
            sampled_len in 0usize..200,
            seed in any::<u64>(),
        ) {
            let len = pick_len(sampled_len, seed);
            let vals: Vec<f64> = (0..len).map(|i| extreme_f64(seed, i)).collect();
            let words = sign_words(seed ^ 0xABCD, len);
            let mut a = vals.clone();
            let mut b = vals.clone();
            let mut c = vals.clone();
            scalar::apply_packed_signs(&words, &mut a);
            lanes::apply_packed_signs(&words, &mut b);
            kernel::apply_packed_signs(&words, &mut c);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(bits(&a), bits(&c));
        }

        #[test]
        fn signed_copy_modes_agree(
            sampled_len in 0usize..200,
            seed in any::<u64>(),
        ) {
            let len = pick_len(sampled_len, seed);
            let src: Vec<f64> = (0..len).map(|i| extreme_f64(seed, 2 * i)).collect();
            let words = sign_words(seed ^ 0x5A5A, len);
            let mut a = vec![0.0f64; len];
            let mut b = vec![0.0f64; len];
            let mut c = vec![0.0f64; len];
            scalar::signed_copy(&words, &src, &mut a);
            lanes::signed_copy(&words, &src, &mut b);
            kernel::signed_copy(&words, &src, &mut c);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(bits(&a), bits(&c));
        }

        #[test]
        fn product2_signed_modes_agree(
            sampled_len in 0usize..200,
            seed in any::<u64>(),
        ) {
            let len = pick_len(sampled_len, seed);
            let a_row: Vec<i64> = (0..len).map(|i| extreme_i64(seed, i)).collect();
            let b_row: Vec<i64> = (0..len).map(|i| extreme_i64(!seed, i)).collect();
            let words = sign_words(seed ^ 0xF00D, len);
            let mut a = vec![0.0f64; len];
            let mut b = vec![0.0f64; len];
            let mut c = vec![0.0f64; len];
            scalar::product2_signed(&a_row, &b_row, &words, &mut a);
            lanes::product2_signed(&a_row, &b_row, &words, &mut b);
            kernel::product2_signed(&a_row, &b_row, &words, &mut c);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(bits(&a), bits(&c));
        }

        #[test]
        fn group_sums_modes_agree(
            s1 in 0usize..40,
            s2 in 0usize..12,
            seed in any::<u64>(),
        ) {
            // Group counts straddle the lane width (s2 % LANES ∈ all
            // residues over the sampled range) and the values are
            // catastrophic-cancellation bait, so any in-group reorder
            // would change bits.
            let per_copy: Vec<f64> = (0..s1 * s2).map(|i| extreme_f64(seed, i)).collect();
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            scalar::group_sums(&per_copy, s1, s2, &mut a);
            lanes::group_sums(&per_copy, s1, s2, &mut b);
            kernel::group_sums(&per_copy, s1, s2, &mut c);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(bits(&a), bits(&c));
        }

        #[test]
        fn eval_packed_modes_agree(
            sampled_copies in 1usize..200,
            seed in any::<u64>(),
            x in any::<u64>(),
        ) {
            let copies = pick_len(sampled_copies, seed).max(1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let fam = SignFamilies::draw(&mut rng, 3, copies);
            for pred in 0..3 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let mut c = Vec::new();
                fam.eval_packed_scalar(pred, x, &mut a);
                fam.eval_packed_lanes(pred, x, &mut b);
                fam.eval_packed_into(pred, x, &mut c);
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(&a, &c);
            }
        }
    }

    /// On AVX2 hosts the `std::arch` specializations must also be
    /// bit-identical (elsewhere this test is vacuous — dispatch never
    /// selects them there either).
    #[test]
    fn avx2_sign_kernels_match_scalar() {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            for len in PINNED_LENS {
                let src: Vec<f64> = (0..len).map(|i| extreme_f64(0xC0FFEE, i)).collect();
                let words = sign_words(0xBEEF, len);
                let mut want = src.clone();
                scalar::apply_packed_signs(&words, &mut want);
                let mut got = src.clone();
                kernel::avx2::apply_packed_signs(&words, &mut got);
                assert_eq!(bits(&want), bits(&got), "apply len={len}");
                let mut want_copy = vec![0.0f64; len];
                scalar::signed_copy(&words, &src, &mut want_copy);
                let mut got_copy = vec![0.0f64; len];
                kernel::avx2::signed_copy(&words, &src, &mut got_copy);
                assert_eq!(bits(&want_copy), bits(&got_copy), "copy len={len}");
            }
        }
    }
}
