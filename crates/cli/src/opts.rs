//! Flag parsing and the CLI error type.

use std::collections::HashMap;
use std::fmt;

/// A CLI failure: bad usage, bad input, or I/O.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed.
    Usage(String),
    /// The inputs (query, trace, configuration) were invalid.
    Input(String),
    /// An I/O failure.
    Io(std::io::Error),
}

impl CliError {
    /// A usage error.
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// An input error.
    pub fn input(msg: impl Into<String>) -> Self {
        CliError::Input(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m} (try `mstream help`)"),
            CliError::Input(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed `--flag value` pairs and bare `--switches`.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// The flags that take a value; everything else `--x` is a switch.
const VALUE_FLAGS: &[&str] = &[
    "--query",
    "--query-file",
    "--queries",
    "--trace",
    "--policy",
    "--capacity",
    "--rate",
    "--service",
    "--queue",
    "--seed",
    "--shards",
    "--disorder-bound",
    "--workload",
    "--out",
    "--tuples",
    "--z",
];

impl Flags {
    /// Parses a flag list.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if !arg.starts_with("--") {
                return Err(CliError::usage(format!("unexpected argument `{arg}`")));
            }
            if VALUE_FLAGS.contains(&arg.as_str()) {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("{arg} needs a value")))?;
                if flags.values.insert(arg.clone(), value.clone()).is_some() {
                    return Err(CliError::usage(format!("{arg} given twice")));
                }
            } else {
                flags.switches.push(arg.clone());
            }
        }
        Ok(flags)
    }

    /// The value of `--flag`, if given.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// The value of `--flag`, or an input error naming it.
    pub fn require(&self, flag: &str) -> Result<&str, CliError> {
        self.get(flag)
            .ok_or_else(|| CliError::usage(format!("{flag} is required")))
    }

    /// A parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("{flag}: cannot parse `{v}`"))),
        }
    }

    /// A parsed numeric flag with no default.
    pub fn num_opt<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, CliError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("{flag}: cannot parse `{v}`"))),
        }
    }

    /// Whether a bare switch (e.g. `--json`) was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Flags, CliError> {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_values_and_switches() {
        let f = parse(&["--policy", "Bjoin", "--json", "--capacity", "64"]).unwrap();
        assert_eq!(f.get("--policy"), Some("Bjoin"));
        assert!(f.has("--json"));
        assert!(!f.has("--quiet"));
        assert_eq!(f.num::<usize>("--capacity", 0).unwrap(), 64);
        assert_eq!(f.num::<f64>("--rate", 10.0).unwrap(), 10.0);
        assert_eq!(f.num_opt::<f64>("--service").unwrap(), None);
    }

    #[test]
    fn rejects_missing_value() {
        let err = parse(&["--policy"]).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_duplicates_and_positional() {
        assert!(parse(&["--seed", "1", "--seed", "2"]).is_err());
        assert!(parse(&["oops"]).is_err());
    }

    #[test]
    fn require_names_the_flag() {
        let f = parse(&[]).unwrap();
        let err = f.require("--trace").unwrap_err();
        assert!(err.to_string().contains("--trace"));
    }

    #[test]
    fn bad_numbers_name_the_flag() {
        let f = parse(&["--capacity", "many"]).unwrap();
        let err = f.num::<usize>("--capacity", 1).unwrap_err();
        assert!(err.to_string().contains("--capacity"));
    }
}
