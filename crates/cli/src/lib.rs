//! Implementation of the `mstream` command-line tool.
//!
//! Subcommands:
//!
//! * `mstream run`      — execute a CQL-style query over a CSV trace with a
//!   chosen shedding policy and memory budget, print a run report.
//! * `mstream generate` — emit a synthetic workload (the paper's region
//!   generator or the census-like generator) as a CSV trace.
//! * `mstream explain`  — parse a query and print its streams, windows,
//!   predicates and per-origin probe plans.
//! * `mstream policies` — list the built-in shedding policies.
//!
//! The logic lives in this library crate so it is unit-testable; `main.rs`
//! is a thin dispatcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod opts;

pub use commands::{explain, generate, policies, run};
pub use opts::{CliError, Flags};

/// Entry point shared by `main.rs` and tests: dispatch on the subcommand.
pub fn dispatch(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (sub, rest) = args
        .split_first()
        .ok_or_else(|| CliError::usage("missing subcommand"))?;
    let flags = Flags::parse(rest)?;
    match sub.as_str() {
        "run" => run(&flags, out),
        "generate" => generate(&flags, out),
        "explain" => explain(&flags, out),
        "policies" => policies(out),
        "help" | "--help" | "-h" => {
            write!(out, "{}", USAGE).map_err(CliError::from)?;
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown subcommand `{other}`"))),
    }
}

/// The top-level usage text.
pub const USAGE: &str = "\
mstream — semantic load shedding for multi-way window joins (ICDE'07 reproduction)

USAGE:
    mstream run      --query <SQL> --trace <file.csv> [options]
    mstream generate --workload regions|census --out <file.csv> [options]
    mstream explain  --query <SQL>
    mstream policies

RUN OPTIONS:
    --query <SQL>        e.g. \"SELECT * FROM L(k) [ROWS 100], R(k) WHERE L.k = R.k\"
    --query-file <path>  read the query from a file instead
    --queries <path>     JSON array of query strings: run them all as standing
                         queries on one shared data plane; the report gains
                         per-query produced/shed/recall rows; excludes --query,
                         --service and --disorder-bound
    --trace <path>       CSV trace: `stream,value,value,...` per line ('-' = stdin)
    --policy <name>      MSketch | MSketch-RS | Age | Life | Bjoin | Random | FIFO
                         (default MSketch)
    --capacity <n>       tuples of memory per window (default 1024)
    --rate <k>           global arrival rate, tuples/second (default 10)
    --service <l>        join service rate; omit for an unbounded operator
    --queue <n>          input-queue capacity under overload (default 100)
    --seed <n>           engine seed (default 42)
    --shards <n>         hash-partition across n worker threads when the query's
                         predicates allow; non-partitionable queries run broadcast
                         (replicated windows, dominant stream partitioned);
                         --capacity stays the total budget; excludes --service
    --no-broadcast       degrade non-partitionable queries to 1 shard (with a
                         reason) instead of running them broadcast
    --disorder-bound <s> event-time mode: buffer out-of-order arrivals up to s
                         seconds of lateness, release them in timestamp order
                         as the watermark advances, and drop (with accounting)
                         anything later; omit to trust timestamps as given
    --json               print the report as JSON instead of text
    --stage-json         append a JSON object of per-stage wall-clock
                         nanoseconds (sketch_observe_ns, priority_rebuild_ns,
                         score_ns) and estimation-cache counters (packed-sign
                         and productivity score memos); sharded runs include a
                         per_shard breakdown

GENERATE OPTIONS:
    --workload <w>       regions (Table-1 synthetic) | census
    --out <path>         output CSV path ('-' = stdout)
    --tuples <n>         tuples per relation/month (default 1000)
    --z <lo,hi>          regions: z-intra range (default 1.6,2.0)
    --drift              regions: feed in region phases with drift markers
    --seed <n>           generator seed (default 42)
";
