//! `mstream` — thin dispatcher over [`mstream_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if args.is_empty() {
        eprint!("{}", mstream_cli::USAGE);
        std::process::exit(2);
    }
    if let Err(err) = mstream_cli::dispatch(&args, &mut stdout) {
        eprintln!("mstream: {err}");
        let code = match err {
            mstream_cli::CliError::Usage(_) => 2,
            _ => 1,
        };
        std::process::exit(code);
    }
}
