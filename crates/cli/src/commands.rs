//! The `run`, `generate`, `explain` and `policies` subcommands.

use crate::opts::{CliError, Flags};
use mstream_core::mstream_join::ProbePlan;
use mstream_core::mstream_workload::{read_trace, write_trace};
use mstream_core::prelude::*;
use std::io::Write;
use std::time::Instant;

/// The `--stage-json` view of one engine's counters: per-stage wall-clock
/// nanoseconds plus the estimation-cache statistics (packed-sign and
/// productivity-score memos, DESIGN.md §16).
fn stage_view(m: &EngineMetrics) -> serde_json::Value {
    serde_json::json!({
        "sketch_observe_ns": m.sketch_observe_ns,
        "priority_rebuild_ns": m.priority_rebuild_ns,
        "score_ns": m.score_ns,
        "sign_cache_hits": m.sign_cache_hits,
        "sign_cache_misses": m.sign_cache_misses,
        "score_cache_hits": m.score_cache_hits,
        "score_cache_misses": m.score_cache_misses,
    })
}

/// `mstream run`: execute a query over a trace with shedding.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    if flags.get("--queries").is_some() {
        return run_multi(flags, out);
    }
    let query = load_query(flags)?;
    let trace = load_trace(flags.require("--trace")?)?;
    validate_trace(&query, &trace)?;
    let policy_name = flags.get("--policy").unwrap_or("MSketch");
    let policy = parse_policy(policy_name)
        .ok_or_else(|| CliError::input(format!("unknown policy `{policy_name}`")))?;
    let capacity: usize = flags.num("--capacity", 1024)?;
    let rate: f64 = flags.num("--rate", 10.0)?;
    if rate <= 0.0 || rate.is_nan() {
        return Err(CliError::usage("--rate must be positive"));
    }
    let service: Option<f64> = flags.num_opt("--service")?;
    if let Some(l) = service {
        if l <= 0.0 || l.is_nan() {
            return Err(CliError::usage("--service must be positive"));
        }
    }
    let disorder = parse_disorder(flags)?;
    if disorder.is_some() && service.is_some() {
        return Err(CliError::usage(
            "--disorder-bound reorders at the operator's ingest and cannot be combined with the \
             --service queue model",
        ));
    }
    if let Some(shards) = flags.num_opt::<usize>("--shards")? {
        if shards == 0 {
            return Err(CliError::usage("--shards must be >= 1"));
        }
        if service.is_some() {
            return Err(CliError::usage(
                "--service models a single-threaded operator and cannot be combined with --shards",
            ));
        }
        return run_sharded(flags, out, query, policy, policy_name, &trace, capacity, rate, shards);
    }
    let opts = RunOptions {
        sim: SimConfig {
            arrival_rate: rate,
            service_rate: service,
            queue_capacity: flags.num("--queue", 100)?,
        },
        ..Default::default()
    };
    let mut builder = EngineBuilder::new(query)
        .boxed_policy(policy)
        .capacity_per_window(capacity)
        .seed(flags.num("--seed", 42)?);
    if let Some(bound) = disorder {
        builder = builder.disorder_bound(bound);
    }
    let mut engine = builder
        .build()
        .map_err(|e| CliError::input(e.to_string()))?;
    let report = run_trace(&mut engine, &trace, &opts);
    if flags.has("--json") {
        let body = serde_json::json!({
            "policy": policy_name,
            "capacity_per_window": capacity,
            "arrivals": trace.len(),
            "output_tuples": report.total_output(),
            "processed": report.metrics.processed,
            "shed_window": report.metrics.shed_window,
            "shed_queue": report.metrics.shed_queue,
            "late_dropped": report.metrics.late_dropped,
            "disorder_bound_secs": disorder.map(|d| d.as_secs_f64()),
            "expired": report.metrics.expired,
            "epoch_rollovers": report.metrics.epoch_rollovers,
            "end_time_secs": report.end_time.as_secs_f64(),
            "wall_seconds": report.wall_time.as_secs_f64(),
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&body).expect("serializable"))?;
    } else {
        writeln!(out, "policy:          {policy_name}")?;
        writeln!(out, "memory/window:   {capacity} tuples")?;
        writeln!(out, "arrivals:        {}", trace.len())?;
        writeln!(out, "processed:       {}", report.metrics.processed)?;
        writeln!(out, "output tuples:   {}", report.total_output())?;
        writeln!(
            out,
            "shed:            {} window, {} queue",
            report.metrics.shed_window, report.metrics.shed_queue
        )?;
        if let Some(bound) = disorder {
            writeln!(
                out,
                "event time:      bound {:.1}s, {} late-dropped",
                bound.as_secs_f64(),
                report.metrics.late_dropped
            )?;
        }
        writeln!(out, "expired:         {}", report.metrics.expired)?;
        writeln!(
            out,
            "virtual span:    {:.1}s   wall: {:.3}s",
            report.end_time.as_secs_f64(),
            report.wall_time.as_secs_f64()
        )?;
    }
    if flags.has("--stage-json") {
        let body = serde_json::json!({ "stages": stage_view(&report.metrics) });
        writeln!(out, "{}", serde_json::to_string_pretty(&body).expect("serializable"))?;
    }
    Ok(())
}

/// `mstream run --shards N`: hash-partitioned parallel execution. The
/// capacity flag is still the *total* memory budget; each worker gets
/// `1/S` of it. Non-partitionable queries run in broadcast mode at the
/// requested width (replicated windows, more total memory); with
/// `--no-broadcast` they degrade to one shard and the report says why.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    flags: &Flags,
    out: &mut dyn Write,
    query: JoinQuery,
    policy: Box<dyn ShedPolicy>,
    policy_name: &str,
    trace: &Trace,
    capacity: usize,
    rate: f64,
    shards: usize,
) -> Result<(), CliError> {
    let disorder = parse_disorder(flags)?;
    let mut builder = EngineBuilder::new(query)
        .boxed_policy(policy)
        .capacity_per_window(capacity)
        .seed(flags.num("--seed", 42)?)
        .shards(shards)
        .broadcast(!flags.has("--no-broadcast"));
    if let Some(bound) = disorder {
        builder = builder.disorder_bound(bound);
    }
    let engine = builder
        .build_sharded()
        .map_err(|e| CliError::input(e.to_string()))?;
    let report = engine
        .run_trace(trace, rate)
        .map_err(|e| CliError::input(e.to_string()))?;
    if flags.has("--json") {
        let per_shard: Vec<serde_json::Value> = report
            .per_shard
            .iter()
            .map(|m| {
                serde_json::json!({
                    "processed": m.processed,
                    "output_tuples": m.total_output,
                    "shed_window": m.shed_window,
                })
            })
            .collect();
        let body = serde_json::json!({
            "policy": policy_name,
            "capacity_total": capacity,
            "shards_requested": shards,
            "shards": report.combined.shards,
            "degraded": report.combined.degraded,
            "broadcast": report.broadcast,
            "hot_promoted": report.hot_promoted,
            "routed": report.routed,
            "resident": report.resident,
            "arrivals": trace.len(),
            "output_tuples": report.combined.total_output(),
            "processed": report.combined.metrics.processed,
            "replicated": report.combined.metrics.replicated,
            "shed_window": report.combined.metrics.shed_window,
            "shed_channel": report.shed_channel,
            "late_dropped": report.combined.metrics.late_dropped,
            "disorder_bound_secs": disorder.map(|d| d.as_secs_f64()),
            "expired": report.combined.metrics.expired,
            "per_shard": per_shard,
            "end_time_secs": report.combined.end_time.as_secs_f64(),
            "wall_seconds": report.combined.wall_time.as_secs_f64(),
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&body).expect("serializable"))?;
    } else {
        writeln!(out, "policy:          {policy_name}")?;
        writeln!(out, "memory total:    {capacity} tuples across {shards} requested shards")?;
        match &report.combined.degraded {
            Some(reason) => writeln!(out, "shards:          1 (degraded: {reason})")?,
            None if report.broadcast => writeln!(
                out,
                "shards:          {} (broadcast: replicated windows, dominant stream partitioned)",
                report.combined.shards
            )?,
            None => writeln!(out, "shards:          {}", report.combined.shards)?,
        }
        writeln!(out, "arrivals:        {}", trace.len())?;
        writeln!(out, "processed:       {}", report.combined.metrics.processed)?;
        writeln!(out, "output tuples:   {}", report.combined.total_output())?;
        writeln!(
            out,
            "shed:            {} window, {} channel",
            report.combined.metrics.shed_window, report.shed_channel
        )?;
        if let Some(bound) = disorder {
            writeln!(
                out,
                "event time:      bound {:.1}s, {} late-dropped",
                bound.as_secs_f64(),
                report.combined.metrics.late_dropped
            )?;
        }
        writeln!(out, "expired:         {}", report.combined.metrics.expired)?;
        for (i, m) in report.per_shard.iter().enumerate() {
            writeln!(
                out,
                "  shard {i}:       processed {:>7}  output {:>9}  shed {:>6}",
                m.processed, m.total_output, m.shed_window
            )?;
        }
        writeln!(
            out,
            "virtual span:    {:.1}s   wall: {:.3}s",
            report.combined.end_time.as_secs_f64(),
            report.combined.wall_time.as_secs_f64()
        )?;
    }
    if flags.has("--stage-json") {
        let body = serde_json::json!({
            "stages": stage_view(&report.combined.metrics),
            "per_shard": report.per_shard.iter().map(stage_view).collect::<Vec<_>>(),
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&body).expect("serializable"))?;
    }
    Ok(())
}

/// The merged result of a multi-query run, shape-identical for the
/// in-process and sharded engines so one report printer serves both.
struct MultiOutcome {
    stats: Vec<QueryStats>,
    metrics: EngineMetrics,
    resident: usize,
    shed_channel: u64,
    /// `Some((worker count, degrade reason))` for sharded runs.
    shards: Option<(usize, Option<String>)>,
    /// `(query classes, shared stores)` — in-process runs only.
    sharing: Option<(usize, usize)>,
    wall: std::time::Duration,
}

/// `mstream run --queries <file.json>`: N standing queries over one
/// shared data plane. The report gains one row per `QueryId` with its
/// produced/shed counts and its recall against a full-memory companion
/// run of the same query set (which, by the exactness contract, equals
/// each query's solo exact output).
fn run_multi(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    if flags.get("--query").is_some() || flags.get("--query-file").is_some() {
        return Err(CliError::usage("give --queries or --query, not both"));
    }
    if flags.num_opt::<f64>("--service")?.is_some() {
        return Err(CliError::usage(
            "--service models a single-query operator and cannot be combined with --queries",
        ));
    }
    if flags.num_opt::<f64>("--disorder-bound")?.is_some() {
        return Err(CliError::usage(
            "--disorder-bound is not supported by the multi-query engine",
        ));
    }
    let queries = load_queries(flags.require("--queries")?)?;
    let trace = load_trace(flags.require("--trace")?)?;
    let policy_name = flags.get("--policy").unwrap_or("MSketch");
    let policy = parse_policy(policy_name)
        .ok_or_else(|| CliError::input(format!("unknown policy `{policy_name}`")))?;
    let capacity: usize = flags.num("--capacity", 1024)?;
    let rate: f64 = flags.num("--rate", 10.0)?;
    if rate <= 0.0 || rate.is_nan() {
        return Err(CliError::usage("--rate must be positive"));
    }
    let shards: Option<usize> = flags.num_opt("--shards")?;
    if shards == Some(0) {
        return Err(CliError::usage("--shards must be >= 1"));
    }

    let mut builder = EngineBuilder::new_multi()
        .boxed_policy(policy)
        .capacity_per_window(capacity)
        .seed(flags.num("--seed", 42)?);
    for (i, query) in queries.iter().enumerate() {
        builder
            .register(query.clone())
            .map_err(|e| CliError::input(format!("query {i}: {e}")))?;
    }
    let dt = VDur::from_rate(rate);
    let o = match shards {
        None => {
            let mut engine = builder
                .build_multi()
                .map_err(|e| CliError::input(e.to_string()))?;
            validate_trace_catalog(engine.catalog(), &trace)?;
            let started = Instant::now();
            let mut sink = CountSink::default();
            for (i, item) in trace.items.iter().enumerate() {
                let now = VTime::ZERO + dt.mul(i as u64);
                engine.ingest(Arrival::new(item.stream, item.values.clone(), now), &mut sink);
            }
            MultiOutcome {
                stats: (0..queries.len())
                    .map(|q| engine.query_stats(QueryId(q as u32)).unwrap_or_default())
                    .collect(),
                metrics: engine.metrics().clone(),
                resident: engine.total_resident(),
                shed_channel: 0,
                shards: None,
                sharing: Some((engine.n_classes(), engine.n_stores())),
                wall: started.elapsed(),
            }
        }
        Some(s) => {
            let mut engine = builder
                .shards(s)
                .build_multi_sharded()
                .map_err(|e| CliError::input(e.to_string()))?;
            validate_trace_catalog(engine.catalog(), &trace)?;
            for (i, item) in trace.items.iter().enumerate() {
                let now = VTime::ZERO + dt.mul(i as u64);
                engine.ingest(Arrival::new(item.stream, item.values.clone(), now));
            }
            let report = engine.finish().map_err(|e| CliError::input(e.to_string()))?;
            MultiOutcome {
                stats: report.stats,
                metrics: report.metrics,
                resident: report.resident,
                shed_channel: report.shed_channel,
                shards: Some((report.shards, report.degraded)),
                sharing: None,
                wall: report.wall_time,
            }
        }
    };
    let exact = multi_exact_counts(&queries, &trace, rate)?;
    let span_secs = match trace.len() {
        0 => 0.0,
        n => dt.mul(n as u64 - 1).as_secs_f64(),
    };
    let recall = |q: usize| match exact[q] {
        0 => 1.0,
        e => o.stats[q].produced as f64 / e as f64,
    };

    if flags.has("--json") {
        let per_query: Vec<serde_json::Value> = (0..queries.len())
            .map(|q| {
                serde_json::json!({
                    "query": q,
                    "produced": o.stats[q].produced,
                    "shed": o.stats[q].shed,
                    "exact": exact[q],
                    "recall": recall(q),
                })
            })
            .collect();
        let body = serde_json::json!({
            "policy": policy_name,
            "capacity_per_window": capacity,
            "queries": queries.len(),
            "shards": o.shards.as_ref().map(|(s, _)| s),
            "degraded": o.shards.as_ref().and_then(|(_, d)| d.clone()),
            "classes": o.sharing.map(|(c, _)| c),
            "stores": o.sharing.map(|(_, s)| s),
            "arrivals": trace.len(),
            "processed": o.metrics.processed,
            "output_tuples": o.metrics.total_output,
            "shed_window": o.metrics.shed_window,
            "shed_channel": o.shed_channel,
            "expired": o.metrics.expired,
            "resident": o.resident,
            "per_query": per_query,
            "end_time_secs": span_secs,
            "wall_seconds": o.wall.as_secs_f64(),
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&body).expect("serializable"))?;
    } else {
        writeln!(out, "policy:          {policy_name}")?;
        writeln!(out, "memory/window:   {capacity} tuples")?;
        match o.sharing {
            Some((classes, stores)) => writeln!(
                out,
                "queries:         {} standing ({classes} classes, {stores} shared stores)",
                queries.len()
            )?,
            None => writeln!(out, "queries:         {} standing", queries.len())?,
        }
        if let Some((s, degraded)) = &o.shards {
            match degraded {
                Some(reason) => writeln!(out, "shards:          1 (degraded: {reason})")?,
                None => writeln!(out, "shards:          {s}")?,
            }
        }
        writeln!(out, "arrivals:        {}", trace.len())?;
        writeln!(out, "processed:       {}", o.metrics.processed)?;
        writeln!(out, "output tuples:   {}", o.metrics.total_output)?;
        writeln!(
            out,
            "shed:            {} window, {} channel",
            o.metrics.shed_window, o.shed_channel
        )?;
        writeln!(out, "expired:         {}", o.metrics.expired)?;
        writeln!(out, "resident:        {} tuples", o.resident)?;
        for q in 0..queries.len() {
            writeln!(
                out,
                "  q{q}: produced {:>9}  shed {:>7}  recall {:.3}",
                o.stats[q].produced,
                o.stats[q].shed,
                recall(q)
            )?;
        }
        writeln!(
            out,
            "virtual span:    {span_secs:.1}s   wall: {:.3}s",
            o.wall.as_secs_f64()
        )?;
    }
    if flags.has("--stage-json") {
        let body = serde_json::json!({ "stages": stage_view(&o.metrics) });
        writeln!(out, "{}", serde_json::to_string_pretty(&body).expect("serializable"))?;
    }
    Ok(())
}

/// Per-query exact output counts: the same query set replayed through a
/// full-memory shared data plane (nothing is ever evicted, so the policy
/// is irrelevant and FIFO's zero-overhead scoring is used).
fn multi_exact_counts(
    queries: &[JoinQuery],
    trace: &Trace,
    rate: f64,
) -> Result<Vec<u64>, CliError> {
    let mut builder = EngineBuilder::new_multi()
        .policy(Fifo)
        .capacity_per_window(usize::MAX);
    for query in queries {
        builder
            .register(query.clone())
            .map_err(|e| CliError::input(e.to_string()))?;
    }
    let mut engine = builder
        .build_multi()
        .map_err(|e| CliError::input(e.to_string()))?;
    let dt = VDur::from_rate(rate);
    let mut sink = CountSink::default();
    for (i, item) in trace.items.iter().enumerate() {
        let now = VTime::ZERO + dt.mul(i as u64);
        engine.ingest(Arrival::new(item.stream, item.values.clone(), now), &mut sink);
    }
    Ok((0..queries.len())
        .map(|q| engine.query_stats(QueryId(q as u32)).map_or(0, |s| s.produced))
        .collect())
}

/// Parses `--disorder-bound` (seconds) into the event-time bound, if given.
fn parse_disorder(flags: &Flags) -> Result<Option<VDur>, CliError> {
    let Some(secs) = flags.num_opt::<f64>("--disorder-bound")? else {
        return Ok(None);
    };
    if !secs.is_finite() || secs < 0.0 {
        return Err(CliError::usage(
            "--disorder-bound must be a finite number of seconds >= 0",
        ));
    }
    Ok(Some(VDur::from_secs_f64(secs)))
}

/// `mstream generate`: write a synthetic workload as CSV.
pub fn generate(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let tuples: usize = flags.num("--tuples", 1000)?;
    let seed: u64 = flags.num("--seed", 42)?;
    let trace = match flags.require("--workload")? {
        "regions" => {
            let z = parse_z(flags.get("--z").unwrap_or("1.6,2.0"))?;
            let mut config = RegionsConfig::with_z_intra(z.0, z.1);
            config.tuples_per_relation = tuples;
            config.seed = seed;
            if flags.has("--drift") {
                config.feed = FeedOrder::RegionPhases;
            }
            RegionsGenerator::new(config)
                .map_err(|e| CliError::input(e.to_string()))?
                .generate()
        }
        "census" => {
            let config = CensusConfig {
                tuples_per_month: tuples,
                seed,
                ..Default::default()
            };
            CensusGenerator::new(config)
                .map_err(|e| CliError::input(e.to_string()))?
                .generate()
        }
        other => {
            return Err(CliError::input(format!(
                "unknown workload `{other}` (expected `regions` or `census`)"
            )))
        }
    };
    let path = flags.require("--out")?;
    if path == "-" {
        write_trace(&trace, out)?;
    } else {
        let file = std::fs::File::create(path)?;
        write_trace(&trace, std::io::BufWriter::new(file))?;
        writeln!(out, "wrote {} arrivals to {path}", trace.len())?;
    }
    Ok(())
}

/// `mstream explain`: print the parsed query and its probe plans.
pub fn explain(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let query = load_query(flags)?;
    writeln!(out, "streams:")?;
    for (id, schema) in query.catalog().iter() {
        let window = match query.window(id) {
            WindowSpec::Time(d) => format!("RANGE {:.0} SECONDS", d.as_secs_f64()),
            WindowSpec::Tuples(n) => format!("ROWS {n}"),
        };
        writeln!(
            out,
            "  {} {}({}) [{}]",
            id,
            schema.name,
            schema.attrs.join(", "),
            window
        )?;
    }
    writeln!(out, "predicates:")?;
    for pred in query.predicates() {
        let name = |r: AttrRef| {
            let schema = query.catalog().schema(r.stream).expect("valid");
            format!("{}.{}", schema.name, schema.attrs[r.attr])
        };
        writeln!(out, "  {} = {}", name(pred.left), name(pred.right))?;
    }
    writeln!(out, "probe plans:")?;
    for plan in ProbePlan::all(&query) {
        let origin = query.catalog().schema(plan.origin()).expect("valid");
        let steps: Vec<String> = plan
            .steps()
            .iter()
            .map(|s| {
                let stream = query.catalog().schema(s.stream).expect("valid");
                let extra = if s.residual.is_empty() {
                    String::new()
                } else {
                    format!(" (+{} residual checks)", s.residual.len())
                };
                format!(
                    "probe {}.{}{extra}",
                    stream.name, stream.attrs[s.probe_attr]
                )
            })
            .collect();
        writeln!(out, "  on {} arrival: {}", origin.name, steps.join(" -> "))?;
    }
    Ok(())
}

/// `mstream policies`: list the built-in shedding policies.
pub fn policies(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "built-in shedding policies:")?;
    let blurbs: &[(&str, &str)] = &[
        ("MSketch", "max-subset: evict the least sketch-estimated multi-way productivity"),
        ("MSketch-RS", "random sample: evict the largest produced fraction of expected output"),
        ("Age", "remaining lifetime x productivity"),
        ("Life", "remaining lifetime x pairwise partner frequency (Das et al.)"),
        ("Bjoin", "pairwise partner frequency over a binary join tree (Prob)"),
        ("Random", "uniform random eviction"),
        ("FIFO", "drop-oldest"),
    ];
    for (name, blurb) in blurbs {
        writeln!(out, "  {name:<11} {blurb}")?;
    }
    Ok(())
}

fn load_query(flags: &Flags) -> Result<JoinQuery, CliError> {
    let text = match (flags.get("--query"), flags.get("--query-file")) {
        (Some(q), None) => q.to_string(),
        (None, Some(path)) => std::fs::read_to_string(path)?,
        (Some(_), Some(_)) => {
            return Err(CliError::usage("give --query or --query-file, not both"))
        }
        (None, None) => return Err(CliError::usage("--query (or --query-file) is required")),
    };
    mstream_query::parse_query(&text).map_err(|e| CliError::input(format!("query: {e}")))
}

/// Reads `--queries <file.json>`: a JSON array of query strings, each in
/// the same CQL-ish dialect as `--query`.
fn load_queries(path: &str) -> Result<Vec<JoinQuery>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("cannot open queries `{path}`: {e}")))?;
    let specs: Vec<String> = serde_json::from_str(&text).map_err(|e| {
        CliError::input(format!(
            "queries `{path}`: expected a JSON array of query strings: {e}"
        ))
    })?;
    if specs.is_empty() {
        return Err(CliError::input(format!("queries `{path}`: the array is empty")));
    }
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            mstream_query::parse_query(s).map_err(|e| CliError::input(format!("query {i}: {e}")))
        })
        .collect()
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    if path == "-" {
        read_trace(std::io::stdin().lock()).map_err(|e| CliError::input(e.to_string()))
    } else {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::input(format!("cannot open trace `{path}`: {e}")))?;
        read_trace(file).map_err(|e| CliError::input(e.to_string()))
    }
}

/// The trace must only reference the query's streams, with matching arity.
fn validate_trace(query: &JoinQuery, trace: &Trace) -> Result<(), CliError> {
    validate_trace_catalog(query.catalog(), trace)
}

/// Catalog-level trace validation — for multi-query runs the catalog is
/// the union of every registered query's streams, in registration order.
fn validate_trace_catalog(catalog: &Catalog, trace: &Trace) -> Result<(), CliError> {
    for (i, item) in trace.items.iter().enumerate() {
        let schema = catalog.schema(item.stream).ok_or_else(|| {
            CliError::input(format!(
                "trace row {}: stream index {} but the query set has {} streams",
                i + 1,
                item.stream.index(),
                catalog.len()
            ))
        })?;
        if item.values.len() != schema.arity() {
            return Err(CliError::input(format!(
                "trace row {}: {} values for stream {} (schema {} has {})",
                i + 1,
                item.values.len(),
                item.stream.index(),
                schema.name,
                schema.arity()
            )));
        }
    }
    Ok(())
}

fn parse_z(text: &str) -> Result<(f64, f64), CliError> {
    let (lo, hi) = text
        .split_once(',')
        .ok_or_else(|| CliError::usage("--z expects `lo,hi`"))?;
    let lo: f64 = lo
        .trim()
        .parse()
        .map_err(|_| CliError::usage(format!("--z: bad number `{lo}`")))?;
    let hi: f64 = hi
        .trim()
        .parse()
        .map_err(|_| CliError::usage(format!("--z: bad number `{hi}`")))?;
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let mut out = Vec::new();
        dispatch(
            &args.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &mut out,
        )?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn policies_lists_all_builtins() {
        let text = run_cli(&["policies"]).unwrap();
        for name in ALL_POLICY_NAMES {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn explain_prints_streams_predicates_and_plans() {
        let text = run_cli(&[
            "explain",
            "--query",
            "SELECT * FROM L(k, v) [ROWS 100], R(k, v) WHERE L.k = R.k",
        ])
        .unwrap();
        assert!(text.contains("L(k, v) [ROWS 100]"), "{text}");
        assert!(text.contains("L.k = R.k"), "{text}");
        assert!(text.contains("on L arrival: probe R.k"), "{text}");
    }

    #[test]
    fn generate_then_run_round_trip() {
        let dir = std::env::temp_dir().join("mstream_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let trace_path = trace_path.to_str().unwrap();
        let gen_out = run_cli(&[
            "generate",
            "--workload",
            "regions",
            "--tuples",
            "200",
            "--out",
            trace_path,
        ])
        .unwrap();
        assert!(gen_out.contains("wrote 600 arrivals"), "{gen_out}");
        let report = run_cli(&[
            "run",
            "--query",
            "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
             WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1",
            "--trace",
            trace_path,
            "--capacity",
            "50",
            "--policy",
            "MSketch",
        ])
        .unwrap();
        assert!(report.contains("arrivals:        600"), "{report}");
        assert!(report.contains("output tuples:"), "{report}");
        // JSON mode parses.
        let json_report = run_cli(&[
            "run",
            "--query",
            "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
             WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1",
            "--trace",
            trace_path,
            "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json_report).unwrap();
        assert_eq!(v["arrivals"], 600);
    }

    #[test]
    fn stage_json_surfaces_stage_ns_and_cache_counters() {
        let dir = std::env::temp_dir().join("mstream_cli_test_stage");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let trace_path = trace_path.to_str().unwrap();
        run_cli(&[
            "generate", "--workload", "regions", "--tuples", "200", "--out", trace_path,
        ])
        .unwrap();
        let chain = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
                     WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1";
        // Single-engine run: the stage object rides after the text report.
        let text = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--capacity", "50",
            "--stage-json",
        ])
        .unwrap();
        let json_start = text.find('{').expect("stage object present");
        let v: serde_json::Value = serde_json::from_str(&text[json_start..]).unwrap();
        let stages = &v["stages"];
        for key in [
            "sketch_observe_ns",
            "priority_rebuild_ns",
            "score_ns",
            "sign_cache_hits",
            "sign_cache_misses",
            "score_cache_hits",
            "score_cache_misses",
        ] {
            assert!(stages[key].as_u64().is_some(), "missing stage counter {key}: {v:?}");
        }
        assert!(
            stages["score_ns"].as_u64().unwrap() > 0,
            "a sketch policy spends time scoring: {v:?}"
        );
        // Sharded run: a per_shard breakdown accompanies the merged view.
        let keyed = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
                     WHERE R1.A1 = R2.A1 AND R2.A1 = R3.A1";
        let text = run_cli(&[
            "run", "--query", keyed, "--trace", trace_path, "--capacity", "400",
            "--shards", "2", "--stage-json",
        ])
        .unwrap();
        let json_start = text.find('{').expect("stage object present");
        let v: serde_json::Value = serde_json::from_str(&text[json_start..]).unwrap();
        assert_eq!(v["per_shard"].as_array().unwrap().len(), 2);
        let merged: u64 = v["per_shard"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["score_cache_hits"].as_u64().unwrap() + s["score_cache_misses"].as_u64().unwrap())
            .sum();
        let combined = v["stages"]["score_cache_hits"].as_u64().unwrap()
            + v["stages"]["score_cache_misses"].as_u64().unwrap();
        assert_eq!(merged, combined, "coordinator sums per-shard cache counters");
    }

    #[test]
    fn sharded_run_reports_fanout_and_degrade() {
        let dir = std::env::temp_dir().join("mstream_cli_test_shard");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let trace_path = trace_path.to_str().unwrap();
        run_cli(&[
            "generate", "--workload", "regions", "--tuples", "200", "--out", trace_path,
        ])
        .unwrap();
        // All predicates through one attribute class: real 4-way fan-out.
        let keyed = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
                     WHERE R1.A1 = R2.A1 AND R2.A1 = R3.A1";
        let json = run_cli(&[
            "run", "--query", keyed, "--trace", trace_path, "--capacity", "400",
            "--shards", "4", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["shards"], 4);
        assert_eq!(v["degraded"], serde_json::Value::Null);
        assert_eq!(v["per_shard"].as_array().unwrap().len(), 4);
        assert_eq!(v["shed_channel"], 0);

        // The chain query cannot key-partition: it now runs wide in
        // broadcast mode, matching the single-shard output exactly.
        let chain = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
                     WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1";
        let single = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--shards", "1", "--json",
        ])
        .unwrap();
        let s: serde_json::Value = serde_json::from_str(&single).unwrap();
        let json = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--shards", "4", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["shards"], 4);
        assert_eq!(v["degraded"], serde_json::Value::Null);
        assert_eq!(v["broadcast"], true);
        assert!(v["replicated"].as_u64().unwrap() > 0, "{v:?}");
        assert_eq!(v["output_tuples"], s["output_tuples"], "broadcast is exact");
        let text = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--shards", "4",
        ])
        .unwrap();
        assert!(text.contains("broadcast"), "{text}");

        // --no-broadcast restores the degrade-to-one-shard behavior.
        let json = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--shards", "4",
            "--no-broadcast", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["shards"], 1);
        assert!(v["degraded"].as_str().is_some(), "{v:?}");
        let text = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--shards", "4",
            "--no-broadcast",
        ])
        .unwrap();
        assert!(text.contains("degraded:"), "{text}");
    }

    #[test]
    fn multi_query_run_reports_per_query_rows() {
        let dir = std::env::temp_dir().join("mstream_cli_test_multi");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let trace_path = trace_path.to_str().unwrap();
        run_cli(&[
            "generate", "--workload", "regions", "--tuples", "200", "--out", trace_path,
        ])
        .unwrap();
        let chain = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
                     WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1";
        let pair = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2) \
                    WHERE R1.A1 = R2.A1";
        let queries_path = dir.join("queries.json");
        std::fs::write(
            &queries_path,
            serde_json::to_string(&[chain, chain, pair]).unwrap(),
        )
        .unwrap();
        let queries_path = queries_path.to_str().unwrap();

        // Full memory: every query's recall is exactly 1, the duplicate
        // queries agree, and the chain's count matches its solo run.
        let json = run_cli(&[
            "run", "--queries", queries_path, "--trace", trace_path,
            "--capacity", "100000", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["queries"], 3);
        assert_eq!(v["classes"], 2, "duplicate chains share one class");
        let rows = v["per_query"].as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row["recall"], 1.0, "{row:?}");
            assert_eq!(row["produced"], row["exact"], "{row:?}");
        }
        assert_eq!(rows[0]["produced"], rows[1]["produced"], "duplicates agree");
        let solo = run_cli(&[
            "run", "--query", chain, "--trace", trace_path, "--capacity", "100000",
            "--json",
        ])
        .unwrap();
        let s: serde_json::Value = serde_json::from_str(&solo).unwrap();
        assert_eq!(rows[0]["produced"], s["output_tuples"], "solo-identical");

        // Text mode prints one row per query.
        let text = run_cli(&[
            "run", "--queries", queries_path, "--trace", trace_path, "--capacity", "50",
        ])
        .unwrap();
        for q in 0..3 {
            assert!(text.contains(&format!("q{q}: produced")), "{text}");
        }
        assert!(text.contains("recall"), "{text}");

        // Sharded: same per-query exact counts through the coordinator.
        let json = run_cli(&[
            "run", "--queries", queries_path, "--trace", trace_path,
            "--capacity", "100000", "--shards", "2", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let sharded = v["per_query"].as_array().unwrap();
        for (a, b) in rows.iter().zip(sharded) {
            assert_eq!(a["produced"], b["produced"], "{a:?} vs {b:?}");
            assert_eq!(b["recall"], 1.0);
        }

        // Conflicting flag combinations are usage errors.
        for extra in [["--query", chain], ["--service", "10"], ["--disorder-bound", "5"]] {
            let err = run_cli(&[
                "run", "--queries", queries_path, "--trace", trace_path, extra[0], extra[1],
            ])
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{extra:?}: {err}");
        }
        // Bad queries files are input errors with the path in the message.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{}").unwrap();
        let err = run_cli(&[
            "run", "--queries", bad.to_str().unwrap(), "--trace", trace_path,
        ])
        .unwrap_err();
        assert!(err.to_string().contains("array of query strings"), "{err}");
        std::fs::write(&bad, "[]").unwrap();
        let err = run_cli(&[
            "run", "--queries", bad.to_str().unwrap(), "--trace", trace_path,
        ])
        .unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn disorder_bound_flag_runs_and_matches_in_order_output() {
        let dir = std::env::temp_dir().join("mstream_cli_test_disorder");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let trace_path = trace_path.to_str().unwrap();
        run_cli(&[
            "generate", "--workload", "regions", "--tuples", "200", "--out", trace_path,
        ])
        .unwrap();
        let query = "SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2) \
                     WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1";
        let plain = run_cli(&["run", "--query", query, "--trace", trace_path, "--json"]).unwrap();
        let p: serde_json::Value = serde_json::from_str(&plain).unwrap();
        // The CLI's arrival schedule is in order, so any bound — zero
        // included — must reproduce the trusting run's output exactly.
        for bound in ["0", "5"] {
            let json = run_cli(&[
                "run", "--query", query, "--trace", trace_path, "--disorder-bound", bound,
                "--json",
            ])
            .unwrap();
            let v: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert_eq!(v["output_tuples"], p["output_tuples"], "bound {bound}");
            assert_eq!(v["late_dropped"], 0);
        }
        let text = run_cli(&[
            "run", "--query", query, "--trace", trace_path, "--disorder-bound", "5",
        ])
        .unwrap();
        assert!(text.contains("event time:"), "{text}");
        // Sharded runs accept the flag too (coordinator-side front end).
        let json = run_cli(&[
            "run", "--query", query, "--trace", trace_path, "--shards", "2",
            "--disorder-bound", "5", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["output_tuples"], p["output_tuples"]);
        // Rejected: the overload queue model trusts arrival order.
        let err = run_cli(&[
            "run", "--query", query, "--trace", trace_path, "--service", "100",
            "--disorder-bound", "5",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--disorder-bound"), "{err}");
        let err = run_cli(&[
            "run", "--query", query, "--trace", trace_path, "--disorder-bound", "-1",
        ])
        .unwrap_err();
        assert!(err.to_string().contains(">= 0"), "{err}");
    }

    #[test]
    fn sharded_run_excludes_service_and_zero_shards() {
        let query = "SELECT * FROM L(a) [ROWS 5], R(a) WHERE L.a = R.a";
        let err = run_cli(&[
            "run", "--query", query, "--trace", "/dev/null", "--shards", "2",
            "--service", "100",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
        let err = run_cli(&[
            "run", "--query", query, "--trace", "/dev/null", "--shards", "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains(">= 1"), "{err}");
    }

    #[test]
    fn run_rejects_mismatched_trace() {
        let dir = std::env::temp_dir().join("mstream_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "0,1,2\n5,1,2\n").unwrap();
        let err = run_cli(&[
            "run",
            "--query",
            "SELECT * FROM L(a, b) [ROWS 5], R(a, b) WHERE L.a = R.a",
            "--trace",
            path.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("stream index 5"), "{err}");
    }

    #[test]
    fn run_reports_query_errors_with_context() {
        let err = run_cli(&["run", "--query", "SELECT oops", "--trace", "/dev/null"])
            .unwrap_err();
        assert!(err.to_string().contains("query:"), "{err}");
    }

    #[test]
    fn unknown_subcommand_and_workload() {
        assert!(run_cli(&["frobnicate"]).is_err());
        let err = run_cli(&["generate", "--workload", "nope", "--out", "-"]).unwrap_err();
        assert!(err.to_string().contains("unknown workload"), "{err}");
    }

    #[test]
    fn parse_z_accepts_ranges() {
        assert_eq!(parse_z("0.1,0.5").unwrap(), (0.1, 0.5));
        assert!(parse_z("0.1").is_err());
        assert!(parse_z("a,b").is_err());
    }

    #[test]
    fn help_prints_usage() {
        let text = run_cli(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("generate"));
    }
}
