//! Recursive-descent parser and semantic translation to [`JoinQuery`].

use crate::ast::{QueryAst, RelationAst, WindowAst};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use mstream_types::{Catalog, JoinQuery, StreamSchema, VDur, WindowSpec};
use std::fmt;

/// A parse or validation failure, with the byte offset it points at.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the query text.
    pub pos: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, pos: usize) -> Self {
        ParseError {
            message: message.into(),
            pos,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at offset {})", self.message, self.pos)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(format!("unexpected character `{}`", e.ch), e.pos)
    }
}

/// Parses a query string all the way to a validated [`JoinQuery`].
pub fn parse_query(src: &str) -> Result<JoinQuery, ParseError> {
    let ast = parse_ast(src)?;
    to_join_query(&ast)
}

/// Parses a query string to its [`QueryAst`] (no semantic validation).
pub fn parse_ast(src: &str) -> Result<QueryAst, ParseError> {
    let tokens = tokenize(src)?;
    Parser { tokens, at: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(ParseError::new(
                format!("expected {kind}, found {}", t.kind),
                t.pos,
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Token, ParseError> {
        self.expect(&TokenKind::Keyword(kw.to_string()))
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(name) => Ok((name, t.pos)),
            other => Err(ParseError::new(
                format!("expected {what}, found {other}"),
                t.pos,
            )),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().kind == TokenKind::Keyword(kw.to_string()) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// query := SELECT '*' FROM relation (',' relation)* WHERE pred (AND pred)*
    fn query(&mut self) -> Result<QueryAst, ParseError> {
        self.expect_keyword("SELECT")?;
        self.expect(&TokenKind::Star)?;
        self.expect_keyword("FROM")?;
        let mut relations = vec![self.relation()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            relations.push(self.relation()?);
        }
        self.expect_keyword("WHERE")?;
        let mut predicates = vec![self.predicate()?];
        while self.eat_keyword("AND") {
            predicates.push(self.predicate()?);
        }
        let t = self.peek();
        if t.kind != TokenKind::Eof {
            return Err(ParseError::new(
                format!("expected AND or end of query, found {}", t.kind),
                t.pos,
            ));
        }
        Ok(QueryAst {
            relations,
            predicates,
        })
    }

    /// relation := IDENT '(' IDENT (',' IDENT)* ')' window?
    fn relation(&mut self) -> Result<RelationAst, ParseError> {
        let (name, pos) = self.expect_ident("a stream name")?;
        self.expect(&TokenKind::LParen)?;
        let mut attrs = vec![self.expect_ident("an attribute name")?.0];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            attrs.push(self.expect_ident("an attribute name")?.0);
        }
        self.expect(&TokenKind::RParen)?;
        let window = if self.peek().kind == TokenKind::LBracket {
            Some(self.window()?)
        } else {
            None
        };
        Ok(RelationAst {
            name,
            attrs,
            window,
            pos,
        })
    }

    /// window := '[' RANGE NUMBER unit ']' | '[' ROWS NUMBER ']'
    fn window(&mut self) -> Result<WindowAst, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let t = self.bump();
        let ast = match &t.kind {
            TokenKind::Keyword(k) if k == "RANGE" => {
                let n = self.number()?;
                let unit = self.bump();
                let secs = match &unit.kind {
                    TokenKind::Keyword(u) if u == "SECONDS" || u == "SECOND" => n,
                    TokenKind::Keyword(u) if u == "MINUTES" || u == "MINUTE" => n * 60,
                    TokenKind::Keyword(u) if u == "HOURS" || u == "HOUR" => n * 3600,
                    other => {
                        return Err(ParseError::new(
                            format!("expected SECONDS, MINUTES or HOURS, found {other}"),
                            unit.pos,
                        ))
                    }
                };
                if secs == 0 {
                    return Err(ParseError::new("window length must be positive", t.pos));
                }
                WindowAst::Range(VDur::from_secs(secs))
            }
            TokenKind::Keyword(k) if k == "ROWS" => {
                let n = self.number()?;
                if n == 0 {
                    return Err(ParseError::new("ROWS window must be positive", t.pos));
                }
                WindowAst::Rows(n)
            }
            other => {
                return Err(ParseError::new(
                    format!("expected RANGE or ROWS, found {other}"),
                    t.pos,
                ))
            }
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(ast)
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Number(n) => Ok(n),
            other => Err(ParseError::new(
                format!("expected a number, found {other}"),
                t.pos,
            )),
        }
    }

    /// pred := IDENT '.' IDENT '=' IDENT '.' IDENT
    fn predicate(&mut self) -> Result<(String, String, usize), ParseError> {
        let (ls, pos) = self.expect_ident("a stream name")?;
        self.expect(&TokenKind::Dot)?;
        let (la, _) = self.expect_ident("an attribute name")?;
        self.expect(&TokenKind::Equals)?;
        let (rs, _) = self.expect_ident("a stream name")?;
        self.expect(&TokenKind::Dot)?;
        let (ra, _) = self.expect_ident("an attribute name")?;
        Ok((format!("{ls}.{la}"), format!("{rs}.{ra}"), pos))
    }
}

/// Translates a parsed AST to a validated [`JoinQuery`].
pub fn to_join_query(ast: &QueryAst) -> Result<JoinQuery, ParseError> {
    let mut catalog = Catalog::new();
    let mut windows = Vec::with_capacity(ast.relations.len());
    let mut last_window: Option<WindowAst> = None;
    for rel in &ast.relations {
        if catalog.iter().any(|(_, s)| s.name == rel.name) {
            return Err(ParseError::new(
                format!("stream `{}` listed twice in FROM", rel.name),
                rel.pos,
            ));
        }
        let attrs: Vec<&str> = rel.attrs.iter().map(String::as_str).collect();
        catalog.add_stream(StreamSchema::new(rel.name.clone(), &attrs));
        let window = rel.window.or(last_window).ok_or_else(|| {
            ParseError::new(
                format!(
                    "stream `{}` has no window clause and none to inherit; \
                     write e.g. `[RANGE 500 SECONDS]` or `[ROWS 100]`",
                    rel.name
                ),
                rel.pos,
            )
        })?;
        last_window = Some(window);
        windows.push(match window {
            WindowAst::Range(d) => WindowSpec::Time(d),
            WindowAst::Rows(n) => WindowSpec::Tuples(n),
        });
    }
    let mut predicates = Vec::with_capacity(ast.predicates.len());
    for (left, right, pos) in &ast.predicates {
        let l = catalog
            .resolve(left)
            .map_err(|e| ParseError::new(e.to_string(), *pos))?;
        let r = catalog
            .resolve(right)
            .map_err(|e| ParseError::new(e.to_string(), *pos))?;
        predicates.push(mstream_types::EquiPredicate::new(l, r));
    }
    JoinQuery::new(catalog, predicates, windows)
        .map_err(|e| ParseError::new(e.to_string(), 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::StreamId;

    const PAPER_QUERY: &str = "SELECT * FROM R1(A1, A2) [RANGE 500 SECONDS], \
                               R2(A1, A2), R3(A1, A2) \
                               WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1";

    #[test]
    fn parses_the_paper_query() {
        let q = parse_query(PAPER_QUERY).unwrap();
        assert_eq!(q.n_streams(), 3);
        assert_eq!(q.predicates().len(), 2);
        assert_eq!(q.window(StreamId(0)), WindowSpec::secs(500));
        // Windows inherit from the previous relation.
        assert_eq!(q.window(StreamId(2)), WindowSpec::secs(500));
        assert_eq!(q.catalog().schema(StreamId(1)).unwrap().name, "R2");
    }

    #[test]
    fn parses_rows_and_time_units() {
        let q = parse_query(
            "SELECT * FROM L(k) [ROWS 64], R(k) [RANGE 2 MINUTES] WHERE L.k = R.k",
        )
        .unwrap();
        assert_eq!(q.window(StreamId(0)), WindowSpec::Tuples(64));
        assert_eq!(q.window(StreamId(1)), WindowSpec::secs(120));
        let q = parse_query("SELECT * FROM L(k) [RANGE 1 HOUR], R(k) WHERE L.k = R.k").unwrap();
        assert_eq!(q.window(StreamId(0)), WindowSpec::secs(3600));
    }

    #[test]
    fn keywords_any_case() {
        let q = parse_query(
            "select * from L(k) [range 10 seconds], R(k) where L.k = R.k",
        )
        .unwrap();
        assert_eq!(q.n_streams(), 2);
    }

    #[test]
    fn missing_first_window_is_an_error() {
        let err = parse_query("SELECT * FROM L(k), R(k) WHERE L.k = R.k").unwrap_err();
        assert!(err.message.contains("no window clause"), "{err}");
    }

    #[test]
    fn unknown_attribute_reports_name_and_offset() {
        let src = "SELECT * FROM L(k) [ROWS 5], R(k) WHERE L.zz = R.k";
        let err = parse_query(src).unwrap_err();
        assert!(err.message.contains("L.zz"), "{err}");
        assert_eq!(&src[err.pos..err.pos + 1], "L");
    }

    #[test]
    fn duplicate_stream_rejected() {
        let err =
            parse_query("SELECT * FROM L(k) [ROWS 5], L(k) WHERE L.k = L.k").unwrap_err();
        assert!(err.message.contains("listed twice"), "{err}");
    }

    #[test]
    fn disconnected_join_rejected() {
        let err = parse_query(
            "SELECT * FROM A(x) [ROWS 5], B(x), C(x) WHERE A.x = B.x AND A.x = B.x",
        )
        .unwrap_err();
        assert!(err.message.contains("cross product"), "{err}");
    }

    #[test]
    fn syntax_errors_point_at_the_token() {
        let src = "SELECT * FROM L(k) [ROWS 5], R(k) WHERE L.k == R.k";
        let err = parse_query(src).unwrap_err();
        assert!(err.message.contains("expected"), "{err}");
        assert_eq!(&src[err.pos..err.pos + 1], "=");
        let err = parse_query("SELECT * FROM L(k) [ROWS zero] WHERE L.k = L.k").unwrap_err();
        assert!(err.message.contains("expected a number"), "{err}");
    }

    #[test]
    fn zero_windows_rejected() {
        assert!(parse_query("SELECT * FROM L(k) [ROWS 0], R(k) WHERE L.k = R.k").is_err());
        assert!(
            parse_query("SELECT * FROM L(k) [RANGE 0 SECONDS], R(k) WHERE L.k = R.k").is_err()
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_query(
            "SELECT * FROM L(k) [ROWS 5], R(k) WHERE L.k = R.k GROUP",
        )
        .unwrap_err();
        assert!(err.message.contains("expected AND or end"), "{err}");
    }

    #[test]
    fn ast_is_inspectable() {
        let ast = parse_ast(PAPER_QUERY).unwrap();
        assert_eq!(ast.relations.len(), 3);
        assert_eq!(ast.relations[0].attrs, vec!["A1", "A2"]);
        assert!(ast.relations[1].window.is_none());
        assert_eq!(ast.predicates[0].0, "R1.A1");
    }
}
