//! The parsed query representation, prior to semantic validation.

use mstream_types::VDur;

/// A window clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowAst {
    /// `[RANGE n SECONDS|MINUTES|HOURS]`
    Range(VDur),
    /// `[ROWS n]`
    Rows(u64),
}

/// One `FROM` item: a stream with an inline schema and optional window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationAst {
    /// Stream name.
    pub name: String,
    /// Attribute names in schema order.
    pub attrs: Vec<String>,
    /// The window clause, if given (otherwise inherited from the previous
    /// relation in the list).
    pub window: Option<WindowAst>,
    /// Byte offset of the relation name (for error reporting).
    pub pos: usize,
}

/// A fully parsed `SELECT * FROM ... WHERE ...` query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAst {
    /// The `FROM` list, in order.
    pub relations: Vec<RelationAst>,
    /// The conjunctive equi-join predicates as dotted-name pairs, each with
    /// the byte offset of its left-hand side.
    pub predicates: Vec<(String, String, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_types_are_plain_data() {
        let rel = RelationAst {
            name: "R1".into(),
            attrs: vec!["A1".into()],
            window: Some(WindowAst::Rows(10)),
            pos: 14,
        };
        let q = QueryAst {
            relations: vec![rel.clone()],
            predicates: vec![("R1.A1".into(), "R1.A1".into(), 40)],
        };
        assert_eq!(q.relations[0], rel);
        assert_eq!(WindowAst::Rows(10), rel.window.unwrap());
    }
}
