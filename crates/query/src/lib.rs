//! A small CQL-style continuous-query language for windowed multi-way
//! equi-joins — the query class of Law & Zaniolo (ICDE 2007).
//!
//! The paper's host system (Stream Mill) exposes continuous queries in an
//! SQL dialect; this crate provides the equivalent front door for the
//! reproduction: a hand-written lexer + recursive-descent parser that turns
//!
//! ```sql
//! SELECT * FROM R1(A1, A2) [RANGE 500 SECONDS],
//!               R2(A1, A2) [RANGE 500 SECONDS],
//!               R3(A1, A2) [RANGE 500 SECONDS]
//! WHERE R1.A1 = R2.A1 AND R2.A2 = R3.A1
//! ```
//!
//! into a validated [`mstream_types::JoinQuery`]. Window clauses accept
//! `RANGE <n> {SECONDS|MINUTES|HOURS}` (time-based) and `ROWS <n>`
//! (tuple-based, paper §4.1); omitting the clause on a stream reuses the
//! previous stream's window (and the first stream must have one).
//!
//! ```
//! use mstream_query::parse_query;
//!
//! let query = parse_query(
//!     "SELECT * FROM L(k, v) [ROWS 100], R(k, v) WHERE L.k = R.k",
//! ).unwrap();
//! assert_eq!(query.n_streams(), 2);
//! assert_eq!(query.predicates().len(), 1);
//! ```
//!
//! Errors carry the offending position and a human-readable message:
//!
//! ```
//! use mstream_query::parse_query;
//! let err = parse_query("SELECT * FROM R1(A1) [RANGE 10 SECONDS] WHERE R1.A9 = R1.A1")
//!     .unwrap_err();
//! assert!(err.to_string().contains("A9"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{QueryAst, RelationAst, WindowAst};
pub use parser::{parse_query, ParseError};
