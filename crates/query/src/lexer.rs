//! Tokenizer for the query language.

use std::fmt;

/// A lexical token with its byte offset in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// The token kinds of the query language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A keyword (uppercased): SELECT, FROM, WHERE, AND, RANGE, ROWS,
    /// SECONDS, MINUTES, HOURS.
    Keyword(String),
    /// An identifier (stream or attribute name), case preserved.
    Ident(String),
    /// An unsigned integer literal.
    Number(u64),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Ident(i) => write!(f, "identifier `{i}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Eof => write!(f, "end of query"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "RANGE", "ROWS", "SECONDS", "SECOND", "MINUTES", "MINUTE",
    "HOURS", "HOUR",
];

/// A character that was not expected by the tokenizer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// The unexpected character.
    pub ch: char,
    /// Its byte offset.
    pub pos: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` at offset {}", self.ch, self.pos)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, appending a trailing [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, pos });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Equals, pos });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos });
                i += 1;
            }
            '[' => {
                tokens.push(Token { kind: TokenKind::LBracket, pos });
                i += 1;
            }
            ']' => {
                tokens.push(Token { kind: TokenKind::RBracket, pos });
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Overflow on absurd literals is a lex error at this char.
                let text = &src[start..i];
                let n: u64 = text.parse().map_err(|_| LexError { ch: c, pos })?;
                tokens.push(Token { kind: TokenKind::Number(n), pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token { kind, pos });
            }
            other => return Err(LexError { ch: other, pos }),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_the_paper_query() {
        let ks = kinds("SELECT * FROM R1(A1) [RANGE 500 SECONDS] WHERE R1.A1 = R1.A1");
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Star);
        assert_eq!(ks[2], TokenKind::Keyword("FROM".into()));
        assert_eq!(ks[3], TokenKind::Ident("R1".into()));
        assert!(ks.contains(&TokenKind::Number(500)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_are_not() {
        let ks = kinds("select From myStream");
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Keyword("FROM".into()));
        assert_eq!(ks[2], TokenKind::Ident("myStream".into()));
    }

    #[test]
    fn underscore_identifiers() {
        let ks = kinds("net_flows._dst2");
        assert_eq!(ks[0], TokenKind::Ident("net_flows".into()));
        assert_eq!(ks[1], TokenKind::Dot);
        assert_eq!(ks[2], TokenKind::Ident("_dst2".into()));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let ts = tokenize("ab  =").unwrap();
        assert_eq!(ts[0].pos, 0);
        assert_eq!(ts[1].pos, 4);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = tokenize("SELECT #").unwrap_err();
        assert_eq!(err.ch, '#');
        assert_eq!(err.pos, 7);
    }

    #[test]
    fn whitespace_variants() {
        let ks = kinds("a\t\n b");
        assert_eq!(ks.len(), 3); // a, b, EOF
    }
}
