//! Virtual time for the deterministic discrete-event simulation.
//!
//! The paper's model (§2) is parameterized by an arrival rate `k` and a join
//! service rate `l`, both in tuples per second, and by a window length `p`
//! in seconds. Running the system on wall-clock time would make every
//! experiment non-reproducible, so the whole workspace operates on *virtual*
//! time: an integer count of microseconds since the start of the run.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second, the granularity of virtual time.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in virtual time (microseconds since simulation start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VTime(u64);

/// A span of virtual time (microseconds).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VDur(u64);

impl VTime {
    /// The origin of virtual time.
    pub const ZERO: VTime = VTime(0);

    /// A time point `micros` microseconds after the origin.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        VTime(micros)
    }

    /// A time point `secs` seconds after the origin.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        VTime(secs * MICROS_PER_SEC)
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: VTime) -> VDur {
        VDur(self.0.saturating_sub(earlier.0))
    }
}

impl VDur {
    /// The zero-length duration.
    pub const ZERO: VDur = VDur(0);

    /// A duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        VDur(micros)
    }

    /// A duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        VDur(secs * MICROS_PER_SEC)
    }

    /// A duration of `secs` (fractional) seconds, rounded to microseconds.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "duration must be finite and non-negative");
        VDur((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Length in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The inter-arrival duration for a rate of `per_sec` events per second.
    ///
    /// # Panics
    /// Panics if `per_sec` is not strictly positive and finite.
    #[inline]
    pub fn from_rate(per_sec: f64) -> Self {
        assert!(per_sec > 0.0 && per_sec.is_finite(), "rate must be positive");
        VDur::from_secs_f64(1.0 / per_sec)
    }

    /// This duration scaled by an integer factor.
    #[inline]
    pub const fn mul(self, factor: u64) -> Self {
        VDur(self.0 * factor)
    }

    /// Whether this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign<VDur> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Sub<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn sub(self, rhs: VDur) -> VTime {
        VTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VDur {
    type Output = VDur;
    #[inline]
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0 + rhs.0)
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(VTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(VDur::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(VTime::from_micros(10).as_micros(), 10);
        assert!((VTime::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = VTime::from_secs(10) + VDur::from_secs(5);
        assert_eq!(t, VTime::from_secs(15));
        assert_eq!(t - VDur::from_secs(20), VTime::ZERO, "subtraction saturates");
        assert_eq!(t.since(VTime::from_secs(12)), VDur::from_secs(3));
        assert_eq!(VTime::from_secs(1).since(VTime::from_secs(2)), VDur::ZERO);
    }

    #[test]
    fn rate_to_interarrival() {
        // 4 tuples per second -> 250ms between tuples.
        assert_eq!(VDur::from_rate(4.0).as_micros(), 250_000);
        // 1000 tuples per second -> 1ms.
        assert_eq!(VDur::from_rate(1000.0).as_micros(), 1_000);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = VDur::from_rate(0.0);
    }

    #[test]
    fn duration_helpers() {
        assert!(VDur::ZERO.is_zero());
        assert!(!VDur::from_micros(1).is_zero());
        assert_eq!(VDur::from_secs(2).mul(3), VDur::from_secs(6));
        assert_eq!(VDur::from_secs(1) + VDur::from_secs(2), VDur::from_secs(3));
    }

    proptest! {
        #[test]
        fn add_then_since_round_trips(base in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
            let t0 = VTime::from_micros(base);
            let dur = VDur::from_micros(d);
            prop_assert_eq!((t0 + dur).since(t0), dur);
        }

        #[test]
        fn from_secs_f64_close(secs in 0.0f64..1e6) {
            let d = VDur::from_secs_f64(secs);
            prop_assert!((d.as_secs_f64() - secs).abs() <= 1e-6);
        }
    }
}
