//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by query validation and engine construction.
///
/// Runtime data-path operations (probing, eviction, sketch updates) are
/// infallible by construction: every index they use is validated when the
/// [`crate::JoinQuery`] is built, so the hot path carries no `Result`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A dotted name referenced a stream not present in the catalog.
    UnknownStream(String),
    /// A dotted name referenced an attribute not present in its stream.
    UnknownAttribute(String),
    /// A predicate referenced a stream id outside the query's stream set.
    StreamOutOfRange {
        /// The offending stream index.
        stream: usize,
        /// Number of streams in the query.
        n_streams: usize,
    },
    /// A predicate referenced an attribute index outside a stream's arity.
    AttrOutOfRange {
        /// The offending stream index.
        stream: usize,
        /// The offending attribute index.
        attr: usize,
        /// The stream's arity.
        arity: usize,
    },
    /// A multi-way join needs at least two streams.
    TooFewStreams(usize),
    /// The predicate graph does not connect all streams (a cross product).
    DisconnectedJoinGraph,
    /// A predicate joins a stream with itself.
    SelfJoinPredicate(usize),
    /// A configuration value was out of its valid range.
    InvalidConfig(String),
    /// A sharded-execution worker failed (panicked or disconnected).
    Shard(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownStream(name) => write!(f, "unknown stream `{name}`"),
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::StreamOutOfRange { stream, n_streams } => write!(
                f,
                "predicate references stream {stream} but the query has {n_streams} streams"
            ),
            Error::AttrOutOfRange {
                stream,
                attr,
                arity,
            } => write!(
                f,
                "predicate references attribute {attr} of stream {stream} (arity {arity})"
            ),
            Error::TooFewStreams(n) => {
                write!(f, "a multi-way join needs >= 2 streams, got {n}")
            }
            Error::DisconnectedJoinGraph => write!(
                f,
                "the equi-join predicates do not connect all streams (cross product)"
            ),
            Error::SelfJoinPredicate(s) => {
                write!(f, "predicate joins stream {s} with itself")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Shard(msg) => write!(f, "shard worker failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::UnknownStream("R9".into()), "R9"),
            (Error::UnknownAttribute("R1.A9".into()), "R1.A9"),
            (
                Error::StreamOutOfRange {
                    stream: 5,
                    n_streams: 3,
                },
                "stream 5",
            ),
            (
                Error::AttrOutOfRange {
                    stream: 1,
                    attr: 4,
                    arity: 2,
                },
                "attribute 4",
            ),
            (Error::TooFewStreams(1), "got 1"),
            (Error::DisconnectedJoinGraph, "cross product"),
            (Error::SelfJoinPredicate(2), "stream 2"),
            (Error::InvalidConfig("bad".into()), "bad"),
            (Error::Shard("worker 2 panicked".into()), "worker 2"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::TooFewStreams(0));
    }
}
