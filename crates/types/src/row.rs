//! Inline attribute rows.

use crate::value::Value;
use serde::{json, Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;

/// Attribute count a [`Row`] stores inline before spilling to the heap.
///
/// The paper's workloads (and every schema in this repo) carry 2–4
/// attributes per stream, so the common case pays no allocation at all.
pub const ROW_INLINE: usize = 4;

/// A stream tuple's attribute values: a small-vector of [`Value`]s.
///
/// Rows up to [`ROW_INLINE`] values live inline in the enclosing
/// [`crate::Tuple`] (no heap allocation, `Clone` is a plain copy); wider
/// schemas spill to a `Vec<Value>` and behave exactly like before. `Row`
/// dereferences to `&[Value]`, so indexing, iteration, `len()` and slice
/// coercion all work as they did when `Tuple::values` was a `Vec`.
///
/// Serialization is a plain sequence, wire-compatible with `Vec<Value>`
/// (existing JSON/CSV artifacts parse unchanged).
#[derive(Clone)]
pub struct Row(Repr);

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [Value; ROW_INLINE] },
    Spill(Vec<Value>),
}

impl Row {
    /// The empty row.
    #[inline]
    pub const fn new() -> Self {
        Row(Repr::Inline {
            len: 0,
            buf: [Value(0); ROW_INLINE],
        })
    }

    /// Builds a row by copying a slice (inline when it fits).
    #[inline]
    pub fn from_slice(values: &[Value]) -> Self {
        if values.len() <= ROW_INLINE {
            let mut buf = [Value(0); ROW_INLINE];
            buf[..values.len()].copy_from_slice(values);
            Row(Repr::Inline {
                len: values.len() as u8,
                buf,
            })
        } else {
            Row(Repr::Spill(values.to_vec()))
        }
    }

    /// Appends a value, spilling to the heap past [`ROW_INLINE`].
    pub fn push(&mut self, value: Value) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                if (*len as usize) < ROW_INLINE {
                    buf[*len as usize] = value;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(ROW_INLINE + 1);
                    vec.extend_from_slice(&buf[..]);
                    vec.push(value);
                    self.0 = Repr::Spill(vec);
                }
            }
            Repr::Spill(vec) => vec.push(value),
        }
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spill(vec) => vec,
        }
    }

    /// True when the row is stored inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Deref for Row {
    type Target = [Value];

    #[inline]
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl Default for Row {
    #[inline]
    fn default() -> Self {
        Row::new()
    }
}

impl From<Vec<Value>> for Row {
    #[inline]
    fn from(values: Vec<Value>) -> Self {
        if values.len() <= ROW_INLINE {
            Row::from_slice(&values)
        } else {
            Row(Repr::Spill(values))
        }
    }
}

impl From<&[Value]> for Row {
    #[inline]
    fn from(values: &[Value]) -> Self {
        Row::from_slice(values)
    }
}

impl<const N: usize> From<[Value; N]> for Row {
    #[inline]
    fn from(values: [Value; N]) -> Self {
        Row::from_slice(&values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut row = Row::new();
        for v in iter {
            row.push(v);
        }
        row
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Row {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Row {}

impl PartialEq<Vec<Value>> for Row {
    #[inline]
    fn eq(&self, other: &Vec<Value>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Row> for Vec<Value> {
    #[inline]
    fn eq(&self, other: &Row) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Value]> for Row {
    #[inline]
    fn eq(&self, other: &[Value]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Row {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl Serialize for Row {
    fn to_json_value(&self) -> json::Value {
        self.as_slice().to_json_value()
    }
}

impl Deserialize for Row {
    fn from_json_value(v: &json::Value) -> std::result::Result<Self, json::DeError> {
        Ok(Vec::<Value>::from_json_value(v)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: u64) -> Vec<Value> {
        (0..n).map(Value).collect()
    }

    #[test]
    fn inline_up_to_four_then_spills() {
        for n in 0..=4 {
            assert!(Row::from(vals(n)).is_inline(), "arity {n} must be inline");
        }
        assert!(!Row::from(vals(5)).is_inline(), "arity 5 must spill");
    }

    #[test]
    fn push_crosses_the_spill_boundary() {
        let mut row = Row::new();
        for i in 0..6u64 {
            row.push(Value(i));
            assert_eq!(row.len(), i as usize + 1);
            assert_eq!(row.is_inline(), row.len() <= ROW_INLINE);
        }
        assert_eq!(row, vals(6));
    }

    #[test]
    fn slice_semantics_match_vec() {
        let row = Row::from(vals(3));
        assert_eq!(row[1], Value(1));
        assert_eq!(row.len(), 3);
        assert_eq!(row.iter().count(), 3);
        assert_eq!((&row).into_iter().count(), 3);
        let slice: &[Value] = &row;
        assert_eq!(slice, vals(3).as_slice());
        assert!(Row::new().is_empty());
    }

    #[test]
    fn equality_ignores_representation() {
        // Same contents, one inline and one forced to spill via shrink.
        let mut spilled = Row::from(vals(5));
        assert!(!spilled.is_inline());
        spilled = Row(Repr::Spill(vals(3)));
        assert_eq!(spilled, Row::from(vals(3)));
        assert_eq!(spilled, vals(3));
        assert_eq!(vals(3), spilled);
    }

    #[test]
    fn collects_from_iterators() {
        let row: Row = (0..3).map(Value).collect();
        assert_eq!(row, vals(3));
        let wide: Row = (0..7).map(Value).collect();
        assert_eq!(wide, vals(7));
        assert!(!wide.is_inline());
    }

    #[test]
    fn debug_matches_vec_format() {
        assert_eq!(format!("{:?}", Row::from(vals(2))), format!("{:?}", vals(2)));
    }

    #[test]
    fn serde_is_wire_compatible_with_vec() {
        for n in [0u64, 3, 6] {
            let row = Row::from(vals(n));
            let json = serde_json::to_string(&row).unwrap();
            assert_eq!(json, serde_json::to_string(&vals(n)).unwrap());
            let back: Row = serde_json::from_str(&json).unwrap();
            assert_eq!(back, row);
            let as_vec: Vec<Value> = serde_json::from_str(&json).unwrap();
            assert_eq!(as_vec, row);
        }
    }

    #[test]
    fn hash_agrees_with_equality() {
        use std::collections::HashSet;
        let set: HashSet<Row> = [Row::from(vals(2)), Row::from(vals(2)), Row::from(vals(3))]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
