//! Stream naming: identifiers, schemas and the catalog.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the `n` input streams of a multi-way join.
///
/// Stream ids are dense indexes `0..n` assigned by the [`Catalog`] in
/// registration order, which lets every per-stream structure in the engine
/// be a plain `Vec` indexed by `StreamId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub usize);

impl StreamId {
    /// The dense index of this stream.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A reference to one attribute of one stream, e.g. `R2.A1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// The stream the attribute belongs to.
    pub stream: StreamId,
    /// The positional index of the attribute within the stream's schema.
    pub attr: usize,
}

impl AttrRef {
    /// Convenience constructor.
    #[inline]
    pub fn new(stream: StreamId, attr: usize) -> Self {
        AttrRef { stream, attr }
    }
}

impl fmt::Debug for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.A{}", self.stream, self.attr)
    }
}

/// The schema of one input stream: a name plus ordered attribute names.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSchema {
    /// Human-readable stream name (e.g. `"R1"`, `"Oct03"`).
    pub name: String,
    /// Ordered attribute names (e.g. `["A1", "A2"]`).
    pub attrs: Vec<String>,
}

impl StreamSchema {
    /// Builds a schema from a name and attribute names.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> Self {
        StreamSchema {
            name: name.into(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Resolves an attribute name to its positional index.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }
}

/// The set of streams participating in a query, in `StreamId` order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    streams: Vec<StreamSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a stream and returns its dense id.
    pub fn add_stream(&mut self, schema: StreamSchema) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(schema);
        id
    }

    /// Number of registered streams.
    #[inline]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no streams are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The schema of `id`, if registered.
    pub fn schema(&self, id: StreamId) -> Option<&StreamSchema> {
        self.streams.get(id.0)
    }

    /// Resolves `"R2.A1"`-style dotted names into an [`AttrRef`].
    pub fn resolve(&self, dotted: &str) -> Result<AttrRef> {
        let (stream_name, attr_name) = dotted
            .split_once('.')
            .ok_or_else(|| Error::UnknownAttribute(dotted.to_string()))?;
        let (idx, schema) = self
            .streams
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == stream_name)
            .ok_or_else(|| Error::UnknownStream(stream_name.to_string()))?;
        let attr = schema
            .attr_index(attr_name)
            .ok_or_else(|| Error::UnknownAttribute(dotted.to_string()))?;
        Ok(AttrRef::new(StreamId(idx), attr))
    }

    /// Iterates over `(StreamId, &StreamSchema)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, &StreamSchema)> {
        self.streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        c
    }

    #[test]
    fn dense_ids_in_registration_order() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let a = c.add_stream(StreamSchema::new("A", &["x"]));
        let b = c.add_stream(StreamSchema::new("B", &["y"]));
        assert_eq!(a, StreamId(0));
        assert_eq!(b, StreamId(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.schema(a).unwrap().name, "A");
        assert!(c.schema(StreamId(5)).is_none());
    }

    #[test]
    fn resolve_dotted_names() {
        let c = demo_catalog();
        let r = c.resolve("R2.A1").unwrap();
        assert_eq!(r, AttrRef::new(StreamId(1), 0));
        let r = c.resolve("R3.A2").unwrap();
        assert_eq!(r, AttrRef::new(StreamId(2), 1));
    }

    #[test]
    fn resolve_errors() {
        let c = demo_catalog();
        assert!(matches!(c.resolve("nope"), Err(Error::UnknownAttribute(_))));
        assert!(matches!(c.resolve("R9.A1"), Err(Error::UnknownStream(_))));
        assert!(matches!(c.resolve("R1.A9"), Err(Error::UnknownAttribute(_))));
    }

    #[test]
    fn schema_helpers() {
        let s = StreamSchema::new("R1", &["A1", "A2"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr_index("A2"), Some(1));
        assert_eq!(s.attr_index("zz"), None);
    }

    #[test]
    fn iter_yields_all() {
        let c = demo_catalog();
        let names: Vec<_> = c.iter().map(|(_, s)| s.name.clone()).collect();
        assert_eq!(names, vec!["R1", "R2", "R3"]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(StreamId(2).to_string(), "S2");
        assert_eq!(format!("{:?}", AttrRef::new(StreamId(1), 0)), "S1.A0");
    }
}
