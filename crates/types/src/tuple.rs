//! Stream tuples.

use crate::row::Row;
use crate::schema::StreamId;
use crate::time::VTime;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A globally unique, monotonically increasing arrival sequence number.
///
/// Sequence numbers double as tie-breakers (two tuples can share a virtual
/// timestamp) and as the "timestamp" of tuple-based windows (paper §4.1:
/// a tuple-based window is modelled as a time-based window where one tuple
/// arrives per time unit — the sequence number *is* that time unit).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The sequence number after this one.
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A timestamped row flowing on one input stream.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    /// The stream this tuple arrived on.
    pub stream: StreamId,
    /// Arrival time in virtual time.
    pub ts: VTime,
    /// Global arrival sequence number (assigned by the source/driver).
    pub seq: SeqNo,
    /// Attribute values, positionally matching the stream's schema
    /// (stored inline for arities up to [`crate::ROW_INLINE`]).
    pub values: Row,
}

impl Tuple {
    /// Builds a tuple from raw parts.
    pub fn new(stream: StreamId, ts: VTime, seq: SeqNo, values: impl Into<Row>) -> Self {
        Tuple {
            stream,
            ts,
            seq,
            values: values.into(),
        }
    }

    /// The value of attribute `attr`, panicking on out-of-range access.
    ///
    /// Attribute indexes come from a validated [`crate::JoinQuery`], so an
    /// out-of-range index is a programming error, not a data error.
    #[inline]
    pub fn value(&self, attr: usize) -> Value {
        self.values[attr]
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:?}@{:.3}s{:?}",
            self.stream,
            self.seq,
            self.ts.as_secs_f64(),
            self.values
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(
            StreamId(1),
            VTime::from_secs(3),
            SeqNo(7),
            vec![Value(10), Value(20)],
        )
    }

    #[test]
    fn accessors() {
        let t = t();
        assert_eq!(t.value(0), Value(10));
        assert_eq!(t.value(1), Value(20));
        assert_eq!(t.arity(), 2);
        assert_eq!(t.stream, StreamId(1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_attr_panics() {
        let _ = t().value(2);
    }

    #[test]
    fn seqno_next_increments() {
        assert_eq!(SeqNo(0).next(), SeqNo(1));
        assert!(SeqNo(1) < SeqNo(2));
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", t());
        assert!(s.contains("S1"), "{s}");
        assert!(s.contains("#7"), "{s}");
    }
}
