//! Discrete attribute values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A discrete attribute value.
///
/// The paper's workloads (synthetic Zipfian regions, discretized census
/// attributes) all draw join keys from small integer domains, so a `u64`
/// payload is sufficient and keeps tuples `Copy`-cheap. A newtype (rather
/// than a bare `u64`) prevents accidental mixing of values with counts,
/// slots or sequence numbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Value(pub u64);

impl Value {
    /// The raw integer payload.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Value {
    #[inline]
    fn from(v: u64) -> Self {
        Value(v)
    }
}

impl From<u32> for Value {
    #[inline]
    fn from(v: u32) -> Self {
        Value(u64::from(v))
    }
}

impl From<Value> for u64 {
    #[inline]
    fn from(v: Value) -> Self {
        v.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn conversions_round_trip() {
        let v = Value::from(42u64);
        assert_eq!(v.raw(), 42);
        assert_eq!(u64::from(v), 42);
        assert_eq!(Value::from(7u32), Value(7));
    }

    #[test]
    fn ordering_matches_payload() {
        assert!(Value(1) < Value(2));
        assert_eq!(Value(5), Value(5));
    }

    #[test]
    fn hashable_in_sets() {
        let set: HashSet<Value> = [Value(1), Value(2), Value(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value(9).to_string(), "9");
        assert_eq!(format!("{:?}", Value(9)), "v9");
    }

    #[test]
    fn serde_round_trip() {
        let v = Value(123);
        let s = serde_json::to_string(&v).unwrap();
        assert_eq!(s, "123");
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
