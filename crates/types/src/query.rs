//! Multi-way sliding-window equi-join queries.
//!
//! The query class the paper targets (§2) is
//!
//! ```sql
//! SELECT * FROM S1 [WINDOW p1], ..., Sn [WINDOW pn] WHERE theta
//! ```
//!
//! where `theta` is a conjunction of equi-join predicates whose graph
//! connects all `n` streams. [`JoinQuery`] captures exactly that, validates
//! it once at construction, and pre-computes the per-stream predicate
//! incidence lists the join executor and the sketch estimator both need.

use crate::error::{Error, Result};
use crate::schema::{AttrRef, Catalog, StreamId};
use crate::time::VDur;
use crate::tuple::SeqNo;
use serde::{Deserialize, Serialize};

/// Handle for one standing query registered with a multi-query engine.
///
/// Ids are dense and assigned in registration order by the engine builder;
/// a query added at runtime receives the next unused id. Ids are never
/// reused within one engine's lifetime, so a [`QueryId`] stays a stable key
/// for sinks, reports and metrics even after other queries are removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id a single-query engine emits under (registration index 0).
    pub const SOLO: QueryId = QueryId(0);

    /// The dense registration index of this query.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for QueryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// How each stream's sliding window is bounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Keep tuples whose age is below the given span (`p`-seconds window).
    Time(VDur),
    /// Keep the most recent `count` tuples (paper §4.1).
    Tuples(u64),
}

impl WindowSpec {
    /// A `p`-seconds time-based window.
    pub fn secs(p: u64) -> Self {
        WindowSpec::Time(VDur::from_secs(p))
    }

    /// The nominal capacity of the window in tuples, given an arrival rate.
    ///
    /// For a time-based window this is `rate * p` (the paper's "full
    /// window"); for a tuple-based window it is the count itself.
    pub fn nominal_tuples(&self, rate_per_sec: f64) -> u64 {
        match *self {
            WindowSpec::Time(p) => (rate_per_sec * p.as_secs_f64()).round() as u64,
            WindowSpec::Tuples(n) => n,
        }
    }
}

/// One equi-join predicate `left = right` between two distinct streams.
///
/// Each predicate identifies a *join-attribute pair* `j ∈ theta`; the sketch
/// layer assigns one four-wise-independent ±1 family per predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EquiPredicate {
    /// Left-hand attribute.
    pub left: AttrRef,
    /// Right-hand attribute.
    pub right: AttrRef,
}

impl EquiPredicate {
    /// Convenience constructor.
    pub fn new(left: AttrRef, right: AttrRef) -> Self {
        EquiPredicate { left, right }
    }

    /// The attribute this predicate constrains on `stream`, if incident.
    pub fn attr_on(&self, stream: StreamId) -> Option<usize> {
        if self.left.stream == stream {
            Some(self.left.attr)
        } else if self.right.stream == stream {
            Some(self.right.attr)
        } else {
            None
        }
    }

    /// The stream on the other side of the predicate, if `stream` is incident.
    pub fn other_side(&self, stream: StreamId) -> Option<AttrRef> {
        if self.left.stream == stream {
            Some(self.right)
        } else if self.right.stream == stream {
            Some(self.left)
        } else {
            None
        }
    }
}

/// Whether (and how) a query's arrivals can be hash-partitioned across
/// independent join workers with no cross-partition probes.
///
/// A query is key-partitionable exactly when every equi-predicate lies in a
/// single attribute-equivalence class: all attributes a result row must
/// agree on collapse to one join key, so routing each arrival by the value
/// of its stream's class attribute sends every potential match partner to
/// the same partition. The paper's chain query `R1.A1 = R2.A1 AND
/// R2.A2 = R3.A1` is *not* partitionable (R2 joins through two distinct
/// attributes), while `R1.A1 = R2.A1 AND R2.A1 = R3.A1` is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// All predicates share one attribute class; a tuple of stream `s`
    /// routes by the value of attribute `key_attrs[s]`.
    ByKey {
        /// The partition attribute of each stream, indexed by stream.
        key_attrs: Vec<usize>,
    },
    /// The predicate graph spans multiple attribute classes; any partition
    /// of one class separates match partners joined through another, so
    /// execution must stay on a single worker.
    Single {
        /// Human-readable explanation, surfaced in run reports.
        reason: String,
    },
}

impl Partitioning {
    /// The per-stream partition attributes, when partitionable.
    pub fn key_attrs(&self) -> Option<&[usize]> {
        match self {
            Partitioning::ByKey { key_attrs } => Some(key_attrs),
            Partitioning::Single { .. } => None,
        }
    }

    /// The degradation reason, when not partitionable.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Partitioning::ByKey { .. } => None,
            Partitioning::Single { reason } => Some(reason),
        }
    }
}

/// A validated multi-way sliding-window equi-join query.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JoinQuery {
    catalog: Catalog,
    predicates: Vec<EquiPredicate>,
    windows: Vec<WindowSpec>,
    /// `incidence[s]` = list of `(predicate index, attr on s)` for stream `s`.
    incidence: Vec<Vec<(usize, usize)>>,
}

impl JoinQuery {
    /// Builds and validates a query with the same window on every stream
    /// (the simplification the paper adopts: `p = p_i` for all `i`).
    pub fn uniform(
        catalog: Catalog,
        predicates: Vec<EquiPredicate>,
        window: WindowSpec,
    ) -> Result<Self> {
        let n = catalog.len();
        Self::new(catalog, predicates, vec![window; n])
    }

    /// Builds and validates a query with per-stream windows.
    pub fn new(
        catalog: Catalog,
        predicates: Vec<EquiPredicate>,
        windows: Vec<WindowSpec>,
    ) -> Result<Self> {
        let n = catalog.len();
        if n < 2 {
            return Err(Error::TooFewStreams(n));
        }
        if windows.len() != n {
            return Err(Error::InvalidConfig(format!(
                "{} window specs for {} streams",
                windows.len(),
                n
            )));
        }
        for pred in &predicates {
            for side in [pred.left, pred.right] {
                let s = side.stream.index();
                if s >= n {
                    return Err(Error::StreamOutOfRange {
                        stream: s,
                        n_streams: n,
                    });
                }
                let arity = self_arity(&catalog, side.stream);
                if side.attr >= arity {
                    return Err(Error::AttrOutOfRange {
                        stream: s,
                        attr: side.attr,
                        arity,
                    });
                }
            }
            if pred.left.stream == pred.right.stream {
                return Err(Error::SelfJoinPredicate(pred.left.stream.index()));
            }
        }
        if !connected(n, &predicates) {
            return Err(Error::DisconnectedJoinGraph);
        }
        let mut incidence = vec![Vec::new(); n];
        for (pi, pred) in predicates.iter().enumerate() {
            incidence[pred.left.stream.index()].push((pi, pred.left.attr));
            incidence[pred.right.stream.index()].push((pi, pred.right.attr));
        }
        Ok(JoinQuery {
            catalog,
            predicates,
            windows,
            incidence,
        })
    }

    /// Parses predicates given as dotted-name pairs, e.g.
    /// `[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")]`.
    pub fn from_names(
        catalog: Catalog,
        preds: &[(&str, &str)],
        window: WindowSpec,
    ) -> Result<Self> {
        let predicates = preds
            .iter()
            .map(|(l, r)| {
                Ok(EquiPredicate::new(
                    catalog.resolve(l)?,
                    catalog.resolve(r)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Self::uniform(catalog, predicates, window)
    }

    /// The stream catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of streams `n`.
    pub fn n_streams(&self) -> usize {
        self.catalog.len()
    }

    /// All equi-join predicates (conjunction `theta`).
    pub fn predicates(&self) -> &[EquiPredicate] {
        &self.predicates
    }

    /// The window spec of `stream`.
    pub fn window(&self, stream: StreamId) -> WindowSpec {
        self.windows[stream.index()]
    }

    /// All per-stream window specs.
    pub fn windows(&self) -> &[WindowSpec] {
        &self.windows
    }

    /// `(predicate index, attribute on stream)` pairs incident to `stream`.
    ///
    /// This is the set `j ∈ attrs(R_k) ∩ theta` over which the sketch layer
    /// multiplies ±1 variables, and the set of hash indexes the window store
    /// maintains for probing.
    pub fn incident(&self, stream: StreamId) -> &[(usize, usize)] {
        &self.incidence[stream.index()]
    }

    /// Distinct attribute indexes of `stream` that participate in theta.
    pub fn join_attrs(&self, stream: StreamId) -> Vec<usize> {
        let mut attrs: Vec<usize> = self.incidence[stream.index()]
            .iter()
            .map(|&(_, a)| a)
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// Whether all per-stream windows are tuple-based.
    pub fn all_tuple_based(&self) -> bool {
        self.windows
            .iter()
            .all(|w| matches!(w, WindowSpec::Tuples(_)))
    }

    /// The largest time-based window span, if any window is time-based.
    pub fn max_time_window(&self) -> Option<VDur> {
        self.windows
            .iter()
            .filter_map(|w| match w {
                WindowSpec::Time(d) => Some(*d),
                WindowSpec::Tuples(_) => None,
            })
            .max()
    }

    /// Analyzes the equi-predicate graph for hash-partitionability.
    ///
    /// Runs union-find over `(stream, attribute)` nodes, merging the two
    /// sides of every predicate. If all predicates land in one equivalence
    /// class the query is [`Partitioning::ByKey`]; each stream's partition
    /// attribute is its smallest attribute index in that class (connectivity
    /// of the join graph guarantees every stream has one). Otherwise the
    /// result is [`Partitioning::Single`] with the offending stream named.
    pub fn partitioning(&self) -> Partitioning {
        let arity: Vec<usize> = (0..self.n_streams())
            .map(|s| self_arity(&self.catalog, StreamId(s)))
            .collect();
        // Flat node ids: (stream, attr) -> offsets[stream] + attr.
        let mut offsets = vec![0usize; self.n_streams() + 1];
        for s in 0..self.n_streams() {
            offsets[s + 1] = offsets[s] + arity[s];
        }
        let mut parent: Vec<usize> = (0..offsets[self.n_streams()]).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let node = |r: AttrRef| offsets[r.stream.index()] + r.attr;
        for pred in &self.predicates {
            let (a, b) = (node(pred.left), node(pred.right));
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let class = find(&mut parent, node(self.predicates[0].left));
        for pred in &self.predicates {
            for side in [pred.left, pred.right] {
                if find(&mut parent, node(side)) != class {
                    // Name a stream joined through two classes for the
                    // report; by connectivity at least one exists.
                    let culprit = (0..self.n_streams())
                        .find(|&s| {
                            let roots: Vec<usize> = self.incidence[s]
                                .iter()
                                .map(|&(_, a)| find(&mut parent, offsets[s] + a))
                                .collect();
                            roots.windows(2).any(|w| w[0] != w[1])
                        })
                        .unwrap_or(side.stream.index());
                    let name = self
                        .catalog
                        .schema(StreamId(culprit))
                        .map(|sch| sch.name.clone())
                        .unwrap_or_else(|| format!("stream {culprit}"));
                    return Partitioning::Single {
                        reason: format!(
                            "predicates span multiple join-attribute classes \
                             ({name} joins through two distinct attributes)"
                        ),
                    };
                }
            }
        }
        let key_attrs = (0..self.n_streams())
            .map(|s| {
                (0..arity[s])
                    .find(|&a| find(&mut parent, offsets[s] + a) == class)
                    .expect("connected join graph reaches every stream")
            })
            .collect();
        Partitioning::ByKey { key_attrs }
    }

    /// The "lifetime horizon" of a tuple entering at sequence number `seq`:
    /// for tuple-based windows, the last global sequence number at which the
    /// tuple can still be alive, assuming round-robin arrivals.
    pub fn tuple_window_horizon(&self, stream: StreamId, seq: SeqNo) -> Option<SeqNo> {
        match self.windows[stream.index()] {
            WindowSpec::Tuples(c) => Some(SeqNo(seq.0 + c * self.n_streams() as u64)),
            WindowSpec::Time(_) => None,
        }
    }
}

fn self_arity(catalog: &Catalog, stream: StreamId) -> usize {
    catalog.schema(stream).map(|s| s.arity()).unwrap_or(0)
}

/// Union-find connectivity check over the predicate graph.
fn connected(n: usize, predicates: &[EquiPredicate]) -> bool {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for pred in predicates {
        let (a, b) = (pred.left.stream.index(), pred.right.stream.index());
        if a < n && b < n {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
    }
    let root0 = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::StreamSchema;

    fn catalog3() -> Catalog {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        c
    }

    /// The paper's evaluation query: R1 ⋈ R2 ⋈ R3 on R1.A1=R2.A1, R2.A2=R3.A1.
    fn paper_query() -> JoinQuery {
        JoinQuery::from_names(
            catalog3(),
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    #[test]
    fn paper_query_validates() {
        let q = paper_query();
        assert_eq!(q.n_streams(), 3);
        assert_eq!(q.predicates().len(), 2);
        assert_eq!(q.window(StreamId(0)), WindowSpec::secs(500));
    }

    #[test]
    fn incidence_lists() {
        let q = paper_query();
        // R1 touches predicate 0 via A1.
        assert_eq!(q.incident(StreamId(0)), &[(0, 0)]);
        // R2 touches predicate 0 via A1 and predicate 1 via A2.
        assert_eq!(q.incident(StreamId(1)), &[(0, 0), (1, 1)]);
        // R3 touches predicate 1 via A1.
        assert_eq!(q.incident(StreamId(2)), &[(1, 0)]);
        assert_eq!(q.join_attrs(StreamId(1)), vec![0, 1]);
    }

    #[test]
    fn rejects_single_stream() {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1"]));
        let err = JoinQuery::uniform(c, vec![], WindowSpec::secs(1)).unwrap_err();
        assert_eq!(err, Error::TooFewStreams(1));
    }

    #[test]
    fn rejects_disconnected_graph() {
        // Only R1-R2 joined; R3 dangles -> cross product.
        let err = JoinQuery::from_names(
            catalog3(),
            &[("R1.A1", "R2.A1")],
            WindowSpec::secs(1),
        )
        .unwrap_err();
        assert_eq!(err, Error::DisconnectedJoinGraph);
    }

    #[test]
    fn rejects_self_join_predicate() {
        let err = JoinQuery::from_names(
            catalog3(),
            &[("R1.A1", "R1.A2"), ("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(1),
        )
        .unwrap_err();
        assert_eq!(err, Error::SelfJoinPredicate(0));
    }

    #[test]
    fn rejects_bad_attr() {
        let c = catalog3();
        let bad = EquiPredicate::new(
            AttrRef::new(StreamId(0), 5),
            AttrRef::new(StreamId(1), 0),
        );
        let ok = EquiPredicate::new(
            AttrRef::new(StreamId(1), 1),
            AttrRef::new(StreamId(2), 0),
        );
        let err = JoinQuery::uniform(c, vec![bad, ok], WindowSpec::secs(1)).unwrap_err();
        assert!(matches!(err, Error::AttrOutOfRange { attr: 5, .. }));
    }

    #[test]
    fn rejects_bad_stream_index() {
        let c = catalog3();
        let bad = EquiPredicate::new(
            AttrRef::new(StreamId(7), 0),
            AttrRef::new(StreamId(1), 0),
        );
        let err = JoinQuery::uniform(c, vec![bad], WindowSpec::secs(1)).unwrap_err();
        assert!(matches!(err, Error::StreamOutOfRange { stream: 7, .. }));
    }

    #[test]
    fn window_spec_nominal_tuples() {
        assert_eq!(WindowSpec::secs(500).nominal_tuples(3.344), 1672);
        assert_eq!(WindowSpec::Tuples(99).nominal_tuples(123.0), 99);
    }

    #[test]
    fn predicate_sides() {
        let q = paper_query();
        let p0 = q.predicates()[0];
        assert_eq!(p0.attr_on(StreamId(0)), Some(0));
        assert_eq!(p0.attr_on(StreamId(2)), None);
        assert_eq!(
            p0.other_side(StreamId(0)),
            Some(AttrRef::new(StreamId(1), 0))
        );
        assert_eq!(p0.other_side(StreamId(2)), None);
    }

    #[test]
    fn per_stream_windows_and_helpers() {
        let q = JoinQuery::new(
            catalog3(),
            vec![
                EquiPredicate::new(AttrRef::new(StreamId(0), 0), AttrRef::new(StreamId(1), 0)),
                EquiPredicate::new(AttrRef::new(StreamId(1), 1), AttrRef::new(StreamId(2), 0)),
            ],
            vec![
                WindowSpec::secs(100),
                WindowSpec::secs(200),
                WindowSpec::Tuples(50),
            ],
        )
        .unwrap();
        assert_eq!(q.max_time_window(), Some(VDur::from_secs(200)));
        assert!(!q.all_tuple_based());
        assert_eq!(
            q.tuple_window_horizon(StreamId(2), SeqNo(10)),
            Some(SeqNo(10 + 50 * 3))
        );
        assert_eq!(q.tuple_window_horizon(StreamId(0), SeqNo(10)), None);
    }

    #[test]
    fn paper_chain_is_not_partitionable() {
        // R2 joins via A1 (pred 0) and A2 (pred 1): two attribute classes.
        let p = paper_query().partitioning();
        assert_eq!(p.key_attrs(), None);
        let reason = p.reason().expect("degrade reason");
        assert!(reason.contains("R2"), "{reason}");
    }

    #[test]
    fn single_attribute_chain_partitions_by_key() {
        let q = JoinQuery::from_names(
            catalog3(),
            &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")],
            WindowSpec::secs(10),
        )
        .unwrap();
        assert_eq!(
            q.partitioning(),
            Partitioning::ByKey {
                key_attrs: vec![0, 0, 0]
            }
        );
    }

    #[test]
    fn mixed_attrs_in_one_class_still_partition() {
        // R3 participates through A2 even though the others use A1; all
        // predicates still collapse to one equivalence class.
        let q = JoinQuery::from_names(
            catalog3(),
            &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A2")],
            WindowSpec::secs(10),
        )
        .unwrap();
        assert_eq!(
            q.partitioning(),
            Partitioning::ByKey {
                key_attrs: vec![0, 0, 1]
            }
        );
    }

    #[test]
    fn pair_query_with_two_predicates_is_not_partitionable() {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("L", &["k", "v"]));
        c.add_stream(StreamSchema::new("R", &["k", "v"]));
        let q = JoinQuery::from_names(
            c,
            &[("L.k", "R.k"), ("L.v", "R.v")],
            WindowSpec::secs(5),
        )
        .unwrap();
        assert!(q.partitioning().reason().is_some());
    }

    /// Enumerates every non-shardable query shape alongside the exact
    /// degrade-reason string it reports: (1) the paper's chain (middle
    /// stream bridges two attribute classes), (2) a pair query with two
    /// independent predicates, (3) a star whose hub fans out through
    /// distinct attributes, (4) a four-stream double chain whose interior
    /// streams each bridge classes (the lowest-indexed culprit is named).
    /// The sharded engine surfaces these strings verbatim (when broadcast
    /// mode is off), so their wording is pinned here.
    #[test]
    fn degrade_reasons_enumerate_non_shardable_shapes() {
        let reason = |q: &JoinQuery| q.partitioning().reason().unwrap().to_owned();

        let chain = paper_query();
        assert_eq!(
            reason(&chain),
            "predicates span multiple join-attribute classes \
             (R2 joins through two distinct attributes)"
        );

        let mut pair_cat = Catalog::new();
        pair_cat.add_stream(StreamSchema::new("L", &["k", "v"]));
        pair_cat.add_stream(StreamSchema::new("R", &["k", "v"]));
        let pair = JoinQuery::from_names(
            pair_cat,
            &[("L.k", "R.k"), ("L.v", "R.v")],
            WindowSpec::secs(5),
        )
        .unwrap();
        assert_eq!(
            reason(&pair),
            "predicates span multiple join-attribute classes \
             (L joins through two distinct attributes)"
        );

        let mut star_cat = Catalog::new();
        star_cat.add_stream(StreamSchema::new("Hub", &["a", "b"]));
        star_cat.add_stream(StreamSchema::new("S1", &["k"]));
        star_cat.add_stream(StreamSchema::new("S2", &["k"]));
        let star = JoinQuery::from_names(
            star_cat,
            &[("Hub.a", "S1.k"), ("Hub.b", "S2.k")],
            WindowSpec::secs(5),
        )
        .unwrap();
        assert_eq!(
            reason(&star),
            "predicates span multiple join-attribute classes \
             (Hub joins through two distinct attributes)"
        );

        let mut four_cat = Catalog::new();
        for name in ["R1", "R2", "R3", "R4"] {
            four_cat.add_stream(StreamSchema::new(name, &["A1", "A2"]));
        }
        let double_chain = JoinQuery::from_names(
            four_cat,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1"), ("R3.A2", "R4.A1")],
            WindowSpec::secs(5),
        )
        .unwrap();
        assert_eq!(
            reason(&double_chain),
            "predicates span multiple join-attribute classes \
             (R2 joins through two distinct attributes)",
            "the lowest-indexed bridging stream is named"
        );
    }

    #[test]
    fn cyclic_single_class_partitions() {
        let q = JoinQuery::from_names(
            catalog3(),
            &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1"), ("R3.A1", "R1.A1")],
            WindowSpec::secs(10),
        )
        .unwrap();
        assert!(q.partitioning().key_attrs().is_some());
    }

    #[test]
    fn mismatched_window_count_rejected() {
        let err = JoinQuery::new(
            catalog3(),
            vec![
                EquiPredicate::new(AttrRef::new(StreamId(0), 0), AttrRef::new(StreamId(1), 0)),
                EquiPredicate::new(AttrRef::new(StreamId(1), 1), AttrRef::new(StreamId(2), 0)),
            ],
            vec![WindowSpec::secs(1)],
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }
}
