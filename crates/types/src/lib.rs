//! Core types shared by every crate in the `mstream-shed` workspace.
//!
//! This crate deliberately has no knowledge of joins, sketches or shedding
//! policies; it only defines the vocabulary the rest of the system speaks:
//!
//! * [`Value`] — a discrete attribute value (join keys live in small
//!   discretized domains, as in the paper's evaluation).
//! * [`VTime`] / [`VDur`] — virtual time, microsecond-granular, used by the
//!   deterministic discrete-event simulation.
//! * [`Tuple`] — a timestamped row of values tagged with its source stream.
//! * [`Row`] — a tuple's attribute values, stored inline (no heap
//!   allocation) for arities up to [`ROW_INLINE`].
//! * [`StreamId`], [`AttrRef`], [`StreamSchema`], [`Catalog`] — naming.
//! * [`JoinQuery`] — a conjunctive multi-way equi-join over sliding windows,
//!   i.e. the query class the paper's load shedder targets.
//!
//! All types are plain data: `Clone`, `Debug`, and (where it makes sense)
//! `serde`-serializable so experiment configurations and results can be
//! persisted as JSON artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod query;
pub mod row;
pub mod schema;
pub mod time;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use query::{EquiPredicate, JoinQuery, Partitioning, QueryId, WindowSpec};
pub use row::{Row, ROW_INLINE};
pub use schema::{AttrRef, Catalog, StreamId, StreamSchema};
pub use time::{VDur, VTime};
pub use tuple::{SeqNo, Tuple};
pub use value::Value;
