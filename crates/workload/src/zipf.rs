//! A Zipfian sampler over ranks `1..=n`.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `(rank+1)^-z`.
///
/// `z = 0` degenerates to the uniform distribution; larger `z` concentrates
/// mass on low ranks. The cumulative table is precomputed so sampling is a
/// binary search — O(log n) per draw, fully deterministic given the rng.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
    z: f64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew parameter `z`.
    ///
    /// # Panics
    /// Panics if `n == 0`, or `z` is negative or non-finite.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(z >= 0.0 && z.is_finite(), "skew must be finite and >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-z);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Zipf { cumulative, z }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// The skew parameter.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Draws a rank in `0..n` (0 = most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// The probability assigned to `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_z_is_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, s) in &[(1usize, 0.5f64), (10, 1.0), (100, 2.0), (7, 0.1)] {
            let z = Zipf::new(n, s);
            let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} z={s} total={total}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10, 2.0);
        assert!(z.pmf(0) > 0.6, "rank 0 dominates at z=2: {}", z.pmf(0));
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(5));
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 50_000;
        let mut counts = [0usize; 5];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / draws as f64;
            assert!(
                (emp - z.pmf(r)).abs() < 0.01,
                "rank {r}: empirical {emp} vs pmf {}",
                z.pmf(r)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(20, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "skew must be finite")]
    fn negative_skew_rejected() {
        let _ = Zipf::new(3, -1.0);
    }
}
