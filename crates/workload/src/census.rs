//! A correlated categorical generator standing in for the CPS census data
//! (paper §5.2.2).
//!
//! The paper joins three monthly Current Population Survey extracts
//! (Oct'03, Apr'04, Oct'04) on discretized attributes Age (1–9),
//! Income (1–16) and Education (1–6). The raw microdata is not
//! redistributable, so this module synthesizes tuples from a correlated
//! model — see DESIGN.md §5 ("Substitutions"): the experiments only
//! exercise the joint frequency distribution of three small categorical
//! attributes across three months, so a model with realistic skew,
//! age→education→income dependence and mild month-over-month drift
//! exercises the identical code paths.
//!
//! Schema per month-stream: `(Age, Income, Education)` = attributes 0/1/2.
//! The paper's query joins `Oct03.Age = Apr04.Age` and
//! `Apr04.Education = Oct04.Education`.

use crate::trace::Trace;
use mstream_types::{Error, Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Attribute index of Age (domain 1–9).
pub const AGE: usize = 0;
/// Attribute index of Income (domain 1–16).
pub const INCOME: usize = 1;
/// Attribute index of Education (domain 1–6).
pub const EDUCATION: usize = 2;

/// Domain sizes, mirroring the paper's discretization.
pub const AGE_LEVELS: u64 = 9;
/// Income bracket count.
pub const INCOME_LEVELS: u64 = 16;
/// Education level count.
pub const EDUCATION_LEVELS: u64 = 6;

/// Generator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CensusConfig {
    /// Survey rows per month-stream (paper: ~65 000; default scaled to
    /// 6 500 for laptop-scale runs — see DESIGN.md parameter table).
    pub tuples_per_month: usize,
    /// Number of month-streams (paper: 3).
    pub months: usize,
    /// Strength of month-over-month marginal drift in `[0, 1]`.
    pub drift: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            tuples_per_month: 6_500,
            months: 3,
            drift: 0.08,
            seed: 0xCE25,
        }
    }
}

/// Deterministic census-like tuple generator.
#[derive(Clone, Debug)]
pub struct CensusGenerator {
    config: CensusConfig,
}

impl CensusGenerator {
    /// Validates and wraps the configuration.
    pub fn new(config: CensusConfig) -> Result<Self> {
        if config.months == 0 {
            return Err(Error::InvalidConfig("months must be >= 1".into()));
        }
        if config.tuples_per_month == 0 {
            return Err(Error::InvalidConfig(
                "tuples_per_month must be >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.drift) || !config.drift.is_finite() {
            return Err(Error::InvalidConfig("drift must be in [0, 1]".into()));
        }
        Ok(CensusGenerator { config })
    }

    /// The configuration in force.
    pub fn config(&self) -> &CensusConfig {
        &self.config
    }

    /// Generates the interleaved trace (round-robin across months, so all
    /// three "survey streams" flow concurrently, as the join requires).
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let per_month: Vec<Vec<Vec<Value>>> = (0..self.config.months)
            .map(|m| {
                (0..self.config.tuples_per_month)
                    .map(|_| self.sample_tuple(m, &mut rng))
                    .collect()
            })
            .collect();
        Trace::interleave(per_month)
    }

    /// Samples one `(Age, Income, Education)` row for month `m`.
    fn sample_tuple(&self, month: usize, rng: &mut StdRng) -> Vec<Value> {
        let drift = self.config.drift * month as f64;
        // Age: working-age bulge (bands 3-6 dominate), stable over months.
        let age_weights: Vec<f64> = (1..=AGE_LEVELS)
            .map(|a| {
                let x = a as f64;
                (-(x - 4.5) * (x - 4.5) / 8.0).exp() + 0.15
            })
            .collect();
        let age = 1 + sample_weighted(rng, &age_weights) as u64;

        // Education | Age: mid-skewed, shifted up for prime-age cohorts and
        // drifting slightly upward across months.
        let edu_center = 2.6 + 0.5 * gaussian_bump(age as f64, 4.0, 3.0) + 2.0 * drift;
        let edu_weights: Vec<f64> = (1..=EDUCATION_LEVELS)
            .map(|e| (-(e as f64 - edu_center) * (e as f64 - edu_center) / 2.0).exp() + 0.05)
            .collect();
        let education = 1 + sample_weighted(rng, &edu_weights) as u64;

        // Income | Education, Age: log-ish ladder centred on a level that
        // rises with education and peaks mid-career; months drift upward.
        let income_center = 2.0
            + 1.8 * education as f64
            + 2.0 * gaussian_bump(age as f64, 5.0, 2.5)
            + 3.0 * drift;
        let income_weights: Vec<f64> = (1..=INCOME_LEVELS)
            .map(|i| {
                (-(i as f64 - income_center) * (i as f64 - income_center) / 6.0).exp() + 0.02
            })
            .collect();
        let income = 1 + sample_weighted(rng, &income_weights) as u64;

        vec![Value(age), Value(income), Value(education)]
    }

    /// Human-readable synopsis for `--describe` output.
    pub fn describe(&self) -> String {
        format!(
            "Census-like data: {} months x {} tuples; attrs Age(1-{}), \
             Income(1-{}), Education(1-{}); drift {:.2}; seed {}",
            self.config.months,
            self.config.tuples_per_month,
            AGE_LEVELS,
            INCOME_LEVELS,
            EDUCATION_LEVELS,
            self.config.drift,
            self.config.seed
        )
    }
}

/// A unit bump at `center` with the given width.
fn gaussian_bump(x: f64, center: f64, width: f64) -> f64 {
    (-(x - center) * (x - center) / (2.0 * width * width)).exp()
}

/// Samples an index proportionally to non-negative `weights`.
fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::StreamId;

    fn small() -> CensusGenerator {
        CensusGenerator::new(CensusConfig {
            tuples_per_month: 2000,
            months: 3,
            drift: 0.1,
            seed: 5,
        })
        .unwrap()
    }

    #[test]
    fn domains_are_respected() {
        let trace = small().generate();
        assert_eq!(trace.len(), 6000);
        for item in &trace.items {
            let (a, i, e) = (
                item.values[AGE].raw(),
                item.values[INCOME].raw(),
                item.values[EDUCATION].raw(),
            );
            assert!((1..=AGE_LEVELS).contains(&a), "age {a}");
            assert!((1..=INCOME_LEVELS).contains(&i), "income {i}");
            assert!((1..=EDUCATION_LEVELS).contains(&e), "education {e}");
        }
    }

    #[test]
    fn months_interleave_round_robin() {
        let trace = small().generate();
        for (i, item) in trace.items.iter().take(9).enumerate() {
            assert_eq!(item.stream, StreamId(i % 3));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(small().generate(), small().generate());
    }

    #[test]
    fn age_distribution_is_skewed_not_uniform() {
        let trace = small().generate();
        let hist = trace.value_histogram(StreamId(0), AGE);
        let max = *hist.values().max().unwrap() as f64;
        let min = hist.values().min().copied().unwrap_or(0) as f64;
        assert!(max > 2.0 * min.max(1.0), "working-age bulge expected");
    }

    #[test]
    fn income_correlates_with_education() {
        let trace = small().generate();
        // Mean income for low vs high education on month 0.
        let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0u64, 0u64, 0u64, 0u64);
        for item in trace.per_stream(StreamId(0)) {
            let e = item.values[EDUCATION].raw();
            let i = item.values[INCOME].raw();
            if e <= 2 {
                lo_sum += i;
                lo_n += 1;
            } else if e >= 5 {
                hi_sum += i;
                hi_n += 1;
            }
        }
        assert!(lo_n > 20 && hi_n > 20, "both strata populated");
        let lo_mean = lo_sum as f64 / lo_n as f64;
        let hi_mean = hi_sum as f64 / hi_n as f64;
        assert!(
            hi_mean > lo_mean + 2.0,
            "income should rise with education: {lo_mean} vs {hi_mean}"
        );
    }

    #[test]
    fn drift_shifts_income_across_months() {
        let g = CensusGenerator::new(CensusConfig {
            tuples_per_month: 4000,
            months: 3,
            drift: 0.5,
            seed: 5,
        })
        .unwrap();
        let trace = g.generate();
        let mean_income = |s: usize| {
            let items: Vec<_> = trace.per_stream(StreamId(s)).collect();
            items
                .iter()
                .map(|it| it.values[INCOME].raw() as f64)
                .sum::<f64>()
                / items.len() as f64
        };
        assert!(
            mean_income(2) > mean_income(0) + 0.5,
            "month 2 income should drift up: {} vs {}",
            mean_income(0),
            mean_income(2)
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CensusGenerator::new(CensusConfig {
            months: 0,
            ..Default::default()
        })
        .is_err());
        assert!(CensusGenerator::new(CensusConfig {
            tuples_per_month: 0,
            ..Default::default()
        })
        .is_err());
        assert!(CensusGenerator::new(CensusConfig {
            drift: 1.5,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn describe_summarizes() {
        let d = small().describe();
        assert!(d.contains("3 months"));
        assert!(d.contains("Age(1-9)"));
    }
}
