//! Plain-text trace serialization: replaying external data through the
//! engine and persisting generated workloads.
//!
//! The format is a minimal CSV dialect, one arrival per line:
//!
//! ```csv
//! # any line starting with '#' is a comment; '# drift' marks a shift
//! stream,value,value,...
//! 0,17,42
//! 1,17,3
//! # drift
//! 2,9,9
//! ```
//!
//! The first column is the destination stream index; remaining columns are
//! the attribute values in schema order. Rows may have different arities
//! only if their streams' schemas do.

use crate::trace::Trace;
use mstream_types::{StreamId, Value};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// A malformed trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceIoError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceIoError {}

/// Writes `trace` in the CSV dialect (with `# drift` markers).
pub fn write_trace<W: Write>(trace: &Trace, mut out: W) -> std::io::Result<()> {
    let mut drift_iter = trace.drift_points.iter().peekable();
    for (i, item) in trace.items.iter().enumerate() {
        if drift_iter.peek() == Some(&&i) {
            writeln!(out, "# drift")?;
            drift_iter.next();
        }
        write!(out, "{}", item.stream.index())?;
        for v in &item.values {
            write!(out, ",{}", v.raw())?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Renders `trace` to a CSV string.
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("trace CSV is ASCII")
}

/// Parses a trace from a reader.
pub fn read_trace<R: Read>(input: R) -> Result<Trace, TraceIoError> {
    let mut trace = Trace::new();
    for (idx, line) in BufReader::new(input).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| TraceIoError {
            line: line_no,
            message: format!("read error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if comment.trim().eq_ignore_ascii_case("drift") {
                trace.mark_drift();
            }
            continue;
        }
        let mut fields = line.split(',');
        let stream_txt = fields.next().expect("split yields at least one field");
        let stream: usize = stream_txt.trim().parse().map_err(|_| TraceIoError {
            line: line_no,
            message: format!("bad stream index `{stream_txt}`"),
        })?;
        let values = fields
            .map(|f| {
                f.trim()
                    .parse::<u64>()
                    .map(Value)
                    .map_err(|_| TraceIoError {
                        line: line_no,
                        message: format!("bad value `{f}`"),
                    })
            })
            .collect::<Result<Vec<Value>, _>>()?;
        if values.is_empty() {
            return Err(TraceIoError {
                line: line_no,
                message: "a row needs at least one attribute value".into(),
            });
        }
        trace.push(StreamId(stream), values);
    }
    Ok(trace)
}

/// Parses a trace from a CSV string.
pub fn trace_from_csv(csv: &str) -> Result<Trace, TraceIoError> {
    read_trace(csv.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_a_small_trace() {
        let mut t = Trace::new();
        t.push(StreamId(0), vec![Value(17), Value(42)]);
        t.push(StreamId(1), vec![Value(17), Value(3)]);
        t.mark_drift();
        t.push(StreamId(2), vec![Value(9), Value(9)]);
        let csv = trace_to_csv(&t);
        assert!(csv.contains("0,17,42\n"));
        assert!(csv.contains("# drift\n"));
        let back = trace_from_csv(&csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tolerates_comments_blanks_and_spaces() {
        let csv = "# header comment\n\n 0 , 5 \n# note\n1,6\n";
        let t = trace_from_csv(csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.items[0].values, vec![Value(5)]);
        assert!(t.drift_points.is_empty());
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = trace_from_csv("0,1\nx,2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad stream index"));
        let err = trace_from_csv("0,1\n1,abc\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad value"));
        let err = trace_from_csv("7\n").unwrap_err();
        assert!(err.message.contains("at least one attribute"));
    }

    proptest! {
        /// Any generated trace round-trips through CSV bit-for-bit.
        #[test]
        fn csv_round_trip(items in proptest::collection::vec((0usize..4, 0u64..100, 0u64..100), 0..100),
                          drift_at in proptest::collection::vec(0usize..100, 0..4)) {
            let mut t = Trace::new();
            let mut drift: Vec<usize> = drift_at.into_iter().filter(|&d| d <= items.len()).collect();
            drift.sort_unstable();
            drift.dedup();
            for (i, (s, a, b)) in items.iter().enumerate() {
                if drift.contains(&i) {
                    t.mark_drift();
                }
                t.push(StreamId(*s), vec![Value(*a), Value(*b)]);
            }
            // Trailing drift markers (at == items.len()) are representable
            // but pointless; skip marking those.
            let back = trace_from_csv(&trace_to_csv(&t)).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}
