//! Replayable arrival traces.

use mstream_types::{Row, StreamId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One arrival: which stream it lands on and its attribute values.
///
/// Timestamps and sequence numbers are deliberately absent — the simulation
/// driver assigns them according to the arrival-rate model under test, so
/// the same trace can be replayed at different rates (e.g. Figure 6's
/// overload experiment reuses Figure 2's data at 5× the service rate).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceItem {
    /// Destination stream.
    pub stream: StreamId,
    /// Attribute values in schema order (inline for arities up to
    /// [`mstream_types::ROW_INLINE`], so replay clones are free).
    pub values: Row,
}

/// A deterministic arrival sequence, plus the positions where the
/// generating distribution changed (concept-drift markers).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Arrivals in order.
    pub items: Vec<TraceItem>,
    /// Indexes into `items` where a distribution shift begins.
    pub drift_points: Vec<usize>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an arrival.
    pub fn push(&mut self, stream: StreamId, values: impl Into<Row>) {
        self.items.push(TraceItem {
            stream,
            values: values.into(),
        });
    }

    /// Marks the *next* pushed item as the start of a new distribution.
    pub fn mark_drift(&mut self) {
        self.drift_points.push(self.items.len());
    }

    /// Arrivals destined for `stream`.
    pub fn per_stream(&self, stream: StreamId) -> impl Iterator<Item = &TraceItem> {
        self.items.iter().filter(move |it| it.stream == stream)
    }

    /// Count of arrivals per stream id.
    pub fn stream_counts(&self) -> HashMap<StreamId, usize> {
        let mut counts = HashMap::new();
        for it in &self.items {
            *counts.entry(it.stream).or_insert(0) += 1;
        }
        counts
    }

    /// Frequency of each value of attribute `attr` on `stream` — used by
    /// tests and by `--describe` workload summaries.
    pub fn value_histogram(&self, stream: StreamId, attr: usize) -> HashMap<Value, usize> {
        let mut hist = HashMap::new();
        for it in self.per_stream(stream) {
            *hist.entry(it.values[attr]).or_insert(0) += 1;
        }
        hist
    }

    /// Round-robin interleaves per-stream item lists into one trace:
    /// stream 0's first item, stream 1's first, …, stream 0's second, ….
    /// Shorter lists simply run out (their turn is skipped).
    pub fn interleave(per_stream: Vec<Vec<Vec<Value>>>) -> Trace {
        let mut trace = Trace::new();
        let longest = per_stream.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..longest {
            for (s, items) in per_stream.iter().enumerate() {
                if let Some(values) = items.get(round) {
                    trace.push(StreamId(s), values.clone());
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Vec<Value> {
        vec![Value(x)]
    }

    #[test]
    fn push_and_counts() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(StreamId(0), v(1));
        t.push(StreamId(1), v(2));
        t.push(StreamId(0), v(3));
        assert_eq!(t.len(), 3);
        let counts = t.stream_counts();
        assert_eq!(counts[&StreamId(0)], 2);
        assert_eq!(counts[&StreamId(1)], 1);
    }

    #[test]
    fn drift_markers_record_positions() {
        let mut t = Trace::new();
        t.push(StreamId(0), v(1));
        t.mark_drift();
        t.push(StreamId(0), v(2));
        t.push(StreamId(0), v(3));
        t.mark_drift();
        t.push(StreamId(0), v(4));
        assert_eq!(t.drift_points, vec![1, 3]);
    }

    #[test]
    fn interleave_round_robins() {
        let t = Trace::interleave(vec![
            vec![v(10), v(11), v(12)],
            vec![v(20)],
            vec![v(30), v(31)],
        ]);
        let order: Vec<(usize, u64)> = t
            .items
            .iter()
            .map(|it| (it.stream.index(), it.values[0].raw()))
            .collect();
        assert_eq!(
            order,
            vec![(0, 10), (1, 20), (2, 30), (0, 11), (2, 31), (0, 12)]
        );
    }

    #[test]
    fn histogram_counts_values() {
        let mut t = Trace::new();
        t.push(StreamId(0), v(5));
        t.push(StreamId(0), v(5));
        t.push(StreamId(0), v(6));
        t.push(StreamId(1), v(5));
        let h = t.value_histogram(StreamId(0), 0);
        assert_eq!(h[&Value(5)], 2);
        assert_eq!(h[&Value(6)], 1);
        assert_eq!(h.get(&Value(7)), None);
    }
}
