//! The Vitter & Wang region-based synthetic generator (paper §5.1, Table 1).
//!
//! Each relation's attribute space (`domain^arity` integer cells) receives
//! `n_regions` rectangular regions of `volume` cells centred at uniformly
//! random points. Tuple mass is distributed Zipf(`z_inter`) **across**
//! regions and Zipf(`z_intra`) **within** each region, where a cell's
//! intra-region rank is its distance from the region center — "the one near
//! the center is more frequent". Every region draws its own `z_intra`
//! uniformly from the configured range (the paper's data sets are labelled
//! by ranges such as 0.1–0.5 or 1.6–2.0).
//!
//! **Concept drift** (paper §5.1: "we input the tuples to the system from
//! the sources alternatively in a prescribed order") is reproduced by
//! feeding the data one region-phase at a time: within a phase every
//! relation emits only its phase-th region's tuples, in random order,
//! interleaved round-robin across relations; phase boundaries are recorded
//! as drift markers.

use crate::trace::Trace;
use crate::zipf::Zipf;
use mstream_types::{Error, Result, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a generated data set is ordered into an arrival stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedOrder {
    /// All tuples of a relation are shuffled together: the value
    /// distribution is stationary over the run. Used by every experiment
    /// except the concept-drift one.
    Stationary,
    /// Tuples are fed one region-phase at a time (equal-length phases, one
    /// region each, random order within a phase): the hot cells change at
    /// every phase boundary, simulating concept drift (Figure 5). Phase
    /// boundaries are recorded as the trace's drift points.
    RegionPhases,
}

/// Configuration mirroring the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionsConfig {
    /// Number of relations/streams (Table 1: 3).
    pub n_relations: usize,
    /// Attributes per relation (Table 1: 2 — `R(A1, A2)`).
    pub arity: usize,
    /// Size of each attribute domain (Table 1: 100).
    pub domain: u64,
    /// Regions per relation (Table 1: 10).
    pub n_regions: usize,
    /// Cells per region (Table 1: "Volume 1[000]" — 1000 cells, i.e. each
    /// region covers 10% of the 100x100 attribute space; this is the
    /// reading under which low `z_intra` makes the overall value
    /// distribution "nearly uniform", as the paper observes).
    pub volume: usize,
    /// Zipf skew across regions (Table 1: 1.0).
    pub z_inter: f64,
    /// Range from which each region draws its within-region skew
    /// (the paper's data sets: 0.1–0.5, 0.6–1.0, 1.1–1.5, 1.6–2.0).
    pub z_intra: (f64, f64),
    /// Per-relation displacement (in cells, per axis) of each region
    /// center from the data set's base layout. 0 = identical layouts on
    /// every stream; large values decorrelate the streams completely.
    pub center_jitter: u64,
    /// Number of evenly spaced anchor coordinates per axis that region
    /// centers snap to. Hot values then recur across attributes and
    /// relations, so chains of hot cells exist (some with strong
    /// continuations, some dead ends) — the structure a multi-way-aware
    /// shedder exploits. `None` draws centers uniformly at random.
    pub anchor_grid: Option<u64>,
    /// Tuples generated per relation (Table 1: 10 000).
    pub tuples_per_relation: usize,
    /// Arrival ordering (stationary vs region-phase drift).
    pub feed: FeedOrder,
    /// Master seed; every derived choice is deterministic in it.
    pub seed: u64,
}

impl Default for RegionsConfig {
    fn default() -> Self {
        RegionsConfig {
            n_relations: 3,
            arity: 2,
            domain: 100,
            n_regions: 10,
            volume: 1000,
            z_inter: 1.0,
            z_intra: (1.6, 2.0),
            center_jitter: 0,
            anchor_grid: Some(10),
            tuples_per_relation: 10_000,
            feed: FeedOrder::Stationary,
            seed: 0xDA7A,
        }
    }
}

impl RegionsConfig {
    /// The paper's four data sets differ only in the `z_intra` range.
    pub fn with_z_intra(lo: f64, hi: f64) -> Self {
        RegionsConfig {
            z_intra: (lo, hi),
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<()> {
        let check = |ok: bool, msg: &str| {
            if ok {
                Ok(())
            } else {
                Err(Error::InvalidConfig(msg.to_string()))
            }
        };
        check(self.n_relations >= 1, "n_relations must be >= 1")?;
        check(self.arity >= 1, "arity must be >= 1")?;
        check(self.domain >= 1, "domain must be >= 1")?;
        check(self.n_regions >= 1, "n_regions must be >= 1")?;
        check(self.volume >= 1, "volume must be >= 1")?;
        check(
            (self.volume as u64) <= self.domain.pow(self.arity as u32),
            "volume exceeds attribute space",
        )?;
        check(
            self.z_intra.0 <= self.z_intra.1 && self.z_intra.0 >= 0.0,
            "z_intra range must be ordered and non-negative",
        )?;
        check(self.z_inter >= 0.0, "z_inter must be non-negative")?;
        if let Some(g) = self.anchor_grid {
            check(g >= 1 && g <= self.domain, "anchor_grid must be in 1..=domain")?;
        }
        Ok(())
    }
}

/// One rectangular region: its cells ranked by distance from the center.
#[derive(Clone, Debug)]
struct Region {
    /// Cells in increasing distance-from-center order.
    cells: Vec<Vec<Value>>,
    /// This region's within-region skew.
    z_intra: f64,
}

/// A deterministic generator of region-structured relations.
#[derive(Clone, Debug)]
pub struct RegionsGenerator {
    config: RegionsConfig,
    /// `regions[r][g]` = region `g` of relation `r`.
    regions: Vec<Vec<Region>>,
    /// Tuples allocated to each region rank by Zipf(`z_inter`).
    tuples_per_region: Vec<usize>,
}

impl RegionsGenerator {
    /// Lays out regions for `config` (everything after this is sampling).
    pub fn new(config: RegionsConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // The data set draws one base layout of region centers, and every
        // relation uses a jittered copy of it (each center displaced by up
        // to +-jitter per axis). Shared structure gives the multi-way join
        // its mass (hot cells align across streams); the jitter decorrelates
        // the streams enough that a value hot in one joined pair is not
        // automatically hot in the rest of the chain — the structure that
        // separates multi-way-aware shedding from pairwise baselines.
        // Data sets differ by their seed ("different centers of regions").
        let draw_coord = |rng: &mut StdRng| -> i64 {
            match config.anchor_grid {
                Some(grid) => {
                    // Anchor k of g sits at the center of the k-th of g
                    // equal slices of the domain.
                    let k = rng.gen_range(0..grid);
                    ((2 * k + 1) * config.domain / (2 * grid)) as i64
                }
                None => rng.gen_range(0..config.domain) as i64,
            }
        };
        let base: Vec<(Vec<i64>, f64)> = (0..config.n_regions)
            .map(|_| {
                let center: Vec<i64> = (0..config.arity)
                    .map(|_| draw_coord(&mut rng))
                    .collect();
                let z_intra = if config.z_intra.0 == config.z_intra.1 {
                    config.z_intra.0
                } else {
                    rng.gen_range(config.z_intra.0..config.z_intra.1)
                };
                (center, z_intra)
            })
            .collect();
        let jitter = config.center_jitter as i64;
        let regions: Vec<Vec<Region>> = (0..config.n_relations)
            .map(|_| {
                base.iter()
                    .map(|(center, z_intra)| {
                        let center: Vec<i64> = center
                            .iter()
                            .map(|&c| {
                                let j = if jitter > 0 {
                                    rng.gen_range(-jitter..=jitter)
                                } else {
                                    0
                                };
                                (c + j).clamp(0, config.domain as i64 - 1)
                            })
                            .collect();
                        Region {
                            cells: nearest_cells(&center, config.domain, config.volume),
                            z_intra: *z_intra,
                        }
                    })
                    .collect()
            })
            .collect();
        let inter = Zipf::new(config.n_regions, config.z_inter);
        let mut tuples_per_region: Vec<usize> = (0..config.n_regions)
            .map(|g| (inter.pmf(g) * config.tuples_per_relation as f64).floor() as usize)
            .collect();
        // Distribute rounding leftovers to the head ranks.
        let assigned: usize = tuples_per_region.iter().sum();
        for i in 0..config.tuples_per_relation.saturating_sub(assigned) {
            tuples_per_region[i % config.n_regions] += 1;
        }
        Ok(RegionsGenerator {
            config,
            regions,
            tuples_per_region,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &RegionsConfig {
        &self.config
    }

    /// Generates the full trace according to the configured [`FeedOrder`].
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        match self.config.feed {
            FeedOrder::Stationary => self.generate_stationary(&mut rng),
            FeedOrder::RegionPhases => self.generate_phases(&mut rng),
        }
    }

    /// Stationary order: per relation, draw each region's Zipf(`z_inter`)
    /// share of tuples, shuffle the whole relation, interleave round-robin.
    fn generate_stationary(&self, rng: &mut StdRng) -> Trace {
        let per_relation: Vec<Vec<Vec<Value>>> = (0..self.config.n_relations)
            .map(|r| {
                let mut tuples = Vec::with_capacity(self.config.tuples_per_relation);
                for g in 0..self.config.n_regions {
                    let region = &self.regions[r][g];
                    let intra = Zipf::new(region.cells.len(), region.z_intra);
                    for _ in 0..self.tuples_per_region[g] {
                        tuples.push(region.cells[intra.sample(rng)].clone());
                    }
                }
                tuples.shuffle(rng);
                tuples
            })
            .collect();
        Trace::interleave(per_relation)
    }

    /// Drift order: equal-length phases. Phase `g`'s tuples are drawn 70%
    /// from region `g` and 30% from the stationary Zipf(`z_inter`) mixture
    /// over all regions, so the *dominant* hot cells move at every
    /// boundary while the join always has some background mass (a phase
    /// whose region happens to have no cross-stream partners would
    /// otherwise produce nothing for every policy, telling us nothing
    /// about shedding).
    fn generate_phases(&self, rng: &mut StdRng) -> Trace {
        let mut trace = Trace::new();
        let per_phase = (self.config.tuples_per_relation / self.config.n_regions).max(1);
        let inter = Zipf::new(self.config.n_regions, self.config.z_inter);
        for g in 0..self.config.n_regions {
            if g > 0 {
                trace.mark_drift();
            }
            let per_relation: Vec<Vec<Vec<Value>>> = (0..self.config.n_relations)
                .map(|r| {
                    let mut tuples: Vec<Vec<Value>> = (0..per_phase)
                        .map(|_| {
                            let region_idx = if rng.gen_bool(0.7) {
                                g
                            } else {
                                inter.sample(rng)
                            };
                            let region = &self.regions[r][region_idx];
                            let intra = Zipf::new(region.cells.len(), region.z_intra);
                            region.cells[intra.sample(rng)].clone()
                        })
                        .collect();
                    tuples.shuffle(rng);
                    tuples
                })
                .collect();
            let phase = Trace::interleave(per_relation);
            trace.items.extend(phase.items);
        }
        trace
    }

    /// A Table-1-style description of the data set.
    pub fn describe(&self) -> String {
        let c = &self.config;
        format!(
            "Relations: {} (arity {}); tuples/relation: {}; domain: {}; \
             regions: {}; volume: {}; z-inter: {}; z-intra: {:.1}-{:.1}; seed: {}",
            c.n_relations,
            c.arity,
            c.tuples_per_relation,
            c.domain,
            c.n_regions,
            c.volume,
            c.z_inter,
            c.z_intra.0,
            c.z_intra.1,
            c.seed
        )
    }
}

/// The `volume` cells of `[0, domain)^d` nearest to `center`, ordered by
/// squared Euclidean distance (lexicographic tiebreak for determinism).
fn nearest_cells(center: &[i64], domain: u64, volume: usize) -> Vec<Vec<Value>> {
    let d = center.len();
    let mut radius = 1i64;
    loop {
        let mut cells: Vec<(i64, Vec<u64>)> = Vec::new();
        let mut coord = vec![0i64; d];
        collect_box(center, domain, radius, 0, &mut coord, &mut cells);
        if cells.len() >= volume {
            cells.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            return cells
                .into_iter()
                .take(volume)
                .map(|(_, coords)| coords.into_iter().map(Value).collect())
                .collect();
        }
        radius *= 2;
        // The whole space has >= volume cells (validated), so this halts.
    }
}

/// Recursively enumerates integer cells within `radius` (per axis) of
/// `center`, clamped to the domain, recording squared distances.
fn collect_box(
    center: &[i64],
    domain: u64,
    radius: i64,
    axis: usize,
    coord: &mut Vec<i64>,
    out: &mut Vec<(i64, Vec<u64>)>,
) {
    if axis == center.len() {
        let dist: i64 = coord
            .iter()
            .zip(center)
            .map(|(&c, &ctr)| (c - ctr) * (c - ctr))
            .sum();
        out.push((dist, coord.iter().map(|&c| c as u64).collect()));
        return;
    }
    let lo = (center[axis] - radius).max(0);
    let hi = (center[axis] + radius).min(domain as i64 - 1);
    for c in lo..=hi {
        coord[axis] = c;
        collect_box(center, domain, radius, axis + 1, coord, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::StreamId;

    fn small_config() -> RegionsConfig {
        RegionsConfig {
            n_relations: 3,
            arity: 2,
            domain: 50,
            n_regions: 4,
            volume: 6,
            z_inter: 1.0,
            z_intra: (1.0, 1.5),
            center_jitter: 3,
            anchor_grid: Some(5),
            tuples_per_relation: 400,
            feed: FeedOrder::Stationary,
            seed: 11,
        }
    }

    #[test]
    fn nearest_cells_center_first() {
        let cells = nearest_cells(&[5, 5], 100, 5);
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[0], vec![Value(5), Value(5)], "center is rank 0");
        // All cells are adjacent to the center.
        for c in &cells {
            let dx = c[0].raw() as i64 - 5;
            let dy = c[1].raw() as i64 - 5;
            assert!(dx * dx + dy * dy <= 2);
        }
    }

    #[test]
    fn nearest_cells_clamped_at_domain_edge() {
        let cells = nearest_cells(&[0, 0], 10, 4);
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(c[0].raw() < 10 && c[1].raw() < 10);
        }
        assert_eq!(cells[0], vec![Value(0), Value(0)]);
    }

    #[test]
    fn nearest_cells_grows_radius_when_needed() {
        // volume larger than the initial 3x3 box forces radius growth.
        let cells = nearest_cells(&[5, 5], 100, 30);
        assert_eq!(cells.len(), 30);
    }

    #[test]
    fn generates_requested_tuple_counts() {
        let g = RegionsGenerator::new(small_config()).unwrap();
        let trace = g.generate();
        assert_eq!(trace.len(), 3 * 400);
        let counts = trace.stream_counts();
        for s in 0..3 {
            assert_eq!(counts[&StreamId(s)], 400);
        }
    }

    #[test]
    fn stationary_feed_has_no_drift_markers() {
        let g = RegionsGenerator::new(small_config()).unwrap();
        assert!(g.generate().drift_points.is_empty());
    }

    #[test]
    fn drift_feed_marks_equal_phase_boundaries() {
        let mut cfg = small_config();
        cfg.feed = FeedOrder::RegionPhases;
        let g = RegionsGenerator::new(cfg).unwrap();
        let trace = g.generate();
        assert_eq!(trace.drift_points.len(), 3, "n_regions - 1 boundaries");
        // Equal-length phases: boundaries evenly spaced.
        let phase = trace.len() / 4;
        for (i, &d) in trace.drift_points.iter().enumerate() {
            assert_eq!(d, (i + 1) * phase);
        }
    }

    #[test]
    fn drift_feed_changes_distribution_across_phases() {
        let mut cfg = small_config();
        cfg.feed = FeedOrder::RegionPhases;
        cfg.z_intra = (2.0, 2.0001);
        let g = RegionsGenerator::new(cfg).unwrap();
        let trace = g.generate();
        // The modal value of phase 0 should differ from phase 3's (regions
        // have different centers with overwhelming probability).
        let phase = trace.len() / 4;
        let mode = |lo: usize, hi: usize| {
            let mut hist = std::collections::HashMap::new();
            for it in &trace.items[lo..hi] {
                if it.stream == StreamId(0) {
                    *hist.entry(it.values[0]).or_insert(0usize) += 1;
                }
            }
            hist.into_iter().max_by_key(|&(_, c)| c).map(|(v, _)| v)
        };
        assert_ne!(mode(0, phase), mode(3 * phase, 4 * phase));
    }

    #[test]
    fn values_stay_in_domain() {
        let g = RegionsGenerator::new(small_config()).unwrap();
        let trace = g.generate();
        for item in &trace.items {
            assert_eq!(item.values.len(), 2);
            for v in &item.values {
                assert!(v.raw() < 50);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RegionsGenerator::new(small_config()).unwrap().generate();
        let b = RegionsGenerator::new(small_config()).unwrap().generate();
        assert_eq!(a, b);
        let mut other = small_config();
        other.seed = 12;
        let c = RegionsGenerator::new(other).unwrap().generate();
        assert_ne!(a, c);
    }

    #[test]
    fn higher_skew_concentrates_values() {
        // Compare the hottest-value share under low vs high z_intra.
        let share = |z: (f64, f64)| {
            let mut cfg = small_config();
            cfg.z_intra = z;
            let trace = RegionsGenerator::new(cfg).unwrap().generate();
            let hist = trace.value_histogram(StreamId(0), 0);
            let max = hist.values().max().copied().unwrap_or(0);
            max as f64 / 400.0
        };
        let low = share((0.1, 0.10001));
        let high = share((2.0, 2.00001));
        assert!(
            high > low,
            "z=2.0 share {high} should exceed z=0.1 share {low}"
        );
    }

    #[test]
    fn zipf_inter_allocates_more_to_early_regions() {
        let g = RegionsGenerator::new(small_config()).unwrap();
        assert!(g.tuples_per_region[0] > g.tuples_per_region[3]);
        let total: usize = g.tuples_per_region.iter().sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_config();
        cfg.volume = 50 * 50 + 1;
        assert!(RegionsGenerator::new(cfg).is_err());
        let mut cfg = small_config();
        cfg.z_intra = (2.0, 1.0);
        assert!(RegionsGenerator::new(cfg).is_err());
        let mut cfg = small_config();
        cfg.n_regions = 0;
        assert!(RegionsGenerator::new(cfg).is_err());
    }

    #[test]
    fn describe_mentions_table1_fields() {
        let g = RegionsGenerator::new(RegionsConfig::default()).unwrap();
        let d = g.describe();
        assert!(d.contains("regions: 10"));
        assert!(d.contains("domain: 100"));
        assert!(d.contains("z-inter: 1"));
    }
}
