//! Workload generators reproducing the paper's evaluation inputs (§5).
//!
//! Two families of workloads drive every experiment:
//!
//! * [`regions`] — the synthetic generator of Vitter & Wang (SIGMOD'99) as
//!   configured in the paper's Table 1: rectangular regions uniformly
//!   placed in each relation's attribute space, a Zipfian `z-inter`
//!   distribution across regions and `z-intra` within each region (cells
//!   closer to a region's center are more frequent). Feeding the data
//!   region-phase by region-phase simulates **concept drift**.
//! * [`census`] — a correlated categorical generator standing in for the
//!   CPS census extracts (Age 1–9, Income 1–16, Education 1–6 over three
//!   months); see DESIGN.md §5 for why this substitution preserves the
//!   experiments' behaviour.
//!
//! Both produce a [`Trace`]: a replayable, fully deterministic arrival
//! sequence that the simulation driver timestamps.

//!
//! ```
//! use mstream_workload::{RegionsConfig, RegionsGenerator};
//!
//! let gen = RegionsGenerator::new(RegionsConfig {
//!     tuples_per_relation: 300,
//!     seed: 7,
//!     ..Default::default()
//! }).unwrap();
//! let trace = gen.generate();
//! assert_eq!(trace.len(), 3 * 300);
//! // Deterministic: the same config replays bit-for-bit.
//! assert_eq!(trace, gen.generate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod io;
pub mod regions;
pub mod trace;
pub mod zipf;

pub use census::{CensusConfig, CensusGenerator};
pub use io::{read_trace, trace_from_csv, trace_to_csv, write_trace, TraceIoError};
pub use regions::{FeedOrder, RegionsConfig, RegionsGenerator};
pub use trace::{Trace, TraceItem};
pub use zipf::Zipf;
