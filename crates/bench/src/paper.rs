//! The paper's reconstructed experimental parameters (DESIGN.md §3).

use mstream_core::prelude::*;

/// Global arrival rate `k` across the three interleaved streams
/// (tuples/second). Per-stream rate ≈ `k / 3`.
pub const ARRIVAL_RATE: f64 = 10.0;

/// Sliding-window length `p` for the synthetic experiments (seconds).
pub const WINDOW_SECS: u64 = 500;

/// The "full window" per stream in tuples: `(k/3) · p ≈ 1672` — 100% of
/// the memory grid.
pub const FULL_WINDOW: usize = 1672;

/// The paper's buffer-size grid, as percentages of the full window.
pub const MEMORY_GRID: [u32; 5] = [5, 25, 50, 75, 100];

/// The four data sets of Table 1: `z-intra` ranges.
pub const Z_INTRA_RANGES: [(f64, f64); 4] = [(0.1, 0.5), (0.6, 1.0), (1.1, 1.5), (1.6, 2.0)];

/// Figure 5's reporting bucket (seconds).
pub const DRIFT_BUCKET_SECS: u64 = 50;

/// Figure 6's queue capacity in tuples.
pub const QUEUE_CAPACITY: usize = 100;

/// The max-subset policy line-up of Figures 2/4/5/8.
pub const MAX_SUBSET_POLICIES: [&str; 5] = ["MSketch", "Bjoin", "Age", "Random", "FIFO"];

/// The random-sampling line-up of Figure 7.
pub const SAMPLING_POLICIES: [&str; 3] = ["MSketch-RS", "Bjoin", "Random"];

/// Window tuples corresponding to `pct`% of the full window (at least 1).
pub fn memory_tuples(pct: u32, scale: f64) -> usize {
    let full = (FULL_WINDOW as f64 * scale).round() as usize;
    ((full * pct as usize) / 100).max(1)
}

/// The sliding-window length under `--scale`.
///
/// Scaling shrinks the dataset *and* the window length together so the
/// full-window population (`rate × p`) shrinks in proportion — "100%
/// memory" stays a genuinely unshedded run at every scale.
pub fn scaled_window(scale: f64) -> u64 {
    ((WINDOW_SECS as f64 * scale).round() as u64).max(1)
}

/// Figure 5's reporting bucket under `--scale`.
pub fn scaled_drift_bucket(scale: f64) -> u64 {
    ((DRIFT_BUCKET_SECS as f64 * scale).round() as u64).max(1)
}

/// The paper's evaluation query:
/// `R1 ⋈ R2 ⋈ R3 ON R1.A1 = R2.A1 AND R2.A2 = R3.A1`, `p`-second windows.
pub fn paper_query(window_secs: u64) -> JoinQuery {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        catalog,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .expect("paper query is valid")
}

/// A Table-1 dataset for the given `z-intra` range, scaled by `scale`.
pub fn paper_regions(z_intra: (f64, f64), scale: f64, seed: u64) -> RegionsGenerator {
    let mut config = RegionsConfig::with_z_intra(z_intra.0, z_intra.1);
    config.tuples_per_relation = ((config.tuples_per_relation as f64) * scale).round() as usize;
    config.seed = seed;
    RegionsGenerator::new(config).expect("table-1 config is valid")
}

/// The census query: `Oct03 ⋈ Apr04 ON Age`, `Apr04 ⋈ Oct04 ON Education`
/// over month-streams with schema `(Age, Income, Education)`.
pub fn census_query(window_secs: u64) -> JoinQuery {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("Oct03", &["Age", "Income", "Education"]));
    catalog.add_stream(StreamSchema::new("Apr04", &["Age", "Income", "Education"]));
    catalog.add_stream(StreamSchema::new("Oct04", &["Age", "Income", "Education"]));
    JoinQuery::from_names(
        catalog,
        &[("Oct03.Age", "Apr04.Age"), ("Apr04.Education", "Oct04.Education")],
        WindowSpec::secs(window_secs),
    )
    .expect("census query is valid")
}

/// The census workload scaled by `scale`.
pub fn census_data(scale: f64, seed: u64) -> CensusGenerator {
    let mut config = CensusConfig::default();
    config.tuples_per_month = ((config.tuples_per_month as f64) * scale).round() as usize;
    config.seed = seed;
    CensusGenerator::new(config).expect("census config is valid")
}

/// Census full window per stream: per-stream arrival rate × window.
pub fn census_full_window(window_secs: u64) -> usize {
    ((ARRIVAL_RATE / 3.0) * window_secs as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grid_matches_full_window() {
        assert_eq!(memory_tuples(100, 1.0), FULL_WINDOW);
        assert_eq!(memory_tuples(50, 1.0), FULL_WINDOW / 2);
        assert_eq!(memory_tuples(5, 0.001), 1, "floors at one tuple");
    }

    #[test]
    fn queries_build() {
        assert_eq!(paper_query(WINDOW_SECS).n_streams(), 3);
        assert_eq!(census_query(500).n_streams(), 3);
    }

    #[test]
    fn scaled_regions_shrink() {
        let g = paper_regions((1.6, 2.0), 0.1, 1);
        assert_eq!(g.config().tuples_per_relation, 1000);
    }
}
