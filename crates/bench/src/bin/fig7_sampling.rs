//! Figure 7: random-sampling quality — (a) average relative error of the
//! windowed AVG over `R1.A2` and (b) average quartile difference, both vs
//! memory, comparing MSketch-RS against Bjoin and Random.
//!
//! Paper shape: MSketch-RS produces the smallest errors on both metrics —
//! a random sample of the inputs is *not* a random sample of the join
//! (Random's poor showing), and pairwise information alone is not enough
//! (Bjoin's poor showing).
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig7_sampling             # default --scale 0.5
//! cargo run --release -p mstream-bench --bin fig7_sampling -- --scale 1 # paper scale (slow)
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(0.5);
    let window = paper::scaled_window(scale);
    let query = paper::paper_query(window);
    let trace = paper::paper_regions(paper::Z_INTRA_RANGES[3], scale, args.seed).generate();
    let opts = RunOptions {
        // Windowed AVG over R1.A2 (the paper: "We choose A2 of R1 to be our
        // aggregated attribute").
        agg_attr: Some((StreamId(0), 1)),
        agg_bucket: VDur::from_secs(window),
        ..Default::default()
    };
    eprintln!("# computing exact reference join...");
    let exact = run_exact_trace(&query, &trace, &opts);
    let truth = exact.agg_values.as_ref().expect("agg requested");

    let header: Vec<String> = std::iter::once("buffer".to_string())
        .chain(
            paper::SAMPLING_POLICIES
                .iter()
                .flat_map(|p| [format!("{p} err"), format!("{p} qdiff")]),
        )
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    // errs[pi][m], qdiffs[pi][m]
    let mut errs: Vec<Vec<f64>> = vec![Vec::new(); paper::SAMPLING_POLICIES.len()];
    let mut qdiffs: Vec<Vec<f64>> = vec![Vec::new(); paper::SAMPLING_POLICIES.len()];
    for pct in paper::MEMORY_GRID {
        let capacity = paper::memory_tuples(pct, scale);
        let mut row = vec![format!("{capacity} ({pct}%)")];
        for (pi, policy) in paper::SAMPLING_POLICIES.iter().enumerate() {
            let report = runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed);
            let sample = report.agg_values.as_ref().expect("agg requested");
            let cmp = SeriesComparison::from_hists(truth, sample);
            errs[pi].push(cmp.avg_relative_error);
            qdiffs[pi].push(cmp.avg_quantile_difference);
            row.push(format!("{:.4}", cmp.avg_relative_error));
            row.push(format!("{:.3}", cmp.avg_quantile_difference));
            json_rows.push(serde_json::json!({
                "figure": "7",
                "memory_pct": pct,
                "policy": policy,
                "avg_relative_error": cmp.avg_relative_error,
                "avg_quantile_difference": cmp.avg_quantile_difference,
                "compared_buckets": cmp.compared_buckets,
                "starved_buckets": cmp.starved_buckets,
                "output": report.total_output(),
            }));
        }
        rows.push(row);
    }
    table::print_table(
        "Figure 7: (a) avg relative error of windowed AVG(R1.A2) and (b) avg quartile difference vs memory",
        &header,
        &rows,
    );
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    table::print_shape(
        &format!(
            "MSketch-RS has the lowest mean aggregate error (RS {:.4} vs Bjoin {:.4}, Random {:.4})",
            mean(&errs[0]),
            mean(&errs[1]),
            mean(&errs[2])
        ),
        mean(&errs[0]) <= mean(&errs[1]) && mean(&errs[0]) <= mean(&errs[2]),
    );
    table::print_shape(
        &format!(
            "MSketch-RS has the lowest mean quartile difference (RS {:.3} vs Bjoin {:.3}, Random {:.3})",
            mean(&qdiffs[0]),
            mean(&qdiffs[1]),
            mean(&qdiffs[2])
        ),
        mean(&qdiffs[0]) <= mean(&qdiffs[1]) && mean(&qdiffs[0]) <= mean(&qdiffs[2]),
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
