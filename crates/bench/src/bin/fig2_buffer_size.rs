//! Figure 2 (a, b): number of output tuples vs buffer size, for the
//! low-skew (z-intra 0.1–0.5) and high-skew (1.6–2.0) synthetic data sets.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig2_buffer_size
//! cargo run --release -p mstream-bench --bin fig2_buffer_size -- --describe   # Table 1
//! cargo run --release -p mstream-bench --bin fig2_buffer_size -- --global-pool # ablation
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    if args.describe {
        println!("## Table 1: synthetic data sets");
        for (i, z) in paper::Z_INTRA_RANGES.iter().enumerate() {
            let gen = paper::paper_regions(*z, scale, args.seed);
            println!("dataset {}: {}", i + 1, gen.describe());
        }
        return;
    }
    let query = paper::paper_query(paper::scaled_window(scale));
    let opts = RunOptions::default();
    let global_pool = args.has_flag("--global-pool");
    let mut json_rows = Vec::new();
    // MSketch/Random output ratio at 25% memory, per part (a = low skew,
    // b = high skew) — the cross-part shape check.
    let mut gap_at_25 = Vec::new();
    for (part, z) in [("a", paper::Z_INTRA_RANGES[0]), ("b", paper::Z_INTRA_RANGES[3])] {
        let trace = paper::paper_regions(z, scale, args.seed).generate();
        let header: Vec<String> = std::iter::once("buffer".to_string())
            .chain(paper::MAX_SUBSET_POLICIES.iter().map(|p| p.to_string()))
            .collect();
        let mut rows = Vec::new();
        let mut by_policy: Vec<Vec<u64>> = vec![Vec::new(); paper::MAX_SUBSET_POLICIES.len()];
        for pct in paper::MEMORY_GRID {
            let capacity = paper::memory_tuples(pct, scale);
            let mut row = vec![format!("{capacity} ({pct}%)")];
            for (pi, policy) in paper::MAX_SUBSET_POLICIES.iter().enumerate() {
                let report = if global_pool {
                    let mut engine = runner::build_engine(
                        &query,
                        policy,
                        MemoryMode::GlobalPool(3 * capacity),
                        args.seed,
                    );
                    run_trace(&mut engine, &trace, &opts)
                } else {
                    runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed)
                };
                row.push(report.total_output().to_string());
                by_policy[pi].push(report.total_output());
                json_rows.push(serde_json::json!({
                    "figure": format!("2{part}"),
                    "z_intra": z,
                    "memory_pct": pct,
                    "capacity": capacity,
                    "policy": policy,
                    "output": report.total_output(),
                    "shed_window": report.metrics.shed_window,
                    "global_pool": global_pool,
                }));
            }
            rows.push(row);
        }
        table::print_table(
            &format!(
                "Figure 2({part}): #output tuples vs buffer size, z-intra {:.1}-{:.1}{}",
                z.0,
                z.1,
                if global_pool { " [global-pool ablation]" } else { "" }
            ),
            &header,
            &rows,
        );
        // Paper shape: on the high-skew data MSketch dominates every
        // baseline wherever shedding actually happens (below 100% memory);
        // on low skew all algorithms are within a whisker of each other.
        let msketch = &by_policy[0];
        gap_at_25.push(msketch[1] as f64 / by_policy[3][1].max(1) as f64);
        if part == "b" {
            let shedding_points = paper::MEMORY_GRID.len() - 1; // exclude 100%
            let dominated = (1..paper::MAX_SUBSET_POLICIES.len()).all(|pi| {
                (0..shedding_points).all(|m| msketch[m] >= by_policy[pi][m])
            });
            table::print_shape("MSketch >= all baselines below 100% memory (high skew)", dominated);
        }
        // All algorithms coincide at 100% memory (no shedding).
        let at_full: Vec<u64> = by_policy.iter().map(|p| *p.last().unwrap()).collect();
        table::print_shape(
            &format!("part ({part}): all algorithms coincide at 100% memory"),
            at_full.windows(2).all(|w| w[0] == w[1]),
        );
    }
    table::print_shape(
        &format!(
            "the MSketch/Random gap widens with skew (25% memory: {:.1}x at low skew -> {:.1}x at high skew)",
            gap_at_25[0], gap_at_25[1]
        ),
        gap_at_25[1] > gap_at_25[0],
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
