//! Multi-query sharing: N standing queries on one shared data plane vs N
//! independent engines.
//!
//! Not a figure from the paper — the measurement behind the multi-query
//! shared data plane design notes (DESIGN.md §14). Three execution modes
//! are swept over query counts N (default {1, 8, 64}):
//!
//! * `duplicate` — N structurally identical queries registered on one
//!   [`MultiQueryEngine`]. They collapse into one query class sharing
//!   windows, indexes and sketches; the per-arrival cost is that of one
//!   query plus an emission fan-out, so wall time and resident state must
//!   stay essentially flat in N (the acceptance gate: N=64 within 1.5x
//!   the wall time and 2x the resident state of N=1).
//! * `distinct` — N queries over pairwise-disjoint stream pairs on one
//!   engine, fed one trace spread across all 2N streams. Total tuple
//!   volume is constant, so cost tracks the live *work* — arrivals,
//!   probes, per-store bookkeeping — not the query count: wall time
//!   grows mildly with the store count while classes/stores grow with N,
//!   far below the ~N× of independent engines.
//! * `independent` — N separate single-query engines each fed the whole
//!   duplicate-mode trace: the one-query-one-engine baseline the shared
//!   plane replaces, costing ~N times the N=1 run.
//!
//! Every mode runs at full memory (no shedding), and the bin asserts the
//! sharing exactness contract on the way: each duplicate's produced count
//! equals the solo engine's output on the same trace.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin multi_query
//! cargo run --release -p mstream-bench --bin multi_query -- --queries 1,8,64 --json out.json
//! cargo run --release -p mstream-bench --bin multi_query -- --scale 0.2 --min-secs 0.1
//! ```
//!
//! Flags beyond the common set:
//!
//! * `--queries <list>` — comma-separated query counts (default `1,8,64`).
//! * `--min-secs <f>` — measured wall time to accumulate per point
//!   (default 0.5; each pass is a fresh engine over the same trace).
//! * `--domain <n>` — join-key domain (default 512; selectivity knob).

use mstream_bench::{args, table, Args};
use mstream_core::mstream_types::Row;
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Window depth: at `RATE` arrivals/s over two streams, each window holds
/// on the order of a thousand tuples — deep enough that probe and store
/// work dominates the per-arrival cost, shallow enough to iterate fast.
const WINDOW_SECS: u64 = 2;

/// Virtual arrival rate (tuples per second across all streams).
const RATE: f64 = 1000.0;

/// The equi-join pair `l.A1 = r.A1` with a second noise attribute.
fn pair_query(l: &str, r: &str) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new(l, &["A1", "A2"]));
    c.add_stream(StreamSchema::new(r, &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[(format!("{l}.A1").as_str(), format!("{r}.A1").as_str())],
        WindowSpec::secs(WINDOW_SECS),
    )
    .expect("valid query")
}

/// Stream names for `n` disjoint pairs: query `i` joins `S{2i}` ⋈ `S{2i+1}`.
fn stream_name(k: usize) -> String {
    format!("S{k}")
}

/// A uniform trace over `streams` named streams: round-robin stream
/// choice, keys uniform in `domain`, timestamps on the `RATE` schedule.
fn trace(streams: usize, arrivals: usize, domain: u64, seed: u64) -> Vec<(String, Row, VTime)> {
    let dt = VDur::from_rate(RATE);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..arrivals)
        .map(|i| {
            let row: Row = vec![
                Value(rng.gen_range(0..domain)),
                Value(rng.gen_range(0..domain)),
            ]
            .into();
            (
                stream_name(i % streams),
                row,
                VTime::ZERO + dt.mul(i as u64),
            )
        })
        .collect()
}

/// One measured pass's outcome.
struct Pass {
    secs: f64,
    produced_per_query: Vec<u64>,
    resident: usize,
    classes: usize,
    stores: usize,
}

/// Builds the shared engine for a query list and times one full feed.
/// Engine construction (standing-query registration) is untimed: the
/// steady state of a standing-query service is the ingest loop.
fn shared_pass(queries: &[JoinQuery], t: &[(String, Row, VTime)], capacity: usize, seed: u64) -> Pass {
    let mut b = EngineBuilder::new_multi()
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(seed);
    for q in queries {
        b.register(q.clone()).expect("compatible query");
    }
    let mut engine = b.build_multi().expect("valid engine");
    let ids: Vec<StreamId> = t
        .iter()
        .map(|(name, _, _)| engine.stream_id(name).expect("stream registered"))
        .collect();
    let mut sink = CountSink::default();
    let start = Instant::now();
    for ((_, row, ts), &g) in t.iter().zip(&ids) {
        engine.ingest(Arrival::new(g, row.clone(), *ts), &mut sink);
    }
    let secs = start.elapsed().as_secs_f64();
    Pass {
        secs,
        produced_per_query: (0..queries.len() as u32)
            .map(|q| engine.query_stats(QueryId(q)).expect("registered").produced)
            .collect(),
        resident: engine.total_resident(),
        classes: engine.n_classes(),
        stores: engine.n_stores(),
    }
}

/// N independent single-query engines, each fed the whole trace — the
/// one-query-one-engine baseline.
fn independent_pass(n: usize, t: &[(String, Row, VTime)], capacity: usize, seed: u64) -> Pass {
    let mut engines: Vec<ShedJoinEngine> = (0..n)
        .map(|_| {
            EngineBuilder::new(pair_query(&stream_name(0), &stream_name(1)))
                .policy(MSketch)
                .capacity_per_window(capacity)
                .seed(seed)
                .build()
                .expect("valid engine")
        })
        .collect();
    let ids: Vec<StreamId> = t
        .iter()
        .map(|(name, _, _)| {
            engines[0]
                .query()
                .catalog()
                .iter()
                .find(|(_, s)| s.name == *name)
                .expect("stream in catalog")
                .0
        })
        .collect();
    let mut sinks = vec![CountSink::default(); n];
    let start = Instant::now();
    for ((_, row, ts), &g) in t.iter().zip(&ids) {
        for (engine, sink) in engines.iter_mut().zip(&mut sinks) {
            engine.ingest(Arrival::new(g, row.clone(), *ts), sink);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let resident = engines
        .iter()
        .map(|e| (0..2).map(|k| e.window_len(StreamId(k)).unwrap_or(0)).sum::<usize>())
        .sum();
    Pass {
        secs,
        produced_per_query: sinks.iter().map(|s| s.produced).collect(),
        resident,
        classes: n,
        stores: 2 * n,
    }
}

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let min_secs: f64 = args
        .flag_value("--min-secs")
        .map(|v| v.parse().expect("--min-secs takes a number"))
        .unwrap_or(0.5);
    let domain: u64 = args
        .flag_value("--domain")
        .map(|v| v.parse().expect("--domain takes an integer"))
        .unwrap_or(512);
    let counts: Vec<usize> = args
        .flag_value("--queries")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--queries takes e.g. 1,8,64"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 8, 64]);
    assert!(!counts.is_empty(), "--queries needs at least one count");

    let arrivals = ((20_000.0 * scale).round() as usize).max(200);
    // Full memory: every window can hold the whole trace, so nothing is
    // ever shed and every query's output must equal its solo run.
    let capacity = arrivals + 1;
    let pair_trace = trace(2, arrivals, domain, args.seed);

    // The exactness reference: one solo engine over the duplicate trace.
    let solo = independent_pass(1, &pair_trace, capacity, args.seed);
    let solo_produced = solo.produced_per_query[0];
    assert!(solo_produced > 0, "reference trace must produce joins");

    let header = vec![
        "mode".to_string(),
        "N".to_string(),
        "time (s)".to_string(),
        "passes".to_string(),
        "produced/q".to_string(),
        "resident".to_string(),
        "classes".to_string(),
        "stores".to_string(),
        "tuples/s".to_string(),
        "vs N=1".to_string(),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    // (mode, N) -> mean seconds, for the vs-N=1 column and the headline.
    let mut seconds: Vec<((&str, usize), f64)> = Vec::new();
    let mut residents: Vec<((&str, usize), usize)> = Vec::new();

    for &(mode, heavy) in &[("duplicate", false), ("distinct", false), ("independent", true)] {
        for &n in &counts {
            let run = |seed: u64| -> Pass {
                match mode {
                    "duplicate" => {
                        let qs: Vec<JoinQuery> = (0..n)
                            .map(|_| pair_query(&stream_name(0), &stream_name(1)))
                            .collect();
                        shared_pass(&qs, &pair_trace, capacity, seed)
                    }
                    "distinct" => {
                        let qs: Vec<JoinQuery> = (0..n)
                            .map(|i| pair_query(&stream_name(2 * i), &stream_name(2 * i + 1)))
                            .collect();
                        let t = trace(2 * n, arrivals, domain, args.seed);
                        shared_pass(&qs, &t, capacity, seed)
                    }
                    _ => independent_pass(n, &pair_trace, capacity, seed),
                }
            };
            // Untimed warmup (page faults, allocator steady state), then
            // fresh-engine passes until `min_secs` of wall time. The
            // independent baseline at large N costs ~N passes' worth per
            // pass; one measured pass suffices there.
            let warm = run(args.seed);
            let budget = if heavy && n > 1 { 0.0 } else { min_secs };
            let mut total_secs = 0.0f64;
            let mut passes = 0u32;
            let mut last = warm;
            loop {
                let pass = run(args.seed);
                assert_eq!(
                    pass.produced_per_query, last.produced_per_query,
                    "{mode} N={n}: passes must be deterministic"
                );
                total_secs += pass.secs;
                passes += 1;
                last = pass;
                if total_secs >= budget {
                    break;
                }
            }
            let secs = total_secs / passes as f64;

            // Exactness spot checks, every mode at full memory.
            match mode {
                "duplicate" | "independent" => {
                    assert!(
                        last.produced_per_query.iter().all(|&p| p == solo_produced),
                        "{mode} N={n}: a query diverged from its solo run \
                         ({:?} vs {solo_produced})",
                        last.produced_per_query
                    );
                }
                _ => {
                    let total: u64 = last.produced_per_query.iter().sum();
                    assert!(total > 0 || n > arrivals, "distinct N={n}: no output");
                }
            }

            seconds.push(((mode, n), secs));
            residents.push(((mode, n), last.resident));
            let base = seconds
                .iter()
                .find(|((m, c), _)| *m == mode && *c == counts[0])
                .map(|(_, s)| *s)
                .unwrap_or(secs);
            let produced_total: u64 = last.produced_per_query.iter().sum();
            rows.push(vec![
                mode.to_string(),
                n.to_string(),
                format!("{secs:.3}"),
                passes.to_string(),
                (produced_total / n as u64).to_string(),
                last.resident.to_string(),
                last.classes.to_string(),
                last.stores.to_string(),
                table::fmt_num(arrivals as f64 / secs),
                format!("{:.2}x", secs / base),
            ]);
            json_rows.push(serde_json::json!({
                "mode": mode,
                "queries": n,
                "seconds": secs,
                "passes": passes,
                "arrivals": arrivals,
                "throughput": arrivals as f64 / secs,
                "produced_total": produced_total,
                "produced_per_query": produced_total / n as u64,
                "solo_produced": solo_produced,
                "resident": last.resident,
                "classes": last.classes,
                "stores": last.stores,
                "domain": domain,
                "vs_n1": secs / base,
            }));
        }
    }

    table::print_table(
        &format!(
            "Multi-query sharing: N standing pair joins, {arrivals} arrivals, \
             full memory, domain {domain}"
        ),
        &header,
        &rows,
    );

    // Headline: duplicates are (nearly) free on the shared plane. The
    // resident check is deterministic; the wall-time check is the
    // acceptance gate and holds with wide margin (fan-out only costs on
    // emission).
    let sec_of = |mode: &str, n: usize| {
        seconds
            .iter()
            .find(|((m, c), _)| *m == mode && *c == n)
            .map(|(_, s)| *s)
    };
    let res_of = |mode: &str, n: usize| {
        residents
            .iter()
            .find(|((m, c), _)| *m == mode && *c == n)
            .map(|(_, r)| *r)
    };
    let (lo, hi) = (counts[0], *counts.last().expect("nonempty"));
    if lo < hi {
        let wall_ok = matches!(
            (sec_of("duplicate", lo), sec_of("duplicate", hi)),
            (Some(a), Some(b)) if b <= 1.5 * a
        );
        let mem_ok = matches!(
            (res_of("duplicate", lo), res_of("duplicate", hi)),
            (Some(a), Some(b)) if b <= 2 * a
        );
        table::print_shape(
            &format!(
                "N={hi} duplicate queries cost <= 1.5x the wall time and <= 2x \
                 the resident state of N={lo} (duplicates share one class)"
            ),
            wall_ok && mem_ok,
        );
    }
    args::maybe_dump_json(&args.json, &json_rows);
}
