//! Figure 4: ratio of approximate to exact result size vs the intra-region
//! Zipf skew, at 25% memory, for all four Table-1 data sets.
//!
//! Paper shape: near the low end all algorithms are comparable; as skew
//! grows, the gap between the semantic policies (MSketch in particular)
//! and Random/FIFO "increases rapidly".
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig4_skew
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let query = paper::paper_query(paper::scaled_window(scale));
    let opts = RunOptions::default();
    let capacity = paper::memory_tuples(25, scale);
    let header: Vec<String> = std::iter::once("z-intra".to_string())
        .chain(paper::MAX_SUBSET_POLICIES.iter().map(|p| p.to_string()))
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    // gap[d] = MSketch ratio / Random ratio for data set d.
    let mut gaps = Vec::new();
    for z in paper::Z_INTRA_RANGES {
        let trace = paper::paper_regions(z, scale, args.seed).generate();
        let exact = run_exact_trace(&query, &trace, &opts);
        let exact_total = exact.total_output().max(1) as f64;
        let mut row = vec![format!("{:.1}-{:.1}", z.0, z.1)];
        let mut ratios = Vec::new();
        for policy in paper::MAX_SUBSET_POLICIES {
            let report = runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed);
            let ratio = report.total_output() as f64 / exact_total;
            ratios.push(ratio);
            row.push(format!("{ratio:.3}"));
            json_rows.push(serde_json::json!({
                "figure": "4",
                "z_intra": z,
                "policy": policy,
                "ratio": ratio,
                "output": report.total_output(),
                "exact": exact_total,
            }));
        }
        gaps.push(ratios[0] / ratios[3].max(1e-12)); // MSketch vs Random
        rows.push(row);
    }
    table::print_table(
        &format!("Figure 4: approximate/exact ratio vs skew, 25% memory ({capacity} tuples)"),
        &header,
        &rows,
    );
    table::print_shape(
        &format!(
            "MSketch/Random gap grows with skew (gaps: {})",
            gaps.iter().map(|g| format!("{g:.2}")).collect::<Vec<_>>().join(" -> ")
        ),
        gaps.last().unwrap() > gaps.first().unwrap(),
    );
    table::print_shape(
        "MSketch >= Random and FIFO on every data set",
        rows.iter().all(|r| {
            let m: f64 = r[1].parse().unwrap();
            let rnd: f64 = r[4].parse().unwrap();
            let fifo: f64 = r[5].parse().unwrap();
            m >= rnd && m >= fifo
        }),
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
