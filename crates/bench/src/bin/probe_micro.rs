//! Self-timed probe/eviction microbenches: the flat hot path vs the
//! pre-rewrite one, on the same machine in the same process.
//!
//! Because the legacy structures no longer exist in the library, this bin
//! carries faithful replicas of what they were: the recursive probe kernel
//! is retained in `mstream-join` (`probe_each_recursive`), and the old
//! `HashMap<Value, Vec<Slot>>`-indexed window store is rebuilt here from
//! public pieces (`Arena` + `IndexedHeap` + std `HashMap`) with the exact
//! per-entry layout `WindowStore` used to have. Every comparison first
//! asserts the two sides produce identical results, then times them.
//!
//! Flags: `--quick` (smaller workloads, for CI sanity), `--json PATH`
//! (emit rows for BENCH_probe.json), plus the common `--seed`.

use mstream_bench::{args, table, Args};
use mstream_core::mstream_join::{probe_each, probe_each_recursive, ProbePlan};
use mstream_core::mstream_sketch::kernel;
use mstream_core::mstream_window::{Arena, FlatIndex, Slot, WindowStore};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

/// One comparison row: the legacy path, the flat path, and the ratio.
#[derive(Serialize)]
struct Row {
    bench: String,
    baseline: String,
    baseline_ns_per_op: f64,
    flat_ns_per_op: f64,
    speedup: f64,
    ops: u64,
}

/// Best-of-`repeats` wall time of `f`, in ns per `ops` operations.
fn time_ns_per_op(repeats: usize, ops: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best / ops as f64
}

fn tup(stream: usize, seq: u64, a: u64, b: u64) -> Tuple {
    Tuple::new(
        StreamId(stream),
        VTime::ZERO,
        SeqNo(seq),
        vec![Value(a), Value(b)],
    )
}

fn query(predicates: &[(&str, &str)], n: usize) -> JoinQuery {
    let names = ["R1", "R2", "R3"];
    let mut c = Catalog::new();
    for &name in &names[..n] {
        c.add_stream(StreamSchema::new(name, &["A1", "A2"]));
    }
    JoinQuery::from_names(c, predicates, WindowSpec::secs(1 << 20)).unwrap()
}

/// Populates per-stream windows with `per_window` tuples over a value
/// domain sized for moderate fanout, and mints the arrival batch.
fn probe_workload(
    q: &JoinQuery,
    per_window: usize,
    arrivals: usize,
    origin: usize,
    seed: u64,
) -> (Vec<WindowStore>, Vec<Tuple>) {
    let n = q.n_streams();
    let domain = (per_window as u64 / 16).max(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stores: Vec<WindowStore> = (0..n)
        .map(|s| {
            WindowStore::new(
                q.window(StreamId(s)),
                q.join_attrs(StreamId(s)),
                per_window + 1,
            )
        })
        .collect();
    let mut seq = 0u64;
    for (s, store) in stores.iter_mut().enumerate() {
        for _ in 0..per_window {
            let t = tup(s, seq, rng.gen_range(0..domain), rng.gen_range(0..domain));
            store.insert(t, 0.0);
            seq += 1;
        }
    }
    let batch = (0..arrivals)
        .map(|i| {
            tup(
                origin,
                1_000_000 + i as u64,
                rng.gen_range(0..domain),
                rng.gen_range(0..domain),
            )
        })
        .collect();
    (stores, batch)
}

/// Times the iterative kernel against the retained recursive one on the
/// same stores and arrival batch, asserting identical match counts first.
fn bench_probe_kernel(
    name: &str,
    q: &JoinQuery,
    origin: usize,
    per_window: usize,
    arrivals: usize,
    repeats: usize,
    seed: u64,
) -> Row {
    let (stores, batch) = probe_workload(q, per_window, arrivals, origin, seed);
    let plan = ProbePlan::new(q, StreamId(origin));
    // Correctness smoke: counts must agree tuple-for-tuple.
    for t in &batch[..batch.len().min(200)] {
        let a = probe_each(&plan, t, &stores, |_| {});
        let b = probe_each_recursive(&plan, t, &stores, |_| {});
        assert_eq!(a, b, "{name}: kernels disagree");
    }
    let run_iter = || {
        let mut total = 0u64;
        for t in &batch {
            total += probe_each(&plan, black_box(t), &stores, |b| {
                black_box(b.origin());
            });
        }
        black_box(total);
    };
    let run_rec = || {
        let mut total = 0u64;
        for t in &batch {
            total += probe_each_recursive(&plan, black_box(t), &stores, |b| {
                black_box(b.origin());
            });
        }
        black_box(total);
    };
    run_iter(); // warmup
    run_rec();
    let flat = time_ns_per_op(repeats, batch.len() as u64, run_iter);
    let base = time_ns_per_op(repeats, batch.len() as u64, run_rec);
    Row {
        bench: name.to_string(),
        baseline: "recursive kernel".to_string(),
        baseline_ns_per_op: base,
        flat_ns_per_op: flat,
        speedup: base / flat,
        ops: batch.len() as u64,
    }
}

// ---------------------------------------------------------------------------
// Legacy store replica: the exact pre-rewrite layout. One heap-allocated
// `index_pos` per entry, `HashMap<Value, Vec<Slot>>` per indexed attribute,
// and a priority heap whose position map is a `HashMap<Slot, usize>` — the
// layout `IndexedHeap` had before its positions were flattened to a vector.

struct LegacyHeap {
    heap: Vec<(Slot, f64, u64)>,
    positions: HashMap<Slot, usize>,
}

impl LegacyHeap {
    fn new() -> Self {
        LegacyHeap {
            heap: Vec::new(),
            positions: HashMap::new(),
        }
    }

    fn less(a: &(Slot, f64, u64), b: &(Slot, f64, u64)) -> bool {
        (a.1, a.2) < (b.1, b.2)
    }

    fn insert(&mut self, slot: Slot, score: f64, tie: u64) {
        let pos = self.heap.len();
        self.heap.push((slot, score, tie));
        self.positions.insert(slot, pos);
        self.sift_up(pos);
    }

    fn peek_min(&self) -> Option<(Slot, f64)> {
        self.heap.first().map(|&(s, score, _)| (s, score))
    }

    fn remove(&mut self, slot: Slot) {
        let pos = self.positions.remove(&slot).expect("slot in heap");
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos <= last && pos < self.heap.len() {
            self.positions.insert(self.heap[pos].0, pos);
            self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if !Self::less(&self.heap[pos], &self.heap[parent]) {
                break;
            }
            self.heap.swap(pos, parent);
            self.positions.insert(self.heap[pos].0, pos);
            self.positions.insert(self.heap[parent].0, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let (l, r) = (2 * pos + 1, 2 * pos + 2);
            let mut min = pos;
            if l < self.heap.len() && Self::less(&self.heap[l], &self.heap[min]) {
                min = l;
            }
            if r < self.heap.len() && Self::less(&self.heap[r], &self.heap[min]) {
                min = r;
            }
            if min == pos {
                break;
            }
            self.heap.swap(pos, min);
            self.positions.insert(self.heap[pos].0, pos);
            self.positions.insert(self.heap[min].0, min);
            pos = min;
        }
    }
}

struct LegacyEntry {
    tuple: Tuple,
    index_pos: Vec<u32>,
}

struct LegacyStore {
    join_attrs: Vec<usize>,
    arena: Arena<LegacyEntry>,
    indexes: Vec<HashMap<Value, Vec<Slot>>>,
    heap: LegacyHeap,
}

impl LegacyStore {
    fn new(join_attrs: Vec<usize>) -> Self {
        let n = join_attrs.len();
        LegacyStore {
            join_attrs,
            arena: Arena::new(),
            indexes: (0..n).map(|_| HashMap::new()).collect(),
            heap: LegacyHeap::new(),
        }
    }

    fn insert(&mut self, tuple: Tuple, score: f64) -> Slot {
        let tie = tuple.seq.0;
        let n_idx = self.join_attrs.len();
        let slot = self.arena.insert(LegacyEntry {
            tuple,
            index_pos: vec![0; n_idx],
        });
        for a in 0..n_idx {
            let value = self.arena.get(slot).unwrap().tuple.values[self.join_attrs[a]];
            let bucket = self.indexes[a].entry(value).or_default();
            let pos = bucket.len() as u32;
            bucket.push(slot);
            self.arena.get_mut(slot).unwrap().index_pos[a] = pos;
        }
        self.heap.insert(slot, score, tie);
        slot
    }

    fn evict_min(&mut self) -> Option<Tuple> {
        let (slot, _) = self.heap.peek_min()?;
        let entry = self.arena.remove(slot).expect("heap entries live");
        for (a, &attr) in self.join_attrs.iter().enumerate() {
            let value = entry.tuple.values[attr];
            let bucket = self.indexes[a].get_mut(&value).expect("indexed");
            let pos = entry.index_pos[a] as usize;
            bucket.swap_remove(pos);
            if let Some(&moved) = bucket.get(pos) {
                self.arena.get_mut(moved).unwrap().index_pos[a] = pos as u32;
            }
            if bucket.is_empty() {
                self.indexes[a].remove(&value);
            }
        }
        self.heap.remove(slot);
        Some(entry.tuple)
    }
}

/// Steady-state insert+evict churn: every insert over capacity pays one
/// min-eviction, exercising index insert, swap-remove and heap traffic.
fn bench_insert_evict(capacity: usize, churn: usize, repeats: usize, seed: u64) -> Row {
    let domain = (capacity as u64 / 16).max(4);
    let mk_batch = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..capacity + churn)
            .map(|i| {
                (
                    tup(0, i as u64, rng.gen_range(0..domain), rng.gen_range(0..domain)),
                    rng.gen::<f64>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let batch = mk_batch(seed);
    let run_flat = || {
        let mut w = WindowStore::new(WindowSpec::secs(1 << 20), vec![0, 1], capacity);
        for (t, score) in &batch {
            black_box(w.insert(t.clone(), *score));
        }
        black_box(w.len());
    };
    let run_legacy = || {
        let mut w = LegacyStore::new(vec![0, 1]);
        for (t, score) in &batch {
            w.insert(t.clone(), *score);
            if w.arena.len() > capacity {
                black_box(w.evict_min());
            }
        }
        black_box(w.arena.len());
    };
    run_flat();
    run_legacy();
    let flat = time_ns_per_op(repeats, batch.len() as u64, run_flat);
    let base = time_ns_per_op(repeats, batch.len() as u64, run_legacy);
    Row {
        bench: format!("insert_evict_cap{capacity}"),
        baseline: "HashMap<Value,Vec<Slot>> store replica".to_string(),
        baseline_ns_per_op: base,
        flat_ns_per_op: flat,
        speedup: base / flat,
        ops: batch.len() as u64,
    }
}

/// Raw index probe throughput: FlatIndex vs the legacy HashMap index, same
/// contents, verified equal before timing.
fn bench_index_probe(n_slots: usize, probes: usize, repeats: usize, seed: u64) -> Row {
    let domain = (n_slots as u64 / 8).max(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arena: Arena<u64> = Arena::new();
    let mut flat = FlatIndex::new();
    let mut legacy: HashMap<Value, Vec<Slot>> = HashMap::new();
    for i in 0..n_slots {
        let key = rng.gen_range(0..domain);
        let slot = arena.insert(i as u64);
        flat.insert(key, slot);
        legacy.entry(Value(key)).or_default().push(slot);
    }
    for k in 0..domain {
        let got: Vec<Slot> = flat.probe(k).iter().collect();
        let want = legacy.get(&Value(k)).cloned().unwrap_or_default();
        assert_eq!(got, want, "index contents diverge at key {k}");
    }
    let keys: Vec<u64> = (0..probes).map(|_| rng.gen_range(0..domain)).collect();
    let run_flat = || {
        let mut total = 0usize;
        for &k in &keys {
            total += flat.probe(black_box(k)).len();
        }
        black_box(total);
    };
    let run_legacy = || {
        let mut total = 0usize;
        for &k in &keys {
            total += legacy.get(&Value(black_box(k))).map_or(0, Vec::len);
        }
        black_box(total);
    };
    run_flat();
    run_legacy();
    let flat_ns = time_ns_per_op(repeats, probes as u64, run_flat);
    let base_ns = time_ns_per_op(repeats, probes as u64, run_legacy);
    Row {
        bench: format!("index_probe_{n_slots}slots"),
        baseline: "HashMap<Value,Vec<Slot>>".to_string(),
        baseline_ns_per_op: base_ns,
        flat_ns_per_op: flat_ns,
        speedup: base_ns / flat_ns,
        ops: probes as u64,
    }
}

/// The batch-amortized engine ingest (`ingest_batch`, one prefetched
/// lookup pass + coalesced priority rescoring) vs the per-arrival
/// reference on the same trace, asserted bit-identical before timing:
/// same produced count, same shed count, same deterministic metrics.
fn bench_engine_batched(
    arrivals: usize,
    capacity: usize,
    batch: usize,
    repeats: usize,
    seed: u64,
) -> Row {
    let q = query(&[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")], 3);
    let domain = (capacity as u64 / 4).max(8);
    let mut rng = StdRng::seed_from_u64(seed);
    let trace: Vec<Arrival> = (0..arrivals)
        .map(|i| {
            Arrival::new(
                StreamId(i % 3),
                vec![
                    Value(rng.gen_range(0..domain)),
                    Value(rng.gen_range(0..domain)),
                ],
                VTime::from_secs(i as u64 / 4),
            )
        })
        .collect();
    // FIFO isolates the data plane: per-arrival cost is probe + insert +
    // expiry, so the batched path's prefetched lookup pass is what's
    // measured (sketch policies bury it under per-tuple estimation math).
    let mk = || {
        EngineBuilder::new(q.clone())
            .policy(Fifo)
            .capacity_per_window(capacity)
            .seed(seed)
            .build()
            .unwrap()
    };
    let det = |m: &EngineMetrics| EngineMetrics {
        sketch_observe_ns: 0,
        priority_rebuild_ns: 0,
        score_ns: 0,
        ..m.clone()
    };
    // Correctness first: the batched replay must be bit-identical.
    let mut per = mk();
    let mut per_sink = CountSink::default();
    for a in &trace {
        per.ingest(a.clone(), &mut per_sink);
    }
    let mut bat = mk();
    let mut bat_sink = CountSink::default();
    for chunk in trace.chunks(batch) {
        bat.ingest_batch(chunk.iter().cloned(), &mut bat_sink);
    }
    assert_eq!(per_sink.produced, bat_sink.produced, "batched produced diverged");
    assert_eq!(det(per.metrics()), det(bat.metrics()), "batched metrics diverged");

    let run_per = || {
        let mut engine = mk();
        let mut sink = CountSink::default();
        for a in &trace {
            engine.ingest(a.clone(), &mut sink);
        }
        black_box(sink.produced);
    };
    let run_bat = || {
        let mut engine = mk();
        let mut sink = CountSink::default();
        for chunk in trace.chunks(batch) {
            engine.ingest_batch(chunk.iter().cloned(), &mut sink);
        }
        black_box(sink.produced);
    };
    run_per(); // warmup
    run_bat();
    let flat = time_ns_per_op(repeats, arrivals as u64, run_bat);
    let base = time_ns_per_op(repeats, arrivals as u64, run_per);
    Row {
        bench: format!("engine_ingest_batch{batch}"),
        baseline: "per-arrival ingest".to_string(),
        baseline_ns_per_op: base,
        flat_ns_per_op: flat,
        speedup: base / flat,
        ops: arrivals as u64,
    }
}

/// The dispatched sign-application kernel (lane/AVX2 path) vs the pinned
/// scalar reference on the same buffers, asserted bitwise-equal first.
fn bench_kernel_signed_copy(len: usize, repeats: usize, seed: u64) -> Row {
    let mut rng = StdRng::seed_from_u64(seed);
    let src: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() - 0.5).collect();
    let words: Vec<u64> = (0..len.div_ceil(64)).map(|_| rng.gen()).collect();
    let mut out_scalar = vec![0f64; len];
    let mut out_vec = vec![0f64; len];
    kernel::scalar::signed_copy(&words, &src, &mut out_scalar);
    kernel::signed_copy(&words, &src, &mut out_vec);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&out_scalar), bits(&out_vec), "signed_copy kernels diverge");
    let mut run_scalar = || {
        kernel::scalar::signed_copy(black_box(&words), black_box(&src), &mut out_scalar);
        black_box(&out_scalar);
    };
    let mut run_vec = || {
        kernel::signed_copy(black_box(&words), black_box(&src), &mut out_vec);
        black_box(&out_vec);
    };
    run_scalar();
    run_vec();
    let flat = time_ns_per_op(repeats.max(50), len as u64, &mut run_vec);
    let base = time_ns_per_op(repeats.max(50), len as u64, &mut run_scalar);
    Row {
        bench: format!("kernel_signed_copy_{len}"),
        baseline: format!("scalar kernel (dispatch: {:?})", kernel::kernel_mode()),
        baseline_ns_per_op: base,
        flat_ns_per_op: flat,
        speedup: base / flat,
        ops: len as u64,
    }
}

/// The dispatched mean-stage kernel (`group_sums`, lane-parallel across
/// groups with serial in-group order) vs the pinned scalar reference,
/// asserted bitwise-equal first.
fn bench_kernel_group_sums(s1: usize, s2: usize, repeats: usize, seed: u64) -> Row {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_copy: Vec<f64> = (0..s1 * s2).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut out_scalar = Vec::new();
    let mut out_vec = Vec::new();
    kernel::scalar::group_sums(&per_copy, s1, s2, &mut out_scalar);
    kernel::group_sums(&per_copy, s1, s2, &mut out_vec);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&out_scalar), bits(&out_vec), "group_sums kernels diverge");
    let mut run_scalar = || {
        out_scalar.clear();
        kernel::scalar::group_sums(black_box(&per_copy), s1, s2, &mut out_scalar);
        black_box(&out_scalar);
    };
    let mut run_vec = || {
        out_vec.clear();
        kernel::group_sums(black_box(&per_copy), s1, s2, &mut out_vec);
        black_box(&out_vec);
    };
    run_scalar();
    run_vec();
    let ops = (s1 * s2) as u64;
    let flat = time_ns_per_op(repeats.max(50), ops, &mut run_vec);
    let base = time_ns_per_op(repeats.max(50), ops, &mut run_scalar);
    Row {
        bench: format!("kernel_group_sums_{s1}x{s2}"),
        baseline: format!("scalar kernel (dispatch: {:?})", kernel::kernel_mode()),
        baseline_ns_per_op: base,
        flat_ns_per_op: flat,
        speedup: base / flat,
        ops,
    }
}

fn main() {
    let a = Args::from_env();
    let quick = a.has_flag("--quick");
    let (per_window, arrivals, repeats) = if quick {
        (1_024, 400, 3)
    } else {
        (4_096, 4_000, 5)
    };
    let (cap, churn) = if quick { (1_024, 4_096) } else { (4_096, 65_536) };
    let (idx_slots, idx_probes) = if quick {
        (4_096, 100_000)
    } else {
        (16_384, 2_000_000)
    };

    let chain3 = query(&[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")], 3);
    let chain2 = query(&[("R1.A1", "R2.A1")], 2);
    let triangle = query(
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1"), ("R3.A2", "R1.A2")],
        3,
    );

    let rows = vec![
        bench_probe_kernel("probe_chain2", &chain2, 0, per_window, arrivals, repeats, a.seed),
        bench_probe_kernel(
            "probe_chain3_end",
            &chain3,
            0,
            per_window,
            arrivals,
            repeats,
            a.seed + 1,
        ),
        bench_probe_kernel(
            "probe_chain3_mid_star",
            &chain3,
            1,
            per_window,
            arrivals,
            repeats,
            a.seed + 2,
        ),
        bench_probe_kernel(
            "probe_triangle_residual",
            &triangle,
            0,
            per_window,
            arrivals,
            repeats,
            a.seed + 3,
        ),
        bench_insert_evict(cap, churn, repeats, a.seed + 4),
        bench_index_probe(idx_slots, idx_probes, repeats, a.seed + 5),
        // Windows sized to hold the whole trace: the stores grow far past
        // cache, so the batched pass's software prefetch has real misses
        // to hide (small resident stores sit in L2 and see pure overhead).
        bench_engine_batched(
            if quick { 12_000 } else { 90_000 },
            if quick { 12_000 } else { 90_000 },
            64,
            repeats,
            a.seed + 6,
        ),
        bench_kernel_signed_copy(if quick { 16_384 } else { 65_536 }, repeats, a.seed + 7),
        bench_kernel_group_sums(32, if quick { 512 } else { 2_048 }, repeats, a.seed + 8),
    ];

    let header: Vec<String> = ["bench", "baseline ns/op", "flat ns/op", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                format!("{:.1}", r.baseline_ns_per_op),
                format!("{:.1}", r.flat_ns_per_op),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    table::print_table("probe/eviction hot path: legacy vs flat", &header, &cells);
    args::maybe_dump_json(&a.json, &rows);
}
