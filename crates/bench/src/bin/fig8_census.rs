//! Figure 8: output size on the census-like workload for window sizes 500s
//! (a) and 1000s (b), under varying memory allocations.
//!
//! The query joins three month-streams on `Oct03.Age = Apr04.Age` and
//! `Apr04.Education = Oct04.Education` (see DESIGN.md §5 for the data
//! substitution). Paper shape: MSketch outperforms every baseline at both
//! window sizes, and the relative ordering is insensitive to the window
//! size.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig8_census               # default --scale 0.5
//! cargo run --release -p mstream-bench --bin fig8_census -- --scale 1  # paper scale (~10 min)
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(0.5);
    let data = paper::census_data(scale, args.seed);
    if args.describe {
        println!("{}", data.describe());
        return;
    }
    let trace = data.generate();
    let opts = RunOptions::default();
    let mut json_rows = Vec::new();
    // (part, window secs, memory grid in percent-of-full-window).
    let parts: [(&str, u64, [f64; 5]); 2] = [
        ("a", (500.0 * scale) as u64, [5.0, 25.0, 50.0, 75.0, 100.0]),
        ("b", (1000.0 * scale) as u64, [2.5, 5.0, 25.0, 50.0, 100.0]),
    ];
    for (part, window, grid) in parts {
        let window = window.max(1);
        let query = paper::census_query(window);
        let full = paper::census_full_window(window);
        let header: Vec<String> = std::iter::once("buffer".to_string())
            .chain(paper::MAX_SUBSET_POLICIES.iter().map(|p| p.to_string()))
            .collect();
        let mut rows = Vec::new();
        let mut by_policy: Vec<Vec<u64>> = vec![Vec::new(); paper::MAX_SUBSET_POLICIES.len()];
        for pct in grid {
            let capacity = ((full as f64 * pct / 100.0).round() as usize).max(1);
            let mut row = vec![format!("{capacity} ({pct}%)")];
            for (pi, policy) in paper::MAX_SUBSET_POLICIES.iter().enumerate() {
                let report =
                    runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed);
                row.push(report.total_output().to_string());
                by_policy[pi].push(report.total_output());
                json_rows.push(serde_json::json!({
                    "figure": format!("8{part}"),
                    "window_secs": window,
                    "memory_pct": pct,
                    "capacity": capacity,
                    "policy": policy,
                    "output": report.total_output(),
                }));
            }
            rows.push(row);
        }
        table::print_table(
            &format!("Figure 8({part}): census-like join, window {window}s (full window {full})"),
            &header,
            &rows,
        );
        // Exclude grid points where nothing sheds (capacity >= full).
        let shedding: Vec<usize> = grid
            .iter()
            .enumerate()
            .filter(|(_, &p)| p < 100.0)
            .map(|(i, _)| i)
            .collect();
        let dominated = shedding.iter().all(|&m| {
            (1..paper::MAX_SUBSET_POLICIES.len()).all(|pi| by_policy[0][m] >= by_policy[pi][m])
        });
        table::print_shape(
            &format!("window {window}s: MSketch >= all baselines wherever shedding occurs"),
            dominated,
        );
    }
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
