//! Figure 5: output tuples per reporting interval over time under concept
//! drift (region-phase feeding), z-intra 1.6–2.0, 75% memory.
//!
//! Paper shape: every algorithm shows a sudden drop when the distribution
//! shifts (the windows still hold the old distribution), and MSketch
//! recovers as quickly as Random — the tumbling-sketch estimates do not
//! leave it stuck on stale history.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig5_drift
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

/// The three algorithms the paper plots in Figure 5.
const POLICIES: [&str; 3] = ["MSketch", "Random", "FIFO"];

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let query = paper::paper_query(paper::scaled_window(scale));
    let mut gen_config =
        paper::paper_regions(paper::Z_INTRA_RANGES[3], scale, args.seed).config().clone();
    gen_config.feed = FeedOrder::RegionPhases;
    let trace = RegionsGenerator::new(gen_config).expect("valid config").generate();
    let bucket = VDur::from_secs(paper::scaled_drift_bucket(scale));
    let opts = RunOptions {
        output_bucket: Some(bucket),
        ..Default::default()
    };
    let capacity = paper::memory_tuples(75, scale);
    // Drift times in seconds (arrival index / arrival rate).
    let drift_secs: Vec<f64> = trace
        .drift_points
        .iter()
        .map(|&i| i as f64 / paper::ARRIVAL_RATE)
        .collect();
    let mut series: Vec<(String, Vec<u64>)> = Vec::new();
    for policy in POLICIES {
        let report = runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed);
        series.push((
            policy.to_string(),
            report.series.expect("requested").counts().to_vec(),
        ));
    }
    let n = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let header: Vec<String> = std::iter::once("t (s)".to_string())
        .chain(POLICIES.iter().map(|p| p.to_string()))
        .chain(std::iter::once("drift".to_string()))
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for i in 0..n {
        let t0 = i as f64 * bucket.as_secs_f64();
        let t1 = t0 + bucket.as_secs_f64();
        let is_drift = drift_secs.iter().any(|&d| d >= t0 && d < t1);
        let mut row = vec![format!("{t0:.0}")];
        for (name, counts) in &series {
            let c = counts.get(i).copied().unwrap_or(0);
            row.push(c.to_string());
            json_rows.push(serde_json::json!({
                "figure": "5", "policy": name, "t": t0, "output": c, "drift": is_drift,
            }));
        }
        row.push(if is_drift { "<-- drift".to_string() } else { String::new() });
        rows.push(row);
    }
    table::print_table(
        &format!(
            "Figure 5: output per {:.0}s interval, drift feed, 75% memory ({capacity} tuples)",
            bucket.as_secs_f64()
        ),
        &header,
        &rows,
    );
    // Shape: MSketch's total is at least Random's (it recovers rather than
    // staying stuck), and every policy dips right after a drift relative to
    // its own pre-drift bucket.
    let totals: Vec<u64> = series.iter().map(|(_, s)| s.iter().sum()).collect();
    table::print_shape(
        &format!(
            "MSketch total ({}) >= Random total ({}) despite drift",
            totals[0], totals[1]
        ),
        totals[0] >= totals[1],
    );
    let drops = |counts: &[u64]| {
        drift_secs
            .iter()
            .filter(|&&d| {
                let i = (d / bucket.as_secs_f64()) as usize;
                i >= 1 && i + 1 < counts.len() && counts[i + 1] < counts[i - 1]
            })
            .count()
    };
    let msketch_drops = drops(&series[0].1);
    table::print_shape(
        &format!(
            "output dips after drift boundaries (MSketch dips at {}/{} boundaries)",
            msketch_drops,
            drift_secs.len()
        ),
        msketch_drops * 2 >= drift_secs.len(),
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
