//! Figure 3: wall-clock processing time (shedding decisions + join
//! processing) per algorithm, on the high-skew data set.
//!
//! The paper's claims: `Random` is cheapest (no estimation at all), the
//! differences are small, and MSketch's sketch maintenance "does not add
//! much time overhead" relative to the join work itself.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig3_time
//! ```
//!
//! Pass `--stage-json <path>` to additionally dump per-policy stage
//! timings (sketch observe / priority rebuild / scoring nanoseconds and
//! packed-sign cache hit rates) — the artifact `scripts/bench_sketch.sh`
//! merges into `BENCH_sketch.json`.

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let query = paper::paper_query(paper::scaled_window(scale));
    let trace = paper::paper_regions(paper::Z_INTRA_RANGES[3], scale, args.seed).generate();
    let opts = RunOptions::default();
    // The paper reports time at one memory setting; 25% keeps every policy
    // busy shedding.
    let capacity = paper::memory_tuples(25, scale);
    let header = vec![
        "policy".to_string(),
        "time (s)".to_string(),
        "output".to_string(),
        "tuples/s".to_string(),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut stage_rows = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for policy in paper::MAX_SUBSET_POLICIES {
        let report = runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed);
        let secs = report.wall_time.as_secs_f64();
        timings.push((policy.to_string(), secs));
        rows.push(vec![
            policy.to_string(),
            format!("{secs:.3}"),
            report.total_output().to_string(),
            table::fmt_num(report.metrics.processed as f64 / secs),
        ]);
        json_rows.push(serde_json::json!({
            "figure": "3",
            "policy": policy,
            "seconds": secs,
            "output": report.total_output(),
        }));
        let m = &report.metrics;
        let lookups = m.sign_cache_hits + m.sign_cache_misses;
        stage_rows.push(serde_json::json!({
            "policy": policy,
            "wall_seconds": secs,
            "processed": m.processed,
            "sketch_observe_ns": m.sketch_observe_ns,
            "priority_rebuild_ns": m.priority_rebuild_ns,
            "score_ns": m.score_ns,
            "sign_cache_hits": m.sign_cache_hits,
            "sign_cache_misses": m.sign_cache_misses,
            "sign_cache_hit_rate": if lookups > 0 {
                m.sign_cache_hits as f64 / lookups as f64
            } else {
                0.0
            },
        }));
    }
    table::print_table(
        &format!("Figure 3: processing time, z-intra 1.6-2.0, {capacity} tuples/window (25%)"),
        &header,
        &rows,
    );
    let time_of = |name: &str| {
        timings
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, t)| t)
            .expect("policy timed")
    };
    table::print_shape(
        "Random is the fastest policy (it makes no estimation and produces the least output)",
        timings
            .iter()
            .all(|(n, t)| n == "Random" || *t >= 0.85 * time_of("Random")),
    );
    // Paper §5.1.1: "the computation time for MSketch and Bjoin are almost
    // the same".
    table::print_shape(
        &format!(
            "MSketch and Bjoin take comparable time, <= 2.5x (measured {:.2}x)",
            time_of("MSketch") / time_of("Bjoin")
        ),
        time_of("MSketch") <= 2.5 * time_of("Bjoin"),
    );
    // Paper: "MSketch does not add much time overhead for the multi-way
    // join computation" — normalize by useful work (result tuples), since
    // the semantic policies also produce ~10x more output.
    let per_output = |name: &str| {
        let out = json_rows
            .iter()
            .find(|r| r["policy"] == name)
            .and_then(|r| r["output"].as_u64())
            .unwrap_or(1)
            .max(1) as f64;
        time_of(name) / out
    };
    table::print_shape(
        &format!(
            "per-result-tuple cost of MSketch is close to Random's ({:.1}ns vs {:.1}ns)",
            per_output("MSketch") * 1e9,
            per_output("Random") * 1e9
        ),
        per_output("MSketch") <= 2.0 * per_output("Random"),
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
    if let Some(path) = args.flag_value("--stage-json") {
        mstream_bench::args::maybe_dump_json(&Some(path.to_string()), &stage_rows);
    }
}
