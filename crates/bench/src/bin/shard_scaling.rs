//! Shard-scaling throughput: the sharded engine on a key-partitionable
//! variant of the paper's query across a sweep of worker counts.
//!
//! Not a figure from the paper — the ICDE'07 operator is single-threaded —
//! but the measurement behind the sharded-execution design notes in
//! DESIGN.md (§11, §12): when every predicate rides one attribute class,
//! hash partitioning splits both the work and the memory budget `S` ways
//! with no cross-shard probes, so throughput should scale until routing
//! skew or channel overhead dominates. The `--zipf` workload measures the
//! skew-adaptive answer to the "routing skew dominates" failure mode:
//! heavy-hitter keys are split across shards with replicated build sides,
//! so probe-work imbalance stays near 1.0 even when one key carries >60%
//! of the traffic.
//!
//! Each shard count gets one untimed warmup pass (thread spin-up, page
//! faults, allocator steady state), then fresh-engine passes over the same
//! trace until at least `--min-secs` (default 1) of measured wall time
//! accumulates, so a point is never a single sub-second sample.
//!
//! Every pass also samples the process-wide allocation counter over the
//! second half of the trace (after the batch-buffer pool has primed) and
//! reports routing imbalance (max shard probe load over the mean). With
//! `--route-only`, workers drain batches without joining, isolating the
//! data-plane cost — mint + route + channel round-trip — where steady
//! state must allocate **zero** times per arrival for inline arities.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin shard_scaling
//! cargo run --release -p mstream-bench --bin shard_scaling -- --route-only
//! cargo run --release -p mstream-bench --bin shard_scaling -- --zipf 2.0 --shards 1,4,8
//! cargo run --release -p mstream-bench --bin shard_scaling -- --scale 0.2 --mem-pct 100 --json out.json
//! ```
//!
//! Flags beyond the common set:
//!
//! * `--zipf <theta>` — replace the regions trace with a synthetic
//!   Zipf(theta) hot-key trace (domain 1000, tuple windows), and arm an
//!   aggressive hot-key detector (epoch 64 arrivals, promote at 5‰).
//! * `--shards <list>` — comma-separated shard counts (default `1,2,4,8`);
//!   speedups are relative to the first entry.
//! * `--mem-pct <pct>` — total memory as a percentage of the full window
//!   (default 25). At >= 100 the run is made provably lossless (every
//!   window can hold the whole trace on every shard), so every shard
//!   count produces the identical output multiset (the skewed-route
//!   differential smoke in check.sh gates on this).
//! * `--disorder <list>` — comma-separated disorder bounds K in
//!   milliseconds (e.g. `0,16,256`). Each K gets its own sweep point per
//!   shard count: the feed order is shuffled with per-arrival lateness
//!   bounded by K (deterministic jitter sort) and the coordinator's
//!   event-time front end is armed with the same bound (DESIGN.md §13),
//!   so the rows measure pure reorder-buffer overhead — covered disorder
//!   must reproduce the identical output at every K, and the
//!   `shard_scaling_disorder` section of BENCH_shard.json gates the
//!   wall-time cost.
//! * `--batch <list>` — comma-separated worker ingest-batch sizes (e.g.
//!   `0,64,256`). `0` switches the workers to the per-arrival reference
//!   path (`batch_ingest: false`); any other value runs the
//!   batch-amortized path with that channel batch size (DESIGN.md §15).
//!   Batching is bit-identical by contract, so every batch value must
//!   reproduce the identical output per shard count — the rows measure
//!   pure amortization gain, and the `shard_scaling_batch` section of
//!   BENCH_shard.json gates the wall time.

use mstream_bench::{args, paper, table, Args};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with a process-wide allocation counter, so
/// the bench can demonstrate the data plane's zero-allocation steady
/// state without external tooling.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The paper's 3-relation shape with both predicates through `A1` — one
/// attribute-equivalence class, so the query partitions by key.
fn keyed_query(window: WindowSpec) -> JoinQuery {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(catalog, &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")], window)
        .expect("valid query")
}

/// Tuple window for the Zipf workload: deep enough that the hot-key
/// fan-out gate (one full window turnover per stream) opens in ~300
/// arrivals, shallow enough that per-shard replicated windows stay small.
const ZIPF_WINDOW: u64 = 100;

/// Join-key domain of the Zipf workload.
const ZIPF_DOMAIN: u64 = 1000;

/// A synthetic Zipf(theta) hot-key trace: arrivals rotate across the
/// three streams; the join key (attr 0) is drawn from a Zipf(theta)
/// distribution over `ZIPF_DOMAIN` values via inverse-CDF sampling (at
/// theta = 2.0 the top key alone carries ~61% of the traffic), the
/// second attribute is uniform noise.
fn zipf_trace(theta: f64, arrivals: usize, seed: u64) -> Trace {
    let weights: Vec<f64> = (1..=ZIPF_DOMAIN)
        .map(|k| 1.0 / (k as f64).powf(theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for i in 0..arrivals {
        let u: f64 = rng.gen();
        let key = cdf.partition_point(|&c| c < u) as u64;
        trace.push(
            StreamId(i % 3),
            vec![Value(key), Value(rng.gen_range(0..ZIPF_DOMAIN))],
        );
    }
    trace
}

/// The aggressive detector for the Zipf workload: decisions every 64
/// arrivals, promotion at a guaranteed 5‰ share (at theta = 2.0 that
/// certifies the ~11 keys carrying ~95% of traffic), tracker sized past
/// the key domain so counts are exact.
fn zipf_hot_config() -> HotKeyConfig {
    HotKeyConfig {
        enabled: true,
        capacity: 64,
        tracker_capacity: 2048,
        epoch_arrivals: 64,
        promote_permille: 5,
        demote_permille: 2,
    }
}

struct Pass {
    report: ShardedRunReport,
    /// Allocation calls observed process-wide over the trace's second
    /// half (buffer pool primed; includes worker-thread join work unless
    /// `--route-only`).
    steady_allocs: u64,
}

/// Largest shard probe load divided by the mean load (1.0 = even).
fn imbalance(routed: &[u64]) -> f64 {
    let total: u64 = routed.iter().sum();
    if total == 0 || routed.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / routed.len() as f64;
    routed.iter().copied().max().unwrap_or(0) as f64 / mean
}

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let route_only = args.has_flag("--route-only");
    let min_secs: f64 = args
        .flag_value("--min-secs")
        .map(|v| v.parse().expect("--min-secs takes a number"))
        .unwrap_or(1.0);
    let zipf_theta: Option<f64> = args
        .flag_value("--zipf")
        .map(|v| v.parse().expect("--zipf takes the exponent theta"));
    let shard_list: Vec<usize> = args
        .flag_value("--shards")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--shards takes e.g. 1,2,4,8"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    assert!(!shard_list.is_empty(), "--shards needs at least one count");
    let mem_pct: u32 = args
        .flag_value("--mem-pct")
        .map(|v| v.parse().expect("--mem-pct takes a percentage"))
        .unwrap_or(25);
    let disorder_ms: Option<Vec<u64>> = args.flag_value("--disorder").map(|v| {
        v.split(',')
            .map(|s| s.trim().parse().expect("--disorder takes e.g. 0,16,256 (ms)"))
            .collect()
    });
    let batch_list: Option<Vec<usize>> = args.flag_value("--batch").map(|v| {
        v.split(',')
            .map(|s| s.trim().parse().expect("--batch takes e.g. 0,64,256"))
            .collect()
    });
    assert!(
        disorder_ms.is_none() || batch_list.is_none(),
        "--disorder and --batch sweep different dimensions; pass one at a time"
    );

    let (query, trace, base_capacity, workload) = match zipf_theta {
        Some(theta) => {
            // Long enough that the one-time detection + fan-out-gate
            // transient (a few hundred home-pinned arrivals per hot key)
            // amortizes into the steady-state routing balance.
            let arrivals = ((100_000.0 * scale).round() as usize).max(600);
            (
                keyed_query(WindowSpec::Tuples(ZIPF_WINDOW)),
                zipf_trace(theta, arrivals, args.seed),
                ((ZIPF_WINDOW as usize * mem_pct as usize) / 100).max(2),
                "zipf",
            )
        }
        None => (
            keyed_query(WindowSpec::secs(paper::scaled_window(scale))),
            paper::paper_regions(paper::Z_INTRA_RANGES[1], scale, args.seed).generate(),
            paper::memory_tuples(mem_pct, scale),
            "uniform",
        ),
    };
    let rate = 1000.0;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // One delivery order per disorder bound: index `i`'s sort key is its
    // schedule instant (`i·dt`) plus a deterministic jitter in `[0, K]`,
    // ties broken by index. Delivered lateness never exceeds K (an
    // earlier-keyed arrival's instant is at most `key ≤ ts + K` ahead), so
    // a front end armed with bound K accepts every arrival and the run
    // measures pure reordering overhead — no output changes.
    let dt = VDur::from_rate(rate);
    let delivery_order = |k_ms: u64| -> Vec<usize> {
        let k_micros = k_ms * 1000;
        let mut keyed: Vec<(u64, usize)> = (0..trace.len())
            .map(|i| {
                let mixed = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
                (dt.mul(i as u64).as_micros() + mixed % (k_micros + 1), i)
            })
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, i)| i).collect()
    };

    let run_pass = |shards: usize, disorder: Option<(u64, &[usize])>, batch: Option<usize>| -> Pass {
        // At >= 100% the run is made *provably* lossless instead of
        // nominally so: every window can hold the whole trace on every
        // shard (hot-key splitting replicates build sides, so "full
        // memory" must survive any routing — DESIGN.md §12 memory math).
        // A budget of exactly the window's occupancy still sheds at the
        // insert instant, before expiry frees the outgoing slot.
        let capacity = if mem_pct >= 100 {
            (trace.len() + 1) * shards
        } else {
            base_capacity
        };
        let hot_keys = if zipf_theta.is_some() {
            zipf_hot_config()
        } else {
            HotKeyConfig::default()
        };
        let mut builder = EngineBuilder::new(query.clone())
            .policy(MSketch)
            .capacity_per_window(capacity)
            .seed(args.seed);
        if let Some((k_ms, _)) = disorder {
            builder = builder.disorder_bound(VDur::from_micros(k_ms * 1000));
        }
        // `--batch 0` is the per-arrival reference; any other value runs
        // the batch-amortized worker path with that channel batch size.
        let (batch_ingest, batch_size) = match batch {
            Some(0) => (false, 256),
            Some(n) => (true, n),
            None => (true, 256),
        };
        let mut engine = builder
            .shard_config(ShardConfig {
                shards,
                channel_capacity: 64,
                batch_size,
                backpressure: Backpressure::Block,
                collect_rows: false,
                route_only,
                hot_keys,
                batch_ingest,
                ..ShardConfig::default()
            })
            .build_sharded()
            .expect("valid engine");
        assert_eq!(engine.shards(), shards, "query must partition");
        // Feed the trace on run_trace's virtual-time schedule (each
        // arrival's timestamp is its *scheduled* instant even when the
        // delivery order is shuffled), snapshotting the allocation counter
        // at the halfway point: by then the batch buffers are recycling,
        // so the second half is the steady state.
        let half = trace.len() / 2;
        let mut before = 0u64;
        for p in 0..trace.len() {
            if p == half {
                before = ALLOC_CALLS.load(Ordering::Relaxed);
            }
            let i = disorder.map_or(p, |(_, order)| order[p]);
            let item = &trace.items[i];
            let now = VTime::ZERO + dt.mul(i as u64);
            engine.ingest(Arrival::new(item.stream, item.values.clone(), now));
        }
        let steady_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        let report = engine.finish().expect("workers exit cleanly");
        Pass {
            report,
            steady_allocs,
        }
    };

    let k_orders: Vec<(u64, Vec<usize>)> = disorder_ms
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|&k| (k, delivery_order(k)))
        .collect();
    let mut points: Vec<(usize, Option<u64>, Option<usize>)> = Vec::new();
    for &shards in &shard_list {
        match (&disorder_ms, &batch_list) {
            (Some(ks), _) => points.extend(ks.iter().map(|&k| (shards, Some(k), None))),
            (None, Some(bs)) => points.extend(bs.iter().map(|&b| (shards, None, Some(b)))),
            (None, None) => points.push((shards, None, None)),
        }
    }

    let mut header = vec![
        "shards".to_string(),
        "time (s)".to_string(),
        "passes".to_string(),
        "output".to_string(),
        "tuples/s".to_string(),
        "imbalance".to_string(),
        "promoted".to_string(),
        "steady allocs".to_string(),
        "score (ms)".to_string(),
        "rebuild (ms)".to_string(),
        "speedup".to_string(),
    ];
    if disorder_ms.is_some() {
        header.insert(1, "K (ms)".to_string());
    }
    if batch_list.is_some() {
        header.insert(1, "batch".to_string());
    }
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut base_secs = 0.0f64;
    let mut times = Vec::new();
    for (point, &(shards, k_ms, batch)) in points.iter().enumerate() {
        let disorder = k_ms.map(|k| {
            let order = &k_orders.iter().find(|(ko, _)| *ko == k).expect("order built").1;
            (k, order.as_slice())
        });
        // Untimed warmup: thread spin-up, page faults, allocator warm.
        let warm = run_pass(shards, disorder, batch);
        // Timed passes until the point has accumulated `min_secs` of wall
        // time; each pass is a fresh engine over the same trace.
        let mut total_secs = 0.0f64;
        let mut passes = 0u32;
        let mut output = 0u64;
        let mut processed = 0u64;
        let mut replicated = 0u64;
        let mut shed_window = 0u64;
        let mut hot_promoted = 0u64;
        let mut score_ns = 0u64;
        let mut priority_rebuild_ns = 0u64;
        let mut steady_allocs = u64::MAX;
        let mut skew = 1.0f64;
        let mut routed = Vec::new();
        let mut resident = Vec::new();
        while total_secs < min_secs {
            let pass = run_pass(shards, disorder, batch);
            assert_eq!(
                pass.report.combined.total_output(),
                warm.report.combined.total_output(),
                "passes must be deterministic"
            );
            total_secs += pass.report.combined.wall_time.as_secs_f64();
            output = pass.report.combined.total_output();
            processed = pass.report.combined.metrics.processed;
            replicated = pass.report.combined.metrics.replicated;
            shed_window = pass.report.combined.metrics.shed_window;
            hot_promoted = pass.report.hot_promoted;
            // Summed across shards (the coordinator merge): the shedding
            // decision + rollover rescoring cost the score cache targets.
            score_ns = pass.report.combined.metrics.score_ns;
            priority_rebuild_ns = pass.report.combined.metrics.priority_rebuild_ns;
            // Keep the *minimum* steady-state count: any single pass with
            // zero allocations proves the plane itself allocates nothing
            // (other passes can be polluted by OS/runtime noise).
            steady_allocs = steady_allocs.min(pass.steady_allocs);
            skew = imbalance(&pass.report.routed);
            routed = pass.report.routed.clone();
            resident = pass.report.resident.clone();
            passes += 1;
        }
        let secs = total_secs / passes as f64;
        if point == 0 {
            base_secs = secs;
        }
        times.push(secs);
        let throughput = if route_only {
            trace.len() as f64 / secs
        } else {
            processed as f64 / secs
        };
        let mut row = vec![
            shards.to_string(),
            format!("{secs:.3}"),
            passes.to_string(),
            output.to_string(),
            table::fmt_num(throughput),
            format!("{skew:.2}"),
            hot_promoted.to_string(),
            steady_allocs.to_string(),
            format!("{:.2}", score_ns as f64 / 1e6),
            format!("{:.2}", priority_rebuild_ns as f64 / 1e6),
            format!("{:.2}x", base_secs / secs),
        ];
        if let Some(k) = k_ms {
            row.insert(1, k.to_string());
        }
        if let Some(b) = batch {
            row.insert(1, if b == 0 { "off".into() } else { b.to_string() });
        }
        rows.push(row);
        let json_row = serde_json::json!({
            "shards": shards,
            "seconds": secs,
            "passes": passes,
            "measured_seconds": total_secs,
            "arrivals": trace.len(),
            "output": output,
            "processed": processed,
            "replicated": replicated,
            "shed_window": shed_window,
            "imbalance": skew,
            "routed": routed,
            "resident": resident,
            "hot_promoted": hot_promoted,
            "steady_allocs": steady_allocs,
            "score_ns": score_ns,
            "priority_rebuild_ns": priority_rebuild_ns,
            "route_only": route_only,
            "workload": workload,
            "zipf_theta": zipf_theta,
            "mem_pct": mem_pct,
            "cores": cores,
            "speedup": base_secs / secs,
        });
        let json_row = match (k_ms, json_row) {
            (Some(k), serde_json::Value::Object(mut m)) => {
                m.push(("disorder_k_ms".to_string(), serde_json::json!(k)));
                serde_json::Value::Object(m)
            }
            (_, v) => v,
        };
        let json_row = match (batch, json_row) {
            (Some(b), serde_json::Value::Object(mut m)) => {
                m.push(("batch".to_string(), serde_json::json!(b)));
                serde_json::Value::Object(m)
            }
            (_, v) => v,
        };
        json_rows.push(json_row);
    }
    let title = if let Some(ks) = &disorder_ms {
        format!(
            "Shard scaling (bounded disorder K ∈ {ks:?} ms): keyed 3-way join, {mem_pct}% memory, {} arrivals",
            trace.len()
        )
    } else if let Some(bs) = &batch_list {
        format!(
            "Shard scaling (ingest batch ∈ {bs:?}, 0 = per-arrival): keyed 3-way join, {mem_pct}% memory, {} arrivals",
            trace.len()
        )
    } else if route_only {
        format!(
            "Shard scaling (route-only data plane): keyed 3-way join trace, {} arrivals",
            trace.len()
        )
    } else if let Some(theta) = zipf_theta {
        format!(
            "Shard scaling (Zipf theta={theta} hot keys): keyed 3-way join, {mem_pct}% memory, {} arrivals",
            trace.len()
        )
    } else {
        format!("Shard scaling: keyed 3-way join, {mem_pct}% memory ({base_capacity} tuples total)")
    };
    table::print_table(&title, &header, &rows);
    if disorder_ms.is_some() {
        // The headline is deterministic: covered disorder is invisible —
        // every K (including 0) must reproduce the identical output count
        // at every shard count, with the reorder buffer the only cost.
        let invisible = json_rows
            .windows(2)
            .all(|w| w[0]["shards"] != w[1]["shards"] || w[0]["output"] == w[1]["output"]);
        table::print_shape(
            "bounded disorder is output-invisible (every K reproduces the same output per shard count)",
            invisible,
        );
    } else if batch_list.is_some() {
        // Batching is bit-identical by contract: every batch size
        // (including 0 = per-arrival) must reproduce the same output at
        // every shard count, so the sweep measures pure amortization.
        let invisible = json_rows
            .windows(2)
            .all(|w| w[0]["shards"] != w[1]["shards"] || w[0]["output"] == w[1]["output"]);
        table::print_shape(
            "batch-amortized ingest is output-invisible (every batch size reproduces the same output per shard count)",
            invisible,
        );
    } else if route_only {
        table::print_shape(
            "steady-state data plane allocates nothing (some pass saw 0 allocs per arrival)",
            json_rows
                .iter()
                .any(|r| r["steady_allocs"].as_u64() == Some(0)),
        );
    } else if zipf_theta.is_some() {
        // The skew headline is deterministic (routing, not wall time):
        // heavy-hitter splitting must hold probe-work imbalance near 1.0
        // at every multi-shard point despite the >60%-share hot key.
        let balanced = json_rows
            .iter()
            .filter(|r| r["shards"].as_u64().unwrap_or(1) > 1)
            .all(|r| r["imbalance"].as_f64().unwrap_or(f64::MAX) <= 1.05);
        table::print_shape(
            "hot-key splitting holds probe imbalance <= 1.05 at every multi-shard point",
            balanced,
        );
    } else if times.len() >= 2 && cores > 1 {
        table::print_shape(
            "multi-shard beats single-shard wall time (some multi-shard point faster than the first)",
            times[1..].iter().any(|t| *t < times[0]),
        );
    } else {
        println!(
            "# paper-shape: wall-time scaling not evaluated ({} measured point(s), {cores} core(s))",
            times.len()
        );
    }
    args::maybe_dump_json(&args.json, &json_rows);
}
