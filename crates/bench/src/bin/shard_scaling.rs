//! Shard-scaling throughput: the sharded engine on a key-partitionable
//! variant of the paper's query at S ∈ {1, 2, 4, 8} workers.
//!
//! Not a figure from the paper — the ICDE'07 operator is single-threaded —
//! but the measurement behind the sharded-execution design note in
//! DESIGN.md (§11): when every predicate rides one attribute class, hash
//! partitioning splits both the work and the memory budget `S` ways with
//! no cross-shard probes, so throughput should scale until routing skew or
//! channel overhead dominates.
//!
//! Each shard count gets one untimed warmup pass (thread spin-up, page
//! faults, allocator steady state), then fresh-engine passes over the same
//! trace until at least `--min-secs` (default 1) of measured wall time
//! accumulates, so a point is never a single sub-second sample.
//!
//! Every pass also samples the process-wide allocation counter over the
//! second half of the trace (after the batch-buffer pool has primed) and
//! reports routing imbalance (max shard load over the mean). With
//! `--route-only`, workers drain batches without joining, isolating the
//! data-plane cost — mint + route + channel round-trip — where steady
//! state must allocate **zero** times per arrival for inline arities.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin shard_scaling
//! cargo run --release -p mstream-bench --bin shard_scaling -- --route-only
//! cargo run --release -p mstream-bench --bin shard_scaling -- --scale 0.2 --min-secs 2 --json out.json
//! ```

use mstream_bench::{args, paper, table, Args};
use mstream_core::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with a process-wide allocation counter, so
/// the bench can demonstrate the data plane's zero-allocation steady
/// state without external tooling.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The paper's 3-relation shape with both predicates through `A1` — one
/// attribute-equivalence class, so the query partitions by key.
fn keyed_query(window_secs: u64) -> JoinQuery {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        catalog,
        &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .expect("valid query")
}

struct Pass {
    report: ShardedRunReport,
    /// Allocation calls observed process-wide over the trace's second
    /// half (buffer pool primed; includes worker-thread join work unless
    /// `--route-only`).
    steady_allocs: u64,
}

/// Largest shard load divided by the mean load (1.0 = perfectly even).
fn imbalance(routed: &[u64]) -> f64 {
    let total: u64 = routed.iter().sum();
    if total == 0 || routed.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / routed.len() as f64;
    routed.iter().copied().max().unwrap_or(0) as f64 / mean
}

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let route_only = args.has_flag("--route-only");
    let min_secs: f64 = args
        .flag_value("--min-secs")
        .map(|v| v.parse().expect("--min-secs takes a number"))
        .unwrap_or(1.0);
    let query = keyed_query(paper::scaled_window(scale));
    let trace = paper::paper_regions(paper::Z_INTRA_RANGES[1], scale, args.seed).generate();
    let capacity = paper::memory_tuples(25, scale);
    let rate = 1000.0;

    let run_pass = |shards: usize| -> Pass {
        let mut engine = EngineBuilder::new(query.clone())
            .policy(MSketch)
            .capacity_per_window(capacity)
            .seed(args.seed)
            .shard_config(ShardConfig {
                shards,
                channel_capacity: 64,
                batch_size: 256,
                backpressure: Backpressure::Block,
                collect_rows: false,
                route_only,
            })
            .build_sharded()
            .expect("valid engine");
        assert_eq!(engine.shards(), shards, "query must partition");
        // Feed the trace on run_trace's virtual-time schedule, snapshotting
        // the allocation counter at the halfway point: by then the batch
        // buffers are recycling, so the second half is the steady state.
        let half = trace.len() / 2;
        let dt = VDur::from_rate(rate);
        let mut before = 0u64;
        for (i, item) in trace.items.iter().enumerate() {
            if i == half {
                before = ALLOC_CALLS.load(Ordering::Relaxed);
            }
            let now = VTime::ZERO + dt.mul(i as u64);
            engine.ingest(Arrival::new(item.stream, item.values.clone(), now));
        }
        let steady_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        let report = engine.finish().expect("workers exit cleanly");
        Pass {
            report,
            steady_allocs,
        }
    };

    let header = vec![
        "shards".to_string(),
        "time (s)".to_string(),
        "passes".to_string(),
        "output".to_string(),
        "tuples/s".to_string(),
        "imbalance".to_string(),
        "steady allocs".to_string(),
        "speedup".to_string(),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut base_secs = 0.0f64;
    let mut times = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // Untimed warmup: thread spin-up, page faults, allocator warm.
        let warm = run_pass(shards);
        // Timed passes until the point has accumulated `min_secs` of wall
        // time; each pass is a fresh engine over the same trace.
        let mut total_secs = 0.0f64;
        let mut passes = 0u32;
        let mut output = 0u64;
        let mut processed = 0u64;
        let mut shed_window = 0u64;
        let mut steady_allocs = u64::MAX;
        let mut skew = 1.0f64;
        while total_secs < min_secs {
            let pass = run_pass(shards);
            assert_eq!(
                pass.report.combined.total_output(),
                warm.report.combined.total_output(),
                "passes must be deterministic"
            );
            total_secs += pass.report.combined.wall_time.as_secs_f64();
            output = pass.report.combined.total_output();
            processed = pass.report.combined.metrics.processed;
            shed_window = pass.report.combined.metrics.shed_window;
            // Keep the *minimum* steady-state count: any single pass with
            // zero allocations proves the plane itself allocates nothing
            // (other passes can be polluted by OS/runtime noise).
            steady_allocs = steady_allocs.min(pass.steady_allocs);
            skew = imbalance(&pass.report.routed);
            passes += 1;
        }
        let secs = total_secs / passes as f64;
        if shards == 1 {
            base_secs = secs;
        }
        times.push(secs);
        let throughput = if route_only {
            trace.len() as f64 / secs
        } else {
            processed as f64 / secs
        };
        rows.push(vec![
            shards.to_string(),
            format!("{secs:.3}"),
            passes.to_string(),
            output.to_string(),
            table::fmt_num(throughput),
            format!("{skew:.2}"),
            steady_allocs.to_string(),
            format!("{:.2}x", base_secs / secs),
        ]);
        json_rows.push(serde_json::json!({
            "shards": shards,
            "seconds": secs,
            "passes": passes,
            "measured_seconds": total_secs,
            "arrivals": trace.len(),
            "output": output,
            "processed": processed,
            "shed_window": shed_window,
            "imbalance": skew,
            "steady_allocs": steady_allocs,
            "route_only": route_only,
            "speedup": base_secs / secs,
        }));
    }
    let title = if route_only {
        format!("Shard scaling (route-only data plane): keyed 3-way join trace, {} arrivals", trace.len())
    } else {
        format!("Shard scaling: keyed 3-way join, 25% memory ({capacity} tuples total)")
    };
    table::print_table(&title, &header, &rows);
    if route_only {
        table::print_shape(
            "steady-state data plane allocates nothing (some pass saw 0 allocs per arrival)",
            json_rows
                .iter()
                .any(|r| r["steady_allocs"].as_u64() == Some(0)),
        );
    } else {
        table::print_shape(
            "multi-shard beats single-shard wall time (2 or 4 workers faster than 1)",
            times[1] < times[0] || times[2] < times[0],
        );
    }
    args::maybe_dump_json(&args.json, &json_rows);
}
