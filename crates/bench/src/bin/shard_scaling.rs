//! Shard-scaling throughput: the sharded engine on a key-partitionable
//! variant of the paper's query at S ∈ {1, 2, 4, 8} workers.
//!
//! Not a figure from the paper — the ICDE'07 operator is single-threaded —
//! but the measurement behind the sharded-execution design note in
//! DESIGN.md: when every predicate rides one attribute class, hash
//! partitioning splits both the work and the memory budget `S` ways with
//! no cross-shard probes, so throughput should scale until routing skew or
//! channel overhead dominates.
//!
//! Each shard count gets one untimed warmup pass (thread spin-up, page
//! faults, allocator steady state), then fresh-engine passes over the same
//! trace until at least `--min-secs` (default 1) of measured wall time
//! accumulates, so a point is never a single sub-second sample.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin shard_scaling
//! cargo run --release -p mstream-bench --bin shard_scaling -- --scale 0.2 --min-secs 2 --json out.json
//! ```

use mstream_bench::{args, paper, table, Args};
use mstream_core::prelude::*;

/// The paper's 3-relation shape with both predicates through `A1` — one
/// attribute-equivalence class, so the query partitions by key.
fn keyed_query(window_secs: u64) -> JoinQuery {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        catalog,
        &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .expect("valid query")
}

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let min_secs: f64 = args
        .flag_value("--min-secs")
        .map(|v| v.parse().expect("--min-secs takes a number"))
        .unwrap_or(1.0);
    let query = keyed_query(paper::scaled_window(scale));
    let trace = paper::paper_regions(paper::Z_INTRA_RANGES[1], scale, args.seed).generate();
    let capacity = paper::memory_tuples(25, scale);
    let rate = 1000.0;

    let run_pass = |shards: usize| {
        let engine = EngineBuilder::new(query.clone())
            .policy(MSketch)
            .capacity_per_window(capacity)
            .seed(args.seed)
            .shard_config(ShardConfig {
                shards,
                channel_capacity: 64,
                batch_size: 256,
                backpressure: Backpressure::Block,
                collect_rows: false,
            })
            .build_sharded()
            .expect("valid engine");
        let report = engine.run_trace(&trace, rate).expect("workers exit cleanly");
        assert_eq!(report.combined.shards, shards, "query must partition");
        report
    };

    let header = vec![
        "shards".to_string(),
        "time (s)".to_string(),
        "passes".to_string(),
        "output".to_string(),
        "tuples/s".to_string(),
        "speedup".to_string(),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut base_secs = 0.0f64;
    let mut times = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // Untimed warmup: thread spin-up, page faults, allocator warm.
        let warm = run_pass(shards);
        // Timed passes until the point has accumulated `min_secs` of wall
        // time; each pass is a fresh engine over the same trace.
        let mut total_secs = 0.0f64;
        let mut passes = 0u32;
        let mut output = 0u64;
        let mut processed = 0u64;
        let mut shed_window = 0u64;
        while total_secs < min_secs {
            let report = run_pass(shards);
            assert_eq!(
                report.combined.total_output(),
                warm.combined.total_output(),
                "passes must be deterministic"
            );
            total_secs += report.combined.wall_time.as_secs_f64();
            output = report.combined.total_output();
            processed = report.combined.metrics.processed;
            shed_window = report.combined.metrics.shed_window;
            passes += 1;
        }
        let secs = total_secs / passes as f64;
        if shards == 1 {
            base_secs = secs;
        }
        times.push(secs);
        rows.push(vec![
            shards.to_string(),
            format!("{secs:.3}"),
            passes.to_string(),
            output.to_string(),
            table::fmt_num(processed as f64 / secs),
            format!("{:.2}x", base_secs / secs),
        ]);
        json_rows.push(serde_json::json!({
            "shards": shards,
            "seconds": secs,
            "passes": passes,
            "measured_seconds": total_secs,
            "arrivals": trace.len(),
            "output": output,
            "processed": processed,
            "shed_window": shed_window,
            "speedup": base_secs / secs,
        }));
    }
    table::print_table(
        &format!("Shard scaling: keyed 3-way join, 25% memory ({capacity} tuples total)"),
        &header,
        &rows,
    );
    table::print_shape(
        "multi-shard beats single-shard wall time (2 or 4 workers faster than 1)",
        times[1] < times[0] || times[2] < times[0],
    );
    args::maybe_dump_json(&args.json, &json_rows);
}
