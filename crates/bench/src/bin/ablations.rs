//! Design-choice ablations (DESIGN.md §7) — not figures from the paper but
//! measurements of the choices its design fixes silently:
//!
//! 1. **Sketch accuracy** (`s1` sweep): how many atomic-sketch copies the
//!    productivity estimate needs before MSketch's ranking beats exact
//!    pairwise frequencies.
//! 2. **Epoch discipline**: scoring against the last completed tumbling
//!    window (the paper's choice) vs the live current-epoch sketches.
//! 3. **Memory allocation**: fixed per-window allocation (the paper's
//!    reported setting) vs the global shared pool it tried and dismissed
//!    as "not so significant".
//!
//! ```text
//! cargo run --release -p mstream-bench --bin ablations
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let query = paper::paper_query(paper::scaled_window(scale));
    let trace = paper::paper_regions(paper::Z_INTRA_RANGES[3], scale, args.seed).generate();
    let opts = RunOptions::default();
    let capacity = paper::memory_tuples(25, scale);
    let mut json_rows = Vec::new();

    // 1. s1 sweep.
    let mut rows = Vec::new();
    let mut outputs = Vec::new();
    for s1 in [50usize, 200, 1000, 4000] {
        let mut engine = EngineBuilder::new(query.clone())
            .policy(MSketch)
            .capacity_per_window(capacity)
            .bank(BankConfig {
                s1,
                s2: 1,
                seed: args.seed ^ 0x5EED,
            })
            .seed(args.seed)
            .build()
            .expect("valid");
        let report = run_trace(&mut engine, &trace, &opts);
        outputs.push(report.total_output());
        rows.push(vec![
            s1.to_string(),
            report.total_output().to_string(),
            format!("{:.2}", report.wall_time.as_secs_f64()),
        ]);
        json_rows.push(serde_json::json!({
            "ablation": "s1", "s1": s1, "output": report.total_output(),
            "seconds": report.wall_time.as_secs_f64(),
        }));
    }
    table::print_table(
        &format!("Ablation 1: MSketch output vs sketch copies s1 (25% memory, {capacity} tuples)"),
        &["s1".to_string(), "output".to_string(), "time (s)".to_string()],
        &rows,
    );
    table::print_shape(
        "more sketch copies monotonically help (within noise): s1=1000 > s1=50",
        outputs[2] > outputs[0],
    );

    // 2. Epoch discipline: last-epoch vs current-epoch scoring.
    let mut rows = Vec::new();
    let mut epoch_outputs = Vec::new();
    for policy_name in ["MSketch", "msketch-current"] {
        let report = runner::run_policy(&query, policy_name, capacity, &trace, &opts, args.seed);
        epoch_outputs.push(report.total_output());
        rows.push(vec![
            if policy_name == "MSketch" { "last epoch (paper)" } else { "current epoch" }
                .to_string(),
            report.total_output().to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "ablation": "epoch", "variant": policy_name, "output": report.total_output(),
        }));
    }
    table::print_table(
        "Ablation 2: scoring against last vs current tumbling epoch",
        &["variant".to_string(), "output".to_string()],
        &rows,
    );
    table::print_shape(
        "last-epoch scoring (the paper's design) is at least competitive",
        epoch_outputs[0] as f64 >= 0.8 * epoch_outputs[1] as f64,
    );

    // 3. Per-window vs global pool.
    let mut rows = Vec::new();
    let mut pool_outputs = Vec::new();
    for (label, memory) in [
        ("per-window (paper)", MemoryMode::PerWindow(capacity)),
        ("global pool", MemoryMode::GlobalPool(3 * capacity)),
    ] {
        let mut engine = runner::build_engine(&query, "MSketch", memory, args.seed);
        let report = run_trace(&mut engine, &trace, &opts);
        pool_outputs.push(report.total_output());
        rows.push(vec![label.to_string(), report.total_output().to_string()]);
        json_rows.push(serde_json::json!({
            "ablation": "memory_mode", "variant": label, "output": report.total_output(),
        }));
    }
    table::print_table(
        "Ablation 3: fixed per-window allocation vs global shared pool (same total memory)",
        &["variant".to_string(), "output".to_string()],
        &rows,
    );
    let ratio = pool_outputs[1] as f64 / pool_outputs[0].max(1) as f64;
    table::print_shape(
        &format!("global pool is not a significant win (pool/per-window = {ratio:.2})"),
        ratio < 1.5,
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
