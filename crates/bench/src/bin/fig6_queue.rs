//! Figure 6: performance when the input queue forms — arrivals 5× faster
//! than the join service rate, queue capacity 100 tuples, z-intra 1.6–2.0.
//!
//! Paper shape: MSketch "works much better when a queue is formed" — its
//! productivity measure also makes good queue-shedding decisions, widening
//! the gap over the baselines.
//!
//! ```text
//! cargo run --release -p mstream-bench --bin fig6_queue
//! ```

use mstream_bench::{paper, runner, table, Args};
use mstream_core::prelude::*;

/// The algorithms the paper compares once the queue forms.
const POLICIES: [&str; 4] = ["MSketch", "Bjoin", "Random", "FIFO"];

fn main() {
    let args = Args::from_env();
    let scale = args.scale_or(1.0);
    let query = paper::paper_query(paper::scaled_window(scale));
    let trace = paper::paper_regions(paper::Z_INTRA_RANGES[3], scale, args.seed).generate();
    let opts = RunOptions {
        sim: SimConfig {
            arrival_rate: paper::ARRIVAL_RATE,
            // "the input rate is 5 times faster than the join processing
            // rate".
            service_rate: Some(paper::ARRIVAL_RATE / 5.0),
            queue_capacity: paper::QUEUE_CAPACITY,
        },
        ..Default::default()
    };
    let header: Vec<String> = std::iter::once("buffer".to_string())
        .chain(POLICIES.iter().map(|p| p.to_string()))
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut by_policy: Vec<Vec<u64>> = vec![Vec::new(); POLICIES.len()];
    for pct in paper::MEMORY_GRID {
        let capacity = paper::memory_tuples(pct, scale);
        let mut row = vec![format!("{capacity} ({pct}%)")];
        for (pi, policy) in POLICIES.iter().enumerate() {
            let report = runner::run_policy(&query, policy, capacity, &trace, &opts, args.seed);
            row.push(report.total_output().to_string());
            by_policy[pi].push(report.total_output());
            json_rows.push(serde_json::json!({
                "figure": "6",
                "memory_pct": pct,
                "policy": policy,
                "output": report.total_output(),
                "shed_queue": report.metrics.shed_queue,
                "processed": report.metrics.processed,
            }));
        }
        rows.push(row);
    }
    table::print_table(
        "Figure 6: #output tuples vs buffer size with the queue formed (k = 5l, queue = 100)",
        &header,
        &rows,
    );
    let dominated = (0..paper::MEMORY_GRID.len()).all(|m| {
        (1..POLICIES.len()).all(|pi| by_policy[0][m] >= by_policy[pi][m])
    });
    table::print_shape("MSketch >= all baselines at every memory point under overload", dominated);
    let total = |pi: usize| by_policy[pi].iter().sum::<u64>() as f64;
    table::print_shape(
        &format!(
            "semantic queue shedding beats drop-oldest (MSketch/FIFO = {:.1}x)",
            total(0) / total(3).max(1.0)
        ),
        total(0) > total(3),
    );
    mstream_bench::args::maybe_dump_json(&args.json, &json_rows);
}
