//! Minimal flag parsing shared by the figure binaries (no CLI dependency).

/// Common experiment flags.
#[derive(Clone, Debug, PartialEq)]
pub struct Args {
    /// Dataset scale factor (1.0 = the paper's sizes); `None` when the
    /// user did not pass `--scale` (binaries may then apply their own
    /// default — e.g. the sampling experiment defaults to 0.5 because its
    /// cost is dominated by full result-set enumeration).
    pub scale: Option<f64>,
    /// Master seed.
    pub seed: u64,
    /// Optional JSON dump path for the result rows.
    pub json: Option<String>,
    /// Print the workload description (Table 1) and exit.
    pub describe: bool,
    /// Leftover binary-specific flags, in order.
    pub rest: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: None,
            seed: 42,
            json: None,
            describe: false,
            rest: Vec::new(),
        }
    }
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of flags.
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Args {
        let mut args = Args::default();
        let mut it = items.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v: f64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a number"));
                    args.scale = Some(v);
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                }
                "--json" => {
                    args.json = Some(it.next().unwrap_or_else(|| die("--json needs a path")));
                }
                "--describe" => args.describe = true,
                other => args.rest.push(other.to_string()),
            }
        }
        if let Some(scale) = args.scale {
            if scale <= 0.0 || scale.is_nan() {
                die::<f64>("--scale must be positive");
            }
        }
        args
    }

    /// The scale in force, falling back to the binary's default.
    pub fn scale_or(&self, default: f64) -> f64 {
        self.scale.unwrap_or(default)
    }

    /// Whether a binary-specific flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.rest.iter().any(|r| r == name)
    }

    /// The value following a binary-specific `--flag value` pair.
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|r| r == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }
}

fn die<T>(msg: &str) -> T {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Writes `rows` as pretty JSON to `path` when requested.
pub fn maybe_dump_json<T: serde::Serialize>(json: &Option<String>, rows: &T) {
    if let Some(path) = json {
        let body = serde_json::to_string_pretty(rows).expect("rows serialize");
        std::fs::write(path, body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("# wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(flags: &[&str]) -> Args {
        Args::parse(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a, Args::default());
    }

    #[test]
    fn parses_common_flags() {
        let a = parse(&["--scale", "0.5", "--seed", "7", "--json", "/tmp/x.json", "--describe"]);
        assert_eq!(a.scale, Some(0.5));
        assert_eq!(a.scale_or(1.0), 0.5);
        assert_eq!(parse(&[]).scale_or(0.5), 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
        assert!(a.describe);
    }

    #[test]
    fn keeps_binary_specific_rest() {
        let a = parse(&["--part", "b", "--global-pool"]);
        assert!(a.has_flag("--global-pool"));
        assert_eq!(a.flag_value("--part"), Some("b"));
        assert_eq!(a.flag_value("--missing"), None);
    }
}
