//! Policy runners shared by the figure binaries.

use mstream_core::prelude::*;

/// Builds an engine for `policy_name` with the standard experiment sizing.
pub fn build_engine(
    query: &JoinQuery,
    policy_name: &str,
    memory: MemoryMode,
    seed: u64,
) -> ShedJoinEngine {
    let policy =
        parse_policy(policy_name).unwrap_or_else(|| panic!("unknown policy {policy_name}"));
    let builder = EngineBuilder::new(query.clone())
        .boxed_policy(policy)
        .bank(BankConfig {
            s1: 1000,
            s2: 1,
            seed: seed ^ 0x5EED,
        })
        .seed(seed);
    let builder = match memory {
        MemoryMode::PerWindow(c) => builder.capacity_per_window(c),
        MemoryMode::PerWindowEach(cs) => builder.capacities(cs),
        MemoryMode::GlobalPool(total) => builder.global_pool(total),
    };
    builder.build().expect("engine config is valid")
}

/// Runs one policy over `trace` and returns its report.
pub fn run_policy(
    query: &JoinQuery,
    policy_name: &str,
    capacity: usize,
    trace: &Trace,
    opts: &RunOptions,
    seed: u64,
) -> RunReport {
    let mut engine = build_engine(query, policy_name, MemoryMode::PerWindow(capacity), seed);
    run_trace(&mut engine, trace, opts)
}

/// Runs every policy in `policies` and returns `(name, report)` rows.
pub fn run_policies(
    query: &JoinQuery,
    policies: &[&str],
    capacity: usize,
    trace: &Trace,
    opts: &RunOptions,
    seed: u64,
) -> Vec<(String, RunReport)> {
    policies
        .iter()
        .map(|&name| {
            (
                name.to_string(),
                run_policy(query, name, capacity, trace, opts, seed),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn run_policy_produces_output() {
        let query = paper::paper_query(100);
        let trace = paper::paper_regions((1.0, 1.5), 0.03, 5).generate();
        let opts = RunOptions::default();
        let report = run_policy(&query, "MSketch", 50, &trace, &opts, 1);
        assert!(report.total_output() > 0);
    }

    #[test]
    fn run_policies_covers_lineup() {
        let query = paper::paper_query(100);
        let trace = paper::paper_regions((1.0, 1.5), 0.02, 5).generate();
        let opts = RunOptions::default();
        let rows = run_policies(
            &query,
            &paper::MAX_SUBSET_POLICIES,
            20,
            &trace,
            &opts,
            1,
        );
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(_, r)| r.metrics.processed > 0));
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let query = paper::paper_query(100);
        let _ = build_engine(&query, "nope", MemoryMode::PerWindow(10), 1);
    }
}
