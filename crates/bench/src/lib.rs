//! Shared experiment harness for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper
//! (see DESIGN.md §4 for the full index). This library holds what they
//! share: the reconstructed paper parameters ([`paper`]), policy runners
//! ([`runner`]) and plain-text table output ([`table`]).
//!
//! All binaries accept:
//!
//! * `--scale <f>` — multiply every dataset size by `f` (default 1.0;
//!   use e.g. `--scale 0.2` for a quick smoke run),
//! * `--seed <n>` — master seed (default 42),
//! * `--json <path>` — additionally dump the result rows as JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod paper;
pub mod runner;
pub mod table;

pub use args::Args;
