//! Plain-text table output for the figure binaries.

/// Prints a header + rows as an aligned, pipe-separated table, matching
/// the paper's axes (first column = x, remaining columns = series).
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("## {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
}

/// Formats a float compactly: integers without decimals, small values with
/// four significant digits.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 && x.fract().abs() < 1e-9 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Emits a `# paper-shape:` footer line asserting a qualitative ordering,
/// e.g. "MSketch >= Bjoin at every memory point". `holds` reports whether
/// the measured data satisfied it.
pub fn print_shape(description: &str, holds: bool) {
    println!(
        "# paper-shape: {description} -> {}",
        if holds { "HOLDS" } else { "VIOLATED" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(123456.0), "123456");
        assert_eq!(fmt_num(123.4), "123");
        assert_eq!(fmt_num(12.345), "12.35");
        assert_eq!(fmt_num(0.01234), "0.0123");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "demo",
            &["x".into(), "y".into()],
            &[vec!["1".into(), "2".into()], vec!["10".into()]],
        );
        print_shape("demo ordering", true);
    }
}
