//! Microbenchmarks of the storage substrate: window-store insert/evict,
//! index probes, and queue shedding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mstream_core::mstream_window::{QueueVictim, ShedQueue, WindowStore};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tup(seq: u64, ts: u64, a: u64, b: u64) -> Tuple {
    Tuple::new(
        StreamId(0),
        VTime::from_secs(ts),
        SeqNo(seq),
        vec![Value(a), Value(b)],
    )
}

/// Insert into a full window (every call pays one eviction).
fn bench_insert_evict(c: &mut Criterion) {
    let mut store = WindowStore::new(WindowSpec::Time(VDur::from_secs(1 << 30)), vec![0, 1], 1024);
    let mut rng = StdRng::seed_from_u64(1);
    let mut seq = 0u64;
    for _ in 0..1024 {
        store.insert(tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100)), rng.gen());
        seq += 1;
    }
    c.bench_function("window_insert_with_eviction", |b| {
        b.iter(|| {
            let t = tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100));
            seq += 1;
            black_box(store.insert(t, rng.gen()));
        })
    });
}

/// Hash-index probe on a 1024-tuple window.
fn bench_probe(c: &mut Criterion) {
    let mut store = WindowStore::new(WindowSpec::Time(VDur::from_secs(1 << 30)), vec![0, 1], 2048);
    let mut rng = StdRng::seed_from_u64(2);
    for seq in 0..1024u64 {
        store.insert(tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100)), 1.0);
    }
    c.bench_function("window_probe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 100;
            black_box(store.probe(0, Value(v)).len())
        })
    });
}

/// Priority rebuild of a full 1024-tuple window (epoch rollover cost,
/// excluding the scoring itself).
fn bench_rebuild(c: &mut Criterion) {
    let mut store = WindowStore::new(WindowSpec::Time(VDur::from_secs(1 << 30)), vec![0, 1], 1024);
    let mut rng = StdRng::seed_from_u64(3);
    for seq in 0..1024u64 {
        store.insert(tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100)), rng.gen());
    }
    c.bench_function("window_rebuild_priorities_1024", |b| {
        b.iter(|| {
            store.rebuild_priorities(|t, _| ((t.seq.0 % 97) as f64, 0.0));
        })
    });
}

/// Queue offers into a full queue under each victim mode.
fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_offer_full");
    for (label, mode) in [
        ("min_priority", QueueVictim::MinPriority),
        ("random", QueueVictim::Random),
        ("oldest", QueueVictim::Oldest),
    ] {
        let mut queue = ShedQueue::new(100);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seq = 0u64;
        for _ in 0..100 {
            queue.offer(tup(seq, 0, 1, 1), rng.gen(), mode, &mut rng);
            seq += 1;
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let t = tup(seq, 0, 1, 1);
                seq += 1;
                black_box(queue.offer(t, rng.gen(), mode, &mut rng));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert_evict, bench_probe, bench_rebuild, bench_queue);
criterion_main!(benches);
