//! Microbenchmarks of the storage substrate: window-store insert/evict,
//! index probes, probe kernels, and queue shedding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mstream_core::mstream_join::{probe_each, probe_each_recursive, ProbePlan};
use mstream_core::mstream_window::{Arena, FlatIndex, QueueVictim, ShedQueue, Slot, WindowStore};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn tup(seq: u64, ts: u64, a: u64, b: u64) -> Tuple {
    Tuple::new(
        StreamId(0),
        VTime::from_secs(ts),
        SeqNo(seq),
        vec![Value(a), Value(b)],
    )
}

/// Insert into a full window (every call pays one eviction).
fn bench_insert_evict(c: &mut Criterion) {
    let mut store = WindowStore::new(WindowSpec::Time(VDur::from_secs(1 << 30)), vec![0, 1], 1024);
    let mut rng = StdRng::seed_from_u64(1);
    let mut seq = 0u64;
    for _ in 0..1024 {
        store.insert(tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100)), rng.gen());
        seq += 1;
    }
    c.bench_function("window_insert_with_eviction", |b| {
        b.iter(|| {
            let t = tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100));
            seq += 1;
            black_box(store.insert(t, rng.gen()));
        })
    });
}

/// Hash-index probe on a 1024-tuple window.
fn bench_probe(c: &mut Criterion) {
    let mut store = WindowStore::new(WindowSpec::Time(VDur::from_secs(1 << 30)), vec![0, 1], 2048);
    let mut rng = StdRng::seed_from_u64(2);
    for seq in 0..1024u64 {
        store.insert(tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100)), 1.0);
    }
    c.bench_function("window_probe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 100;
            black_box(store.probe(0, Value(v)).len())
        })
    });
}

/// Priority rebuild of a full 1024-tuple window (epoch rollover cost,
/// excluding the scoring itself).
fn bench_rebuild(c: &mut Criterion) {
    let mut store = WindowStore::new(WindowSpec::Time(VDur::from_secs(1 << 30)), vec![0, 1], 1024);
    let mut rng = StdRng::seed_from_u64(3);
    for seq in 0..1024u64 {
        store.insert(tup(seq, 0, rng.gen_range(0..100), rng.gen_range(0..100)), rng.gen());
    }
    c.bench_function("window_rebuild_priorities_1024", |b| {
        b.iter(|| {
            store.rebuild_priorities(|t, _| ((t.seq.0 % 97) as f64, 0.0));
        })
    });
}

/// Queue offers into a full queue under each victim mode.
fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_offer_full");
    for (label, mode) in [
        ("min_priority", QueueVictim::MinPriority),
        ("random", QueueVictim::Random),
        ("oldest", QueueVictim::Oldest),
    ] {
        let mut queue = ShedQueue::new(100);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seq = 0u64;
        for _ in 0..100 {
            queue.offer(tup(seq, 0, 1, 1), rng.gen(), mode, &mut rng);
            seq += 1;
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let t = tup(seq, 0, 1, 1);
                seq += 1;
                black_box(queue.offer(t, rng.gen(), mode, &mut rng));
            })
        });
    }
    group.finish();
}

/// The iterative probe kernel against the retained recursive one on a
/// 3-stream chain (middle origin — the star fast path plus a chain step
/// from the ends), populated windows, random arrivals.
fn bench_probe_kernel(c: &mut Criterion) {
    let names = ["R1", "R2", "R3"];
    let mut cat = Catalog::new();
    for name in names {
        cat.add_stream(StreamSchema::new(name, &["A1", "A2"]));
    }
    let q = JoinQuery::from_names(
        cat,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(1 << 20),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let mut stores: Vec<WindowStore> = (0..3)
        .map(|s| WindowStore::new(q.window(StreamId(s)), q.join_attrs(StreamId(s)), 2048))
        .collect();
    let mut seq = 0u64;
    for (s, store) in stores.iter_mut().enumerate() {
        for _ in 0..1024 {
            let t = Tuple::new(
                StreamId(s),
                VTime::ZERO,
                SeqNo(seq),
                vec![Value(rng.gen_range(0..64)), Value(rng.gen_range(0..64))],
            );
            store.insert(t, 0.0);
            seq += 1;
        }
    }
    let mut group = c.benchmark_group("probe_kernel_chain3_mid");
    for (label, recursive) in [("iterative", false), ("recursive", true)] {
        let plan = ProbePlan::new(&q, StreamId(1));
        let mut v = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                v = (v + 1) % 64;
                let t = Tuple::new(StreamId(1), VTime::ZERO, SeqNo(seq), vec![Value(v), Value((v * 7) % 64)]);
                let n = if recursive {
                    probe_each_recursive(&plan, &t, &stores, |m| {
                        black_box(m.origin());
                    })
                } else {
                    probe_each(&plan, &t, &stores, |m| {
                        black_box(m.origin());
                    })
                };
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Raw single-key probe: the open-addressed `FlatIndex` against the
/// `HashMap<Value, Vec<Slot>>` it replaced, same contents.
fn bench_flat_index(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut arena: Arena<u64> = Arena::new();
    let mut flat = FlatIndex::new();
    let mut legacy: HashMap<Value, Vec<Slot>> = HashMap::new();
    for i in 0..4096u64 {
        let key = rng.gen_range(0..512);
        let slot = arena.insert(i);
        flat.insert(key, slot);
        legacy.entry(Value(key)).or_default().push(slot);
    }
    let mut group = c.benchmark_group("index_probe_4096");
    let mut v = 0u64;
    group.bench_function("flat", |b| {
        b.iter(|| {
            v = (v + 1) % 512;
            black_box(flat.probe(black_box(v)).len())
        })
    });
    group.bench_function("hashmap", |b| {
        b.iter(|| {
            v = (v + 1) % 512;
            black_box(legacy.get(&Value(black_box(v))).map_or(0, Vec::len))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_evict,
    bench_probe,
    bench_rebuild,
    bench_queue,
    bench_probe_kernel,
    bench_flat_index
);
criterion_main!(benches);
