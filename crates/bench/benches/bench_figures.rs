//! End-to-end smoke benchmarks: one tiny-scale run per paper experiment so
//! `cargo bench` exercises every figure's full code path (workload
//! generation → simulation → metrics). The printable full-scale tables
//! come from the `fig*` binaries (see DESIGN.md §4), not from here.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mstream_bench::{paper, runner};
use mstream_core::prelude::*;

const SCALE: f64 = 0.04;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_paths");
    group.sample_size(10);
    let query = paper::paper_query(paper::scaled_window(SCALE));
    let high_skew = paper::paper_regions(paper::Z_INTRA_RANGES[3], SCALE, 42).generate();
    let capacity = paper::memory_tuples(25, SCALE);

    group.bench_function("fig2_policy_run", |b| {
        b.iter(|| {
            black_box(runner::run_policy(
                &query,
                "MSketch",
                capacity,
                &high_skew,
                &RunOptions::default(),
                42,
            ))
        })
    });

    group.bench_function("fig4_exact_reference", |b| {
        b.iter(|| black_box(run_exact_trace(&query, &high_skew, &RunOptions::default())))
    });

    let drift_trace = {
        let mut config = paper::paper_regions(paper::Z_INTRA_RANGES[3], SCALE, 42)
            .config()
            .clone();
        config.feed = FeedOrder::RegionPhases;
        RegionsGenerator::new(config).unwrap().generate()
    };
    let drift_opts = RunOptions {
        output_bucket: Some(VDur::from_secs(paper::scaled_drift_bucket(SCALE))),
        ..Default::default()
    };
    group.bench_function("fig5_drift_series", |b| {
        b.iter(|| {
            black_box(runner::run_policy(
                &query,
                "MSketch",
                paper::memory_tuples(75, SCALE),
                &drift_trace,
                &drift_opts,
                42,
            ))
        })
    });

    let overload_opts = RunOptions {
        sim: SimConfig {
            arrival_rate: paper::ARRIVAL_RATE,
            service_rate: Some(paper::ARRIVAL_RATE / 5.0),
            queue_capacity: paper::QUEUE_CAPACITY,
        },
        ..Default::default()
    };
    group.bench_function("fig6_overload_run", |b| {
        b.iter(|| {
            black_box(runner::run_policy(
                &query,
                "MSketch",
                capacity,
                &high_skew,
                &overload_opts,
                42,
            ))
        })
    });

    let agg_opts = RunOptions {
        agg_attr: Some((StreamId(0), 1)),
        agg_bucket: VDur::from_secs(paper::scaled_window(SCALE)),
        ..Default::default()
    };
    group.bench_function("fig7_sampling_run", |b| {
        b.iter(|| {
            black_box(runner::run_policy(
                &query,
                "MSketch-RS",
                capacity,
                &high_skew,
                &agg_opts,
                42,
            ))
        })
    });

    let census_query = paper::census_query((500.0 * SCALE) as u64);
    let census_trace = paper::census_data(SCALE * 2.0, 42).generate();
    group.bench_function("fig8_census_run", |b| {
        b.iter(|| {
            black_box(runner::run_policy(
                &census_query,
                "MSketch",
                paper::census_full_window((500.0 * SCALE) as u64) / 4,
                &census_trace,
                &RunOptions::default(),
                42,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
