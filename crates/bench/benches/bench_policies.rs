//! Per-arrival engine cost under each shedding policy — the
//! microbenchmark behind Figure 3's wall-clock comparison.
//!
//! A steady-state engine (windows full, shedding on every arrival)
//! processes one tuple per iteration; the measured time covers sketch /
//! frequency maintenance, probing, scoring and eviction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mstream_bench::paper;
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn steady_engine(policy: &str) -> ShedJoinEngine {
    let query = paper::paper_query(100);
    let mut engine = EngineBuilder::new(query)
        .boxed_policy(parse_policy(policy).expect("builtin"))
        .capacity_per_window(256)
        .bank(BankConfig {
            s1: 1000,
            s2: 1,
            seed: 5,
        })
        .seed(6)
        .build()
        .expect("valid engine");
    // Warm up into steady state: full windows, sketches populated.
    let mut rng = StdRng::seed_from_u64(7);
    let mut sink = CountSink::default();
    for i in 0..3000u64 {
        let s = StreamId(rng.gen_range(0..3));
        engine.ingest(
            Arrival::new(
                s,
                vec![Value(rng.gen_range(0..40)), Value(rng.gen_range(0..40))],
                VTime::from_micros(i * 100_000),
            ),
            &mut sink,
        );
    }
    engine
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_per_arrival");
    for policy in ["MSketch", "MSketch-RS", "Bjoin", "Age", "Random", "FIFO"] {
        let mut engine = steady_engine(policy);
        let mut rng = StdRng::seed_from_u64(8);
        let mut i = 3000u64;
        let mut sink = CountSink::default();
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, _| {
            b.iter(|| {
                let s = StreamId(rng.gen_range(0..3));
                i += 1;
                black_box(engine.ingest(
                    Arrival::new(
                        s,
                        vec![Value(rng.gen_range(0..40)), Value(rng.gen_range(0..40))],
                        VTime::from_micros(i * 100_000),
                    ),
                    &mut sink,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
