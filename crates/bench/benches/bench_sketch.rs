//! Microbenchmarks of the estimation substrate: ±1 hashing, atomic-sketch
//! updates and productivity estimation — the per-tuple costs behind the
//! paper's "fast-and-light" claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mstream_core::mstream_sketch::signs::combine_packed_signs;
use mstream_core::mstream_sketch::{
    FourWiseHash, SignCache, SignFamilies, SketchBank, TumblingSketches,
};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain3() -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(500),
    )
    .unwrap()
}

fn bench_hash(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let h = FourWiseHash::random(&mut rng);
    c.bench_function("four_wise_sign", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(h.sign(black_box(x)))
        })
    });
}

fn bench_bank_update(c: &mut Criterion) {
    let query = chain3();
    let mut group = c.benchmark_group("sketch_bank_update");
    for s1 in [100usize, 1000] {
        let mut bank = SketchBank::new(
            &query,
            BankConfig {
                s1,
                s2: 1,
                seed: 2,
            },
        );
        let mut v = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                v = (v + 1) % 100;
                bank.update(StreamId(1), &[Value(v), Value(v % 7)]);
            })
        });
    }
    group.finish();
}

fn bench_productivity(c: &mut Criterion) {
    let query = chain3();
    let mut group = c.benchmark_group("productivity_estimate");
    for s1 in [100usize, 1000] {
        let mut sk = TumblingSketches::new(
            &query,
            BankConfig {
                s1,
                s2: 1,
                seed: 3,
            },
            EpochSpec::Time(VDur::from_secs(500)),
        );
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let s = StreamId(rng.gen_range(0..3));
            sk.observe(
                s,
                &[Value(rng.gen_range(0..100)), Value(rng.gen_range(0..100))],
                VTime::ZERO,
            );
        }
        let mut v = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                v = (v + 1) % 100;
                black_box(sk.productivity(StreamId(0), &[Value(v), Value(0)]))
            })
        });
    }
    group.finish();
}

/// The packed-sign kernels in isolation: one full polynomial sweep over
/// 1000 copies, the XOR combine with every lookup missing the memo, and
/// the same combine served entirely from memoized vectors.
fn bench_packed_signs(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let families = SignFamilies::draw(&mut rng, 2, 1000);
    let incidence = [(0usize, 0usize), (1usize, 1usize)];
    let mut out = Vec::new();
    let mut group = c.benchmark_group("packed_signs");
    group.bench_function("eval_1000_copies", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            families.eval_packed_into(0, black_box(x), &mut out);
            black_box(&out);
        })
    });
    let mut cold_cache = SignCache::default();
    group.bench_function("xor_combine_cold", |b| {
        let mut x = 0u64;
        b.iter(|| {
            // Always-fresh values: every lookup evaluates (and the bounded
            // memo periodically generation-resets — that cost is part of
            // the cold path).
            x = x.wrapping_add(1);
            combine_packed_signs(
                &families,
                &mut cold_cache,
                &incidence,
                &[Value(x), Value(x ^ 0xFFFF)],
                &mut out,
            );
            black_box(&out);
        })
    });
    let mut hot_cache = SignCache::default();
    group.bench_function("xor_combine_cached", |b| {
        let mut x = 0u64;
        b.iter(|| {
            // A 64-value hot set: after one lap everything is memoized, so
            // the combine is two map hits and 16 XOR'd words.
            x = (x + 1) % 64;
            combine_packed_signs(
                &families,
                &mut hot_cache,
                &incidence,
                &[Value(x), Value(x + 1000)],
                &mut out,
            );
            black_box(&out);
        })
    });
    group.finish();
}

/// Productivity at the paper's sizing (`s1 = 1000`) over a Zipfian value
/// pool, past the first epoch rollover — the steady-state hot path the
/// engine pays on every arrival and on every rollover rebuild: a memoized
/// packed-sign lookup plus a signed sum over a frozen cross-product row.
fn bench_productivity_repeated(c: &mut Criterion) {
    let query = chain3();
    let mut sk = TumblingSketches::new(
        &query,
        BankConfig {
            s1: 1000,
            s2: 1,
            seed: 6,
        },
        EpochSpec::Time(VDur::from_secs(100)),
    );
    // Zipf-like pool: value v drawn with weight ~ 1/(v+1) over 50 values.
    let mut pool: Vec<u64> = Vec::new();
    for v in 0..50u64 {
        for _ in 0..(50 / (v + 1)) {
            pool.push(v);
        }
    }
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3000 {
        let s = StreamId(rng.gen_range(0..3));
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        sk.observe(s, &[Value(a), Value(b)], VTime::ZERO);
    }
    // Cross the epoch boundary: every stream now has a last-epoch snapshot,
    // so queries run the frozen-cross-product path.
    sk.observe(StreamId(0), &[Value(0), Value(0)], VTime::from_secs(150));
    let mut group = c.benchmark_group("productivity_repeated_zipf");
    let mut i = 0usize;
    group.bench_function("s1_1000_frozen", |b| {
        b.iter(|| {
            i = (i + 1) % pool.len();
            black_box(sk.productivity(StreamId(0), &[Value(pool[i]), Value(0)]))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_bank_update,
    bench_productivity,
    bench_packed_signs,
    bench_productivity_repeated
);
criterion_main!(benches);
